"""Run-store & orchestration: content-addressed caching of experiment
results plus a fault-tolerant parallel scheduler.

The subsystem has four layers:

- :mod:`repro.runstore.keys` — canonical JSON serialization of a
  (scenario, options, :data:`CACHE_VERSION`) job and its sha256 key;
- :mod:`repro.runstore.store` — the on-disk content-addressed store
  (atomic writes, corruption-tolerant loads, manifest index, ``gc``);
- :mod:`repro.runstore.scheduler` — deduplicating, crash-retrying,
  checkpoint/resuming process-pool execution (:func:`run_jobs`);
- :mod:`repro.runstore.progress` — per-job events and sweep counters.

Typical use::

    from repro.runstore import Job, RunStore, run_jobs

    store = RunStore("benchmarks/_cache")
    outcome = run_jobs([Job(sc) for sc in scenarios], store=store)
    print(outcome.stats.summary())   # hits/misses/events-per-sec
"""

from __future__ import annotations

from .keys import CACHE_VERSION, DEFAULT_OPTIONS, canonical_json, job_key
from .progress import JobEvent, ProgressCallback, SweepStats, print_progress
from .scheduler import (
    DEFAULT_RETRIES,
    Job,
    JobFailure,
    RunOptions,
    SweepError,
    SweepOutcome,
    run_jobs,
)
from .store import GcReport, MigrationReport, RunStore, StoreEntry, migrate_legacy

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_OPTIONS",
    "DEFAULT_RETRIES",
    "GcReport",
    "Job",
    "JobEvent",
    "JobFailure",
    "MigrationReport",
    "ProgressCallback",
    "RunOptions",
    "RunStore",
    "StoreEntry",
    "SweepError",
    "SweepOutcome",
    "SweepStats",
    "canonical_json",
    "job_key",
    "migrate_legacy",
    "print_progress",
    "run_jobs",
]
