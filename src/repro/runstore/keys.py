"""Cache-key derivation: canonical JSON of a job → sha256.

Key scheme (the contract every stored result is addressed by)
-------------------------------------------------------------

A *job* is a :class:`~repro.core.scenarios.Scenario` plus the
``run_experiment`` options that affect the produced result. Its key is::

    key = sha256(canonical_json({
        "options":  {"convergence_check": ..., "record_drop_times": ...},
        "scenario": dataclasses.asdict(scenario),
        "version":  CACHE_VERSION,
    })).hexdigest()                      # 64 lowercase hex chars

``canonical_json`` is ``json.dumps(obj, sort_keys=True,
separators=(",", ":"), ensure_ascii=True)``. The encoding is canonical
because:

- keys are sorted recursively, so dict insertion order is irrelevant;
- separators carry no whitespace, so formatting is irrelevant;
- floats serialise via ``repr`` (shortest round-trip form since
  Python 3.1), so the same float always produces the same text;
- tuples and lists both serialise as JSON arrays, so dataclass field
  containers can change between the two without invalidating caches.

Any change to scenario *semantics* (new field, different default) or to
simulator physics must bump :data:`CACHE_VERSION`; the version is part
of the hashed payload, so every key changes and stale results become
unreachable (``repro cache gc`` then deletes them).

Version history:

- v1-v7 — the legacy scheme: ``md5(f"v{N}|{scenario!r}")``, written by
  ``benchmarks/common.py`` as flat ``<md5>.pkl`` files. Fragile: any
  cosmetic change to ``Scenario.__repr__`` silently invalidated the
  cache, and adding a field with a default churned every key.
- v8 — same simulator physics as v7; keys moved to the canonical-JSON
  sha256 scheme above (results were carried forward by the one-shot
  ``repro cache migrate``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from ..core.scenarios import Scenario

#: Cache epoch. Bump when simulator physics or the key scheme change so
#: previously stored results can never be returned for a new-physics run.
CACHE_VERSION = 8

#: The ``run_experiment`` options a bare ``Scenario`` run implies; keys
#: computed without explicit options hash these.
DEFAULT_OPTIONS: Dict[str, Any] = {
    "record_drop_times": True,
    "convergence_check": False,
}


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for ``obj`` (see module docstring)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def scenario_to_canonical(scenario: Scenario) -> Dict[str, Any]:
    """A scenario as the plain dict that gets hashed (and displayed).

    Key stability: ``Scenario.faults`` was added after v8 shipped. An
    empty schedule leaves the simulation identical to a pre-fault
    scenario, so it is omitted from the canonical form — every legacy v8
    key stays valid without a version bump, while any non-empty schedule
    (serialised event list) hashes into the key as usual.
    """
    data = dataclasses.asdict(scenario)
    if not data.get("faults"):
        data.pop("faults", None)
    return data


def job_key(
    scenario: Scenario,
    options: Optional[Mapping[str, Any]] = None,
    version: int = CACHE_VERSION,
) -> str:
    """The content address for one (scenario, options, version) job."""
    payload = {
        "options": dict(options) if options is not None else dict(DEFAULT_OPTIONS),
        "scenario": scenario_to_canonical(scenario),
        "version": version,
    }
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


def legacy_key(scenario: Scenario, version: int) -> str:
    """The pre-v8 ``md5(f"v{N}|{scenario!r}")`` key (migration only)."""
    blob = f"v{version}|{scenario!r}"
    return hashlib.md5(blob.encode()).hexdigest()
