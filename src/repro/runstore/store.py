"""Content-addressed result store.

Layout (all under one *store root*, e.g. ``benchmarks/_cache``)::

    <root>/objects/<sha256>.pkl   one pickled envelope per stored result
    <root>/manifest.json          index: key -> metadata (name, version,
                                  size, wall time, events, created)
    <root>/manifest.lock          inter-process lock for manifest updates

Each object is a self-describing *envelope* ``{"key", "meta",
"payload"}`` so the manifest is strictly a cache of the object
metadata: if it is lost or corrupted it is rebuilt by scanning the
objects directory (:meth:`RunStore.rebuild_manifest`).

Durability rules:

- **writes are atomic** — payloads are pickled to a temp file in the
  same directory and published with ``os.replace``; a crash mid-write
  leaves a ``.tmp-*`` file (collected by ``gc``), never a truncated
  object;
- **loads are corruption-tolerant** — a truncated, unpicklable or
  mis-keyed object makes :meth:`RunStore.get` return ``None`` (and
  deletes the bad file) so callers fall back to re-simulation instead
  of crashing;
- **concurrent writers are safe** — object files are content-addressed
  (two writers of the same key race to publish identical bytes) and
  manifest updates serialise on an ``fcntl`` file lock where available.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import re
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .keys import CACHE_VERSION, legacy_key

try:  # POSIX only; on other platforms manifest updates are best-effort.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

_OBJECT_RE = re.compile(r"^[0-9a-f]{64}\.pkl$")
_LEGACY_RE = re.compile(r"^[0-9a-f]{32}\.pkl$")
_TMP_PREFIX = ".tmp-"

_MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class StoreEntry:
    """One manifest row."""

    key: str
    name: str
    version: int
    size: int
    wall_seconds: float
    events: int
    created: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "name": self.name,
            "version": self.version,
            "size": self.size,
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "created": self.created,
        }


@dataclass
class GcReport:
    """What ``gc`` removed (or would remove with ``dry_run``)."""

    removed: List[str] = field(default_factory=list)
    kept: int = 0
    bytes_freed: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "removed": list(self.removed),
            "kept": self.kept,
            "bytes_freed": self.bytes_freed,
        }


@dataclass
class MigrationReport:
    """Outcome of a legacy-pickle migration."""

    migrated: List[str] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)
    corrupt: List[str] = field(default_factory=list)
    pruned: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "migrated": list(self.migrated),
            "stale": list(self.stale),
            "corrupt": list(self.corrupt),
            "pruned": list(self.pruned),
        }


class RunStore:
    """Content-addressed store for experiment results (any picklable)."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.manifest_path = os.path.join(self.root, "manifest.json")
        self._lock_path = os.path.join(self.root, "manifest.lock")
        #: Corrupt objects dropped by :meth:`get` since construction.
        self.corrupt_dropped = 0

    # ------------------------------------------------------------------
    # Object IO
    # ------------------------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key + ".pkl")

    def contains(self, key: str) -> bool:
        return os.path.exists(self._object_path(key))

    def get(self, key: str) -> Any:
        """The stored payload for ``key``, or ``None`` when absent/corrupt."""
        fetched = self.fetch(key)
        return None if fetched is None else fetched[0]

    def fetch(self, key: str) -> Optional[Tuple[Any, Dict[str, Any]]]:
        """``(payload, meta)`` for ``key``, or ``None`` when absent/corrupt."""
        envelope = self._load_envelope(self._object_path(key), expect_key=key)
        if envelope is None:
            return None
        return envelope["payload"], dict(envelope["meta"])

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored metadata for ``key`` (``None`` when absent/corrupt)."""
        envelope = self._load_envelope(self._object_path(key), expect_key=key)
        if envelope is None:
            return None
        meta = dict(envelope["meta"])
        meta["key"] = key
        meta["size"] = os.path.getsize(self._object_path(key))
        return meta

    def put(self, key: str, payload: Any, meta: Optional[Dict[str, Any]] = None) -> None:
        """Atomically store ``payload`` under ``key`` and index it."""
        os.makedirs(self.objects_dir, exist_ok=True)
        entry_meta = dict(meta or {})
        entry_meta.setdefault("name", "")
        entry_meta.setdefault("version", CACHE_VERSION)
        entry_meta.setdefault("wall_seconds", 0.0)
        entry_meta.setdefault("events", 0)
        # Host-clock read is intentional: 'created' is bookkeeping for
        # humans (cache ls), never simulation input.
        entry_meta.setdefault("created", time.time())  # repro-lint: disable=RPR001
        envelope = {"key": key, "meta": entry_meta, "payload": payload}
        fd, tmp = tempfile.mkstemp(prefix=_TMP_PREFIX, dir=self.objects_dir)
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._object_path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        entry_meta["size"] = os.path.getsize(self._object_path(key))
        self._update_manifest({key: entry_meta})

    def delete(self, key: str) -> bool:
        """Remove one object (and its index row); True if it existed."""
        existed = self._remove_object_file(self._object_path(key))
        self._update_manifest({key: None})
        return existed

    def _load_envelope(
        self, path: str, expect_key: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
            if (
                not isinstance(envelope, dict)
                or "payload" not in envelope
                or not isinstance(envelope.get("meta"), dict)
                or (expect_key is not None and envelope.get("key") != expect_key)
            ):
                raise ValueError("malformed store envelope")
            return envelope
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, foreign file, or unpicklable content: drop
            # it so the caller re-simulates and the slot can be rewritten.
            self.corrupt_dropped += 1
            self._remove_object_file(path)
            if expect_key is not None:
                self._update_manifest({expect_key: None})
            return None

    @staticmethod
    def _remove_object_file(path: str) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # Manifest index
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        os.makedirs(self.root, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self._lock_path, "a+") as lock_fh:
            fcntl.flock(lock_fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_fh.fileno(), fcntl.LOCK_UN)

    def _read_manifest_entries(self) -> Optional[Dict[str, Dict[str, Any]]]:
        """Raw manifest entries, or None when missing/corrupt."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            entries = manifest["entries"]
            if not isinstance(entries, dict):
                raise ValueError("malformed manifest")
            return {str(k): dict(v) for k, v in entries.items()}
        except FileNotFoundError:
            return None
        except Exception:
            return None

    def _write_manifest(self, entries: Dict[str, Dict[str, Any]]) -> None:
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=_TMP_PREFIX, dir=self.root)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(
                    {"format": _MANIFEST_FORMAT, "entries": entries},
                    fh,
                    sort_keys=True,
                    indent=0,
                )
            os.replace(tmp, self.manifest_path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def _update_manifest(self, updates: Dict[str, Optional[Dict[str, Any]]]) -> None:
        """Apply ``key -> meta`` (or ``key -> None`` to drop) under the lock."""
        with self._manifest_lock():
            entries = self._read_manifest_entries()
            if entries is None:
                entries = self._scan_entries()
            for key, meta in updates.items():
                if meta is None:
                    entries.pop(key, None)
                else:
                    entries[key] = meta
            self._write_manifest(entries)

    def _scan_entries(self) -> Dict[str, Dict[str, Any]]:
        """Rebuild index rows from the (self-describing) objects on disk."""
        entries: Dict[str, Dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(self.objects_dir))
        except FileNotFoundError:
            return entries
        for fname in names:
            if not _OBJECT_RE.match(fname):
                continue
            key = fname[:-4]
            envelope = self._load_envelope(os.path.join(self.objects_dir, fname))
            if envelope is None or envelope.get("key") != key:
                continue
            meta = dict(envelope["meta"])
            try:
                meta["size"] = os.path.getsize(os.path.join(self.objects_dir, fname))
            except OSError:
                continue
            entries[key] = meta
        return entries

    def rebuild_manifest(self) -> int:
        """Regenerate the manifest from disk; returns the entry count."""
        with self._manifest_lock():
            entries = self._scan_entries()
            self._write_manifest(entries)
        return len(entries)

    def ls(self) -> List[StoreEntry]:
        """All indexed entries, most recent first (rebuilds if needed)."""
        entries = self._read_manifest_entries()
        if entries is None:
            self.rebuild_manifest()
            entries = self._read_manifest_entries() or {}
        rows = [
            StoreEntry(
                key=key,
                name=str(meta.get("name", "")),
                version=int(meta.get("version", 0)),
                size=int(meta.get("size", 0)),
                wall_seconds=float(meta.get("wall_seconds", 0.0)),
                events=int(meta.get("events", 0)),
                created=float(meta.get("created", 0.0)),
            )
            for key, meta in entries.items()
        ]
        rows.sort(key=lambda e: (-e.created, e.key))
        return rows

    def resolve(self, prefix: str) -> List[str]:
        """Full keys matching a (possibly abbreviated) key prefix."""
        try:
            names = sorted(os.listdir(self.objects_dir))
        except FileNotFoundError:
            return []
        return [
            fname[:-4]
            for fname in names
            if _OBJECT_RE.match(fname) and fname.startswith(prefix)
        ]

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc(
        self,
        current_version: int = CACHE_VERSION,
        dry_run: bool = False,
        all_versions: bool = False,
    ) -> GcReport:
        """Delete temp leftovers, corrupt objects and stale-version results.

        ``all_versions=True`` keeps old-:data:`CACHE_VERSION` entries
        (only trash — temp files and corrupt objects — is collected).
        """
        report = GcReport()
        try:
            names = sorted(os.listdir(self.objects_dir))
        except FileNotFoundError:
            return report

        def _collect(path: str) -> None:
            with contextlib.suppress(OSError):
                report.bytes_freed += os.path.getsize(path)
            report.removed.append(path)
            if not dry_run:
                self._remove_object_file(path)

        survivors: Dict[str, Dict[str, Any]] = {}
        for fname in names:
            path = os.path.join(self.objects_dir, fname)
            if fname.startswith(_TMP_PREFIX):
                _collect(path)
                continue
            if not _OBJECT_RE.match(fname):
                continue
            key = fname[:-4]
            envelope = self._load_envelope(path)
            if envelope is None or envelope.get("key") != key:
                # _load_envelope already dropped genuinely corrupt files;
                # record the removal if the file is now gone.
                if not os.path.exists(path):
                    report.removed.append(path)
                else:
                    _collect(path)
                continue
            meta = dict(envelope["meta"])
            version = int(meta.get("version", 0))
            if not all_versions and version != current_version:
                _collect(path)
                continue
            with contextlib.suppress(OSError):
                meta["size"] = os.path.getsize(path)
            survivors[key] = meta
            report.kept += 1
        if not dry_run:
            with self._manifest_lock():
                self._write_manifest(survivors)
        return report


# ----------------------------------------------------------------------
# Legacy cache migration (pre-v8 md5 pickles)
# ----------------------------------------------------------------------

def migrate_legacy(
    store: RunStore,
    legacy_dir: Optional[str] = None,
    legacy_version: int = CACHE_VERSION - 1,
    prune: bool = False,
) -> MigrationReport:
    """One-shot import of legacy ``<md5>.pkl`` results into ``store``.

    The legacy scheme stored a bare pickled ``ExperimentResult`` under
    ``md5(f"v{N}|{scenario!r}")``. Every result carries its scenario, so
    each pickle is validated by recomputing its legacy key: a match
    means the entry belongs to ``legacy_version`` physics and is
    re-stored under the canonical key; a mismatch means the entry is
    from an older epoch (stale) and is skipped. Unreadable pickles are
    reported as corrupt. With ``prune=True`` all processed legacy files
    are deleted afterwards.
    """
    from .keys import job_key  # local import keeps module deps obvious

    legacy_dir = legacy_dir if legacy_dir is not None else store.root
    report = MigrationReport()
    try:
        names = sorted(os.listdir(legacy_dir))
    except FileNotFoundError:
        return report
    for fname in names:
        if not _LEGACY_RE.match(fname):
            continue
        path = os.path.join(legacy_dir, fname)
        stem = fname[:-4]
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
            scenario = result.scenario
        except Exception:
            report.corrupt.append(path)
            if prune:
                with contextlib.suppress(OSError):
                    os.unlink(path)
                    report.pruned.append(path)
            continue
        if legacy_key(scenario, legacy_version) != stem:
            report.stale.append(path)
        else:
            key = job_key(scenario)
            store.put(
                key,
                result,
                meta={
                    "name": scenario.name,
                    "version": CACHE_VERSION,
                    "wall_seconds": float(getattr(result, "wall_seconds", 0.0)),
                    "events": int(getattr(result, "events_processed", 0)),
                    "migrated_from": fname,
                },
            )
            report.migrated.append(path)
        if prune:
            with contextlib.suppress(OSError):
                os.unlink(path)
                report.pruned.append(path)
    return report
