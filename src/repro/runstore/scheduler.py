"""Fault-tolerant parallel job scheduler over the run store.

:func:`run_jobs` executes a batch of simulation jobs with:

- **deduplication** — jobs with identical cache keys (same scenario,
  options and :data:`~repro.runstore.keys.CACHE_VERSION`) simulate
  once; the result fans out to every requesting position;
- **caching** — with a :class:`~repro.runstore.store.RunStore`
  attached, previously stored results are served without simulating
  and fresh results are persisted *by the worker, as soon as each job
  finishes* (atomic writes), so a killed sweep loses at most the
  in-flight jobs;
- **checkpoint/resume** — re-running the same batch against the same
  store re-simulates only the keys with no stored result;
- **crash isolation** — workers run in a ``ProcessPoolExecutor`` via
  ``submit`` with per-future handling: one worker dying (OOM-kill,
  segfault, ``SIGKILL``) breaks the pool, which is rebuilt, and only
  the unfinished jobs are resubmitted, each within a bounded retry
  budget. Other jobs' completed results are never discarded;
- **per-job timeout** — enforced *inside* the worker with a POSIX
  interval timer, so a runaway simulation cannot wedge the sweep;
- **observability** — every lifecycle step emits a
  :class:`~repro.runstore.progress.JobEvent` (wall time, events/sec)
  and the call returns aggregate
  :class:`~repro.runstore.progress.SweepStats`.

Exceptions raised *by the simulation itself* are deterministic, so they
are not retried: the job is marked failed immediately. Retries cover
infrastructure faults only (worker crashes and timeouts).
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.experiment import run_experiment
from ..core.scenarios import Scenario
from ..faults.watchdog import WatchdogConfig
from .keys import CACHE_VERSION, job_key
from .progress import JobEvent, ProgressCallback, SweepStats
from .store import RunStore

RunFn = Callable[..., Any]

#: Default additional attempts granted after a worker crash or timeout.
DEFAULT_RETRIES = 2


@dataclass(frozen=True)
class RunOptions:
    """The ``run_experiment`` keyword options that shape a result.

    ``watchdog`` and ``max_events`` default to ``None`` and are omitted
    from both the kwargs and the canonical (hashed) form when unset, so
    pre-existing cache keys are unaffected by their introduction.
    """

    record_drop_times: bool = True
    convergence_check: bool = False
    watchdog: Optional[WatchdogConfig] = None
    max_events: Optional[int] = None

    def to_kwargs(self) -> Dict[str, Any]:
        kwargs: Dict[str, Any] = {
            "record_drop_times": self.record_drop_times,
            "convergence_check": self.convergence_check,
        }
        if self.watchdog is not None:
            kwargs["watchdog"] = self.watchdog
        if self.max_events is not None:
            kwargs["max_events"] = self.max_events
        return kwargs

    def to_canonical(self) -> Dict[str, Any]:
        """The dict hashed into the cache key."""
        canonical: Dict[str, Any] = {
            "record_drop_times": self.record_drop_times,
            "convergence_check": self.convergence_check,
        }
        if self.watchdog is not None:
            canonical["watchdog"] = dataclasses.asdict(self.watchdog)
        if self.max_events is not None:
            canonical["max_events"] = self.max_events
        return canonical


@dataclass(frozen=True)
class Job:
    """One unit of schedulable work: a scenario plus run options."""

    scenario: Scenario
    options: RunOptions = RunOptions()

    def key(self, version: int = CACHE_VERSION) -> str:
        return job_key(self.scenario, self.options.to_canonical(), version)


@dataclass(frozen=True)
class JobFailure:
    """Terminal failure record for one unique job."""

    key: str
    name: str
    kind: str  # "error" | "timeout" | "crash"
    attempts: int
    error: str

    def render(self) -> str:
        return f"{self.name or self.key[:12]} [{self.kind}, {self.attempts} attempt(s)]: {self.error}"


@dataclass
class SweepOutcome:
    """Everything :func:`run_jobs` produced."""

    results: List[Any]
    stats: SweepStats
    failures: List[JobFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


class SweepError(RuntimeError):
    """Some jobs failed terminally; completed results are preserved.

    ``results`` is aligned with the input jobs (``None`` at failed
    positions) and — when a store is attached — every completed result
    has already been persisted, so a re-run only repeats the failures.
    """

    def __init__(self, failures: List[JobFailure], results: List[Any], stats: SweepStats):
        self.failures = failures
        self.results = results
        self.stats = stats
        lines = "; ".join(f.render() for f in failures[:3])
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(
            f"{len(failures)} of {stats.unique} unique job(s) failed: {lines}{more}"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _JobTimeout(BaseException):
    """Raised by the SIGALRM handler; BaseException so simulation code
    that catches ``Exception`` cannot swallow the deadline."""


@dataclass
class _Outcome:
    """What a worker reports back for one attempt (always picklable)."""

    status: str  # "ok" | "timeout" | "error"
    key: str
    wall_seconds: float = 0.0
    events: int = 0
    result: Any = None
    error: str = ""
    #: Run completed but was truncated by its watchdog/event budget
    #: (the result is partial and carries a ``health`` record).
    degraded: bool = False


def _run_with_timeout(
    run_fn: RunFn, scenario: Scenario, kwargs: Dict[str, Any], timeout: Optional[float]
) -> Any:
    if not timeout or not hasattr(signal, "setitimer"):
        return run_fn(scenario, **kwargs)

    def _on_alarm(signum: int, frame: Any) -> None:
        raise _JobTimeout()

    old = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run_fn(scenario, **kwargs)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def _execute(
    key: str,
    scenario: Scenario,
    kwargs: Dict[str, Any],
    run_fn: RunFn,
    timeout: Optional[float],
    store_root: Optional[str],
    version: int,
) -> _Outcome:
    """Run one job in the current process; never raises (crashes aside)."""
    # Host-clock reads are intentional throughout: they time the *real*
    # execution for observability and never feed the simulated clock.
    start = time.perf_counter()  # repro-lint: disable=RPR001
    try:
        result = _run_with_timeout(run_fn, scenario, kwargs, timeout)
    except _JobTimeout:
        wall = time.perf_counter() - start  # repro-lint: disable=RPR001
        return _Outcome(
            "timeout", key, wall_seconds=wall,
            error=f"timed out after {timeout}s",
        )
    except Exception:
        wall = time.perf_counter() - start  # repro-lint: disable=RPR001
        return _Outcome(
            "error", key, wall_seconds=wall,
            error=traceback.format_exc(limit=8).strip().splitlines()[-1],
        )
    wall = time.perf_counter() - start  # repro-lint: disable=RPR001
    events = int(getattr(result, "events_processed", 0))
    health = getattr(result, "health", None)
    degraded = health is not None and not health.ok
    outcome = _Outcome(
        "ok", key, wall_seconds=wall, events=events, result=result,
        degraded=degraded,
    )
    if store_root is not None:
        # Persist from the worker so a later parent death cannot lose
        # this result; a failed write degrades to a cache miss next run.
        # Degraded (watchdog/budget-truncated) partial results are stored
        # too: the truncation is deterministic, so a re-run would only
        # reproduce the same partial result the slow way.
        meta: Dict[str, Any] = {
            "name": scenario.name,
            "version": version,
            "wall_seconds": wall,
            "events": events,
        }
        if degraded:
            meta["health_reason"] = health.reason
        try:
            RunStore(store_root).put(key, result, meta=meta)
        except Exception as exc:  # pragma: no cover - disk-full etc.
            outcome.error = f"result not persisted: {exc!r}"
    return outcome


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def run_jobs(
    jobs: Sequence[Job],
    store: Optional[RunStore] = None,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    fresh: bool = False,
    run_fn: RunFn = run_experiment,
    progress: Optional[ProgressCallback] = None,
    strict: bool = True,
    version: int = CACHE_VERSION,
) -> SweepOutcome:
    """Execute ``jobs`` (deduplicated, cached, fault-tolerant).

    Parameters
    ----------
    store:
        Attach a result store: hits skip simulation, fresh results are
        persisted as they complete, and re-runs resume from what is
        already stored.
    workers:
        Process count. ``None`` chooses ``min(pending, cpu_count)``;
        ``<= 1`` (or a single pending job) runs inline.
    timeout:
        Per-job wall-clock limit in seconds, enforced in the worker.
    retries:
        Additional attempts after a worker crash or timeout. Exceptions
        raised by the simulation itself are never retried.
    fresh:
        Ignore stored results (they are overwritten on completion).
    strict:
        Raise :class:`SweepError` when any job fails terminally;
        with ``strict=False`` failed positions are ``None`` instead.

    Returns a :class:`SweepOutcome` whose ``results`` align with
    ``jobs`` (duplicates share one result object).
    """
    sweep_start = time.perf_counter()  # repro-lint: disable=RPR001
    stats = SweepStats(jobs=len(jobs))
    results: List[Any] = [None] * len(jobs)
    failures: List[JobFailure] = []

    index_map: Dict[str, List[int]] = {}
    job_by_key: Dict[str, Job] = {}
    order: List[str] = []
    for i, job in enumerate(jobs):
        k = job.key(version)
        if k not in index_map:
            index_map[k] = []
            job_by_key[k] = job
            order.append(k)
        index_map[k].append(i)
    stats.unique = len(order)

    def _emit(event: JobEvent) -> None:
        stats.observe(event)
        if progress is not None:
            progress(event)

    def _fill(key: str, payload: Any) -> None:
        for i in index_map[key]:
            results[i] = payload

    def _name(key: str) -> str:
        return job_by_key[key].scenario.name

    def _settle(key: str, outcome: _Outcome, attempt: int) -> None:
        """Record a terminal ok/timeout/error outcome."""
        if outcome.status == "ok":
            _fill(key, outcome.result)
            health = getattr(outcome.result, "health", None)
            _emit(JobEvent(
                "degraded" if outcome.degraded else "done",
                key, _name(key), attempt=attempt,
                wall_seconds=outcome.wall_seconds, events=outcome.events,
                error=health.reason if outcome.degraded and health else "",
                payload=outcome.result,
            ))
        else:
            failures.append(JobFailure(
                key, _name(key), outcome.status, attempt, outcome.error,
            ))
            _emit(JobEvent(
                "failed", key, _name(key), attempt=attempt,
                wall_seconds=outcome.wall_seconds, error=outcome.error,
            ))

    # ------------------------------------------------------------------
    # Serve cache hits.
    # ------------------------------------------------------------------
    pending: List[str] = []
    for k in order:
        if store is not None and not fresh:
            fetched = store.fetch(k)
            if fetched is not None:
                payload, meta = fetched
                _fill(k, payload)
                _emit(JobEvent(
                    "hit", k, _name(k),
                    wall_seconds=float(meta.get("wall_seconds", 0.0)),
                    events=int(meta.get("events", 0)),
                    payload=payload,
                ))
                continue
        pending.append(k)

    store_root = store.root if store is not None else None

    # ------------------------------------------------------------------
    # Execute the misses.
    # ------------------------------------------------------------------
    if pending:
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)
        if workers <= 1 or len(pending) == 1:
            for k in pending:
                job = job_by_key[k]
                _emit(JobEvent("start", k, _name(k)))
                outcome = _execute(
                    k, job.scenario, job.options.to_kwargs(),
                    run_fn, timeout, store_root, version,
                )
                # Timeouts are not retried inline: the run is
                # deterministic, a second inline attempt would simply
                # time out again.
                _settle(k, outcome, attempt=1)
        else:
            _run_pool(
                pending, job_by_key, workers, timeout, retries, run_fn,
                store, store_root, version, _emit, _fill, _name, _settle,
                failures,
            )

    stats.elapsed_seconds = time.perf_counter() - sweep_start  # repro-lint: disable=RPR001
    if failures and strict:
        raise SweepError(failures, results, stats)
    return SweepOutcome(results=results, stats=stats, failures=failures)


def _run_pool(
    pending: List[str],
    job_by_key: Dict[str, Job],
    workers: int,
    timeout: Optional[float],
    retries: int,
    run_fn: RunFn,
    store: Optional[RunStore],
    store_root: Optional[str],
    version: int,
    _emit: Callable[[JobEvent], None],
    _fill: Callable[[str, Any], None],
    _name: Callable[[str], str],
    _settle: Callable[[str, _Outcome, int], None],
    failures: List[JobFailure],
) -> None:
    """The ``submit`` + per-future loop with crash recovery.

    Submission is deferred through ``to_submit`` so that a pool broken
    by a dying worker — whether detected from a future's result or from
    ``submit`` itself — is always recovered in one place: rebuild the
    pool, salvage what finished, and re-queue the survivors within
    their retry budgets.
    """
    attempts: Dict[str, int] = {}
    executor = ProcessPoolExecutor(max_workers=workers)
    to_submit: List[str] = list(reversed(pending))  # popped LIFO -> input order
    futures: Dict["Future[_Outcome]", str] = {}

    def _submit(pool: ProcessPoolExecutor, key: str) -> "Future[_Outcome]":
        job = job_by_key[key]
        attempts[key] = attempts.get(key, 0) + 1
        _emit(JobEvent("start", key, _name(key), attempt=attempts[key]))
        return pool.submit(
            _execute, key, job.scenario, job.options.to_kwargs(),
            run_fn, timeout, store_root, version,
        )

    def _fail(key: str, kind: str, message: str) -> None:
        failures.append(JobFailure(key, _name(key), kind, attempts[key], message))
        _emit(JobEvent(
            "failed", key, _name(key), attempt=attempts[key], error=message,
        ))

    def _retry_or_settle(key: str, outcome: _Outcome) -> None:
        if outcome.status == "timeout" and attempts[key] <= retries:
            _emit(JobEvent(
                "retry", key, _name(key), attempt=attempts[key],
                wall_seconds=outcome.wall_seconds, error=outcome.error,
            ))
            to_submit.append(key)
        else:
            _settle(key, outcome, attempts[key])

    try:
        while to_submit or futures:
            pool_broken = False
            while to_submit and not pool_broken:
                key = to_submit.pop()
                try:
                    futures[_submit(executor, key)] = key
                except BrokenProcessPool:
                    to_submit.append(key)
                    pool_broken = True

            if not pool_broken and futures:
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for fut in done:
                    key = futures.pop(fut)
                    try:
                        outcome = fut.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        futures[fut] = key  # recovered below with the rest
                        break
                    except Exception as exc:  # submission/pickling faults
                        _fail(key, "error", repr(exc))
                        continue
                    _retry_or_settle(key, outcome)

            if pool_broken:
                # A worker died (SIGKILL/OOM/segfault): every in-flight
                # future is void. Rebuild the pool, then salvage what we
                # can — a future that completed before the break still
                # holds a good outcome, and a job may have persisted its
                # result to the store just before the crash. Everything
                # else re-queues, consuming one attempt each.
                executor.shutdown(wait=False)
                executor = ProcessPoolExecutor(max_workers=workers)
                crashed = list(futures.items())
                futures.clear()
                for fut, key in crashed:
                    salvaged: Optional[_Outcome] = None
                    if fut.done():
                        try:
                            salvaged = fut.result()
                        except Exception:
                            salvaged = None
                    if salvaged is not None:
                        _retry_or_settle(key, salvaged)
                        continue
                    if store is not None:
                        fetched = store.fetch(key)
                        if fetched is not None:
                            payload, meta = fetched
                            _fill(key, payload)
                            _emit(JobEvent(
                                "done", key, _name(key), attempt=attempts[key],
                                wall_seconds=float(meta.get("wall_seconds", 0.0)),
                                events=int(meta.get("events", 0)),
                                payload=payload,
                            ))
                            continue
                    if attempts[key] <= retries:
                        _emit(JobEvent(
                            "retry", key, _name(key), attempt=attempts[key],
                            error="worker process died",
                        ))
                        to_submit.append(key)
                    else:
                        _fail(key, "crash", "worker process died repeatedly")
    finally:
        executor.shutdown(wait=False)
