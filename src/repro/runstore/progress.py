"""Progress events and sweep-level counters.

The scheduler narrates a sweep through a ``progress`` callback taking
:class:`JobEvent` instances and aggregates the same information into a
:class:`SweepStats` (the ``--json`` summary of ``repro run`` and the
``REPRO_BENCH_STATS`` dump of the benchmark harness).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

#: Event kinds, in lifecycle order.
EVENT_KINDS = ("hit", "start", "done", "degraded", "retry", "failed")

ProgressCallback = Callable[["JobEvent"], None]


@dataclass(frozen=True)
class JobEvent:
    """One scheduler observation about one job.

    ``kind`` is one of:

    - ``"hit"``    — result served from the store, no simulation;
    - ``"start"``  — job submitted for execution (attempt ``attempt``);
    - ``"done"``   — simulation finished and (if a store is attached)
      its result was persisted;
    - ``"degraded"`` — like ``done``, but the run was truncated by its
      watchdog or event budget; the (partial) result carries a
      ``health`` record explaining why;
    - ``"retry"``  — a worker crash or timeout consumed one attempt and
      the job was resubmitted;
    - ``"failed"`` — the job exhausted its attempts (or failed
      deterministically) and produced no result.
    """

    kind: str
    key: str
    name: str
    attempt: int = 1
    wall_seconds: float = 0.0
    events: int = 0
    error: str = ""
    #: The produced result, set on ``hit``/``done`` events (excluded
    #: from comparison/repr; it is a convenience for callbacks).
    payload: Any = field(default=None, compare=False, repr=False)

    @property
    def events_per_sec(self) -> float:
        """Simulator events processed per wall second for this job."""
        if self.wall_seconds <= 0.0 or self.events <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def to_json(self) -> Dict[str, Any]:
        """The event as a JSON-serialisable row (for JSONL progress logs).

        ``payload`` itself is not serialisable, but for ``degraded``
        runs its health record — why the run was truncated, which flows
        stalled, the fault timeline — is the part worth keeping, so it
        is inlined under ``"health"``.
        """
        row: Dict[str, Any] = {
            "kind": self.kind,
            "key": self.key,
            "name": self.name,
            "attempt": self.attempt,
        }
        if self.wall_seconds > 0.0:
            row["wall_seconds"] = self.wall_seconds
        if self.events > 0:
            row["events"] = self.events
        if self.error:
            row["error"] = self.error
        health = getattr(self.payload, "health", None)
        if health is not None:
            row["health"] = health.to_json()
        return row

    def render(self) -> str:
        """One human-readable progress line."""
        bits = [f"[{self.kind:>8s}]", self.name or self.key[:12]]
        if self.kind in ("done", "degraded", "failed", "retry") and self.attempt > 1:
            bits.append(f"attempt={self.attempt}")
        if self.wall_seconds > 0.0:
            bits.append(f"wall={self.wall_seconds:.2f}s")
        if self.events_per_sec > 0.0:
            bits.append(f"{self.events_per_sec / 1e3:.0f}k ev/s")
        if self.error:
            bits.append(self.error)
        return " ".join(bits)


@dataclass
class SweepStats:
    """Counters for one scheduler invocation (or several, aggregated)."""

    jobs: int = 0            #: jobs requested (including duplicates)
    unique: int = 0          #: distinct cache keys among them
    hits: int = 0            #: unique keys served from the store
    misses: int = 0          #: unique keys that had to simulate
    degraded: int = 0        #: simulated keys truncated by watchdog/budget
    retries: int = 0         #: attempts consumed by crashes/timeouts
    failures: int = 0        #: unique keys that produced no result
    wall_seconds: float = 0.0  #: summed per-job simulation wall time
    events: int = 0          #: summed simulator events processed
    elapsed_seconds: float = 0.0  #: end-to-end scheduler wall time

    @property
    def deduplicated(self) -> int:
        """Jobs answered by another identical job in the same sweep."""
        return self.jobs - self.unique

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulation throughput over summed job wall time."""
        if self.wall_seconds <= 0.0 or self.events <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def observe(self, event: JobEvent) -> None:
        """Fold one event into the counters."""
        if event.kind == "hit":
            self.hits += 1
        elif event.kind in ("done", "degraded"):
            self.misses += 1
            if event.kind == "degraded":
                self.degraded += 1
            self.wall_seconds += event.wall_seconds
            self.events += event.events
        elif event.kind == "retry":
            self.retries += 1
        elif event.kind == "failed":
            self.failures += 1

    def merge(self, other: "SweepStats") -> None:
        """Accumulate another invocation's counters into this one."""
        self.jobs += other.jobs
        self.unique += other.unique
        self.hits += other.hits
        self.misses += other.misses
        self.degraded += other.degraded
        self.retries += other.retries
        self.failures += other.failures
        self.wall_seconds += other.wall_seconds
        self.events += other.events
        self.elapsed_seconds += other.elapsed_seconds

    def to_json(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "unique": self.unique,
            "deduplicated": self.deduplicated,
            "hits": self.hits,
            "misses": self.misses,
            "degraded": self.degraded,
            "retries": self.retries,
            "failures": self.failures,
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def summary(self) -> str:
        """A one-line digest (printed after sweeps)."""
        rate = self.events_per_sec
        bits = [
            f"jobs={self.jobs}",
            f"hits={self.hits}",
            f"misses={self.misses}",
        ]
        if self.deduplicated:
            bits.append(f"deduped={self.deduplicated}")
        if self.degraded:
            bits.append(f"degraded={self.degraded}")
        if self.retries:
            bits.append(f"retries={self.retries}")
        if self.failures:
            bits.append(f"failures={self.failures}")
        bits.append(f"sim_wall={self.wall_seconds:.2f}s")
        if rate > 0.0:
            bits.append(f"{rate / 1e3:.0f}k ev/s")
        return " ".join(bits)


def print_progress(event: JobEvent, stream: Optional[Any] = None) -> None:
    """A ready-made ``progress`` callback that prints each event."""
    print(event.render(), file=stream)


def jsonl_progress(stream: Any) -> ProgressCallback:
    """A ``progress`` callback that appends one JSON row per event.

    ``stream`` is any writable text file object; the caller owns its
    lifetime. Rows are flushed eagerly so a tail of the log reflects
    the sweep's live state even if the process later dies.
    """

    def callback(event: JobEvent) -> None:
        stream.write(json.dumps(event.to_json()) + "\n")
        stream.flush()

    return callback
