"""Deterministic fault injection & graceful-degradation hardening.

The subsystem has four layers:

- :mod:`repro.faults.schedule` — declarative, picklable
  :class:`FaultSchedule`/:class:`FaultEvent` records (link blackout,
  bandwidth reduction, RTT step/spike, Gilbert–Elliott burst loss,
  buffer resize), a ``--faults`` spec grammar, and the named presets;
- :mod:`repro.faults.gilbert` — the two-state correlated-loss channel;
- :mod:`repro.faults.injector` — turns a schedule into simulator events
  against a built dumbbell, recording an auditable timeline;
- :mod:`repro.faults.watchdog` — per-flow stall detection that aborts a
  dead run into a *partial* result instead of hanging.

Faults live on the :class:`~repro.core.scenarios.Scenario` (``faults=``)
and therefore participate in the run-store cache key; every RNG involved
derives from the scenario seed, so chaos runs are exactly as
reproducible and cacheable as steady ones::

    from repro.core.scenarios import edge_scale
    from repro.core.experiment import run_experiment
    from repro.faults import PRESETS, WatchdogConfig

    sc = edge_scale(flows=10)
    sc = sc.with_overrides(faults=PRESETS["blackout"].build(sc.duration))
    result = run_experiment(sc, watchdog=WatchdogConfig(stall_budget=10.0))
    print(result.health.describe())
"""

from __future__ import annotations

from .gilbert import GilbertElliott
from .injector import FaultInjector
from .schedule import (
    DEFAULT_GE_TRANSITIONS,
    FAULT_KINDS,
    PRESETS,
    FaultEvent,
    FaultPreset,
    FaultSchedule,
)
from .watchdog import SimWatchdog, WatchdogConfig

#: Top-level alias (``repro.FAULT_PRESETS``) for the preset registry.
FAULT_PRESETS = PRESETS

__all__ = [
    "DEFAULT_GE_TRANSITIONS",
    "FAULT_KINDS",
    "FAULT_PRESETS",
    "PRESETS",
    "FaultEvent",
    "FaultInjector",
    "FaultPreset",
    "FaultSchedule",
    "GilbertElliott",
    "SimWatchdog",
    "WatchdogConfig",
]
