"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a dumbbell.

The injector is armed once after the topology is built: every fault
event becomes a simulator event at its onset time, and transient faults
schedule their own restoration at ``time + duration``. Baselines (link
rate, per-flow netem delay, buffer capacity) are captured at arm time,
so restoration is exact and nested schedules of the same kind compose
against the original configuration rather than drifting.

Everything the injector does is recorded in ``timeline`` as
``(sim_time, description)`` pairs — the fault audit trail carried into
``ExperimentResult.health``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple, Union

from ..obs.bus import EventBus
from ..sim.engine import Simulator
from ..sim.link import DelayLink
from ..sim.netem import NetemDelay
from ..sim.topology import Dumbbell
from .gilbert import GilbertElliott
from .schedule import DEFAULT_GE_TRANSITIONS, FaultEvent, FaultSchedule

#: Reverse-path element types the RTT fault knows how to impair.
_ReverseElement = Union[NetemDelay, DelayLink]


class FaultInjector:
    """Schedules a fault timeline against one built dumbbell.

    Parameters
    ----------
    rng:
        Seeded RNG for stochastic faults (burst loss). Derive it from
        the scenario seed — and from nothing else — so faulted runs are
        bit-reproducible and safely cacheable.
    """

    def __init__(
        self,
        sim: Simulator,
        schedule: FaultSchedule,
        dumbbell: Dumbbell,
        rng: random.Random,
        bus: Optional[EventBus] = None,
    ) -> None:
        """``bus`` mirrors every timeline entry onto the ``fault`` topic
        so live observers (trace recorders, dashboards) see faults as
        they are applied, not only in the post-run audit trail."""
        self.sim = sim
        self.schedule = schedule
        self.dumbbell = dumbbell
        self._rng = rng
        self._bus = bus
        self.timeline: List[Tuple[float, str]] = []
        self._armed = False
        link = dumbbell.bottleneck
        self._base_rate = link.rate_bps
        self._base_capacity = link.queue.capacity_bytes
        self._base_delays: Dict[int, float] = {}
        self._reverse: Dict[int, _ReverseElement] = {}
        for flow in dumbbell.flows:
            element = flow.receiver.reverse_path
            if isinstance(element, (NetemDelay, DelayLink)):
                self._reverse[flow.flow_id] = element
                self._base_delays[flow.flow_id] = element.delay

    def arm(self) -> None:
        """Schedule every fault event (call once, before the run starts)."""
        if self._armed:
            raise RuntimeError("fault schedule already armed")
        self._armed = True
        for event in self.schedule.events:
            self.sim.schedule_at(event.time, self._apply, event)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------

    def _record(self, description: str) -> None:
        self.timeline.append((self.sim.now, description))
        if self._bus is not None:
            self._bus.publish("fault", self.sim.now, description)

    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}")
        handler(event)
        if event.end_time is not None:
            restorer = getattr(self, f"_restore_{event.kind}")
            self.sim.schedule_at(event.end_time, restorer, event)

    # -- blackout ------------------------------------------------------

    def _apply_link_down(self, event: FaultEvent) -> None:
        self.dumbbell.bottleneck.set_down()
        self._record("link down")

    def _restore_link_down(self, event: FaultEvent) -> None:
        self.dumbbell.bottleneck.set_up()
        self._record("link up")

    # -- bandwidth -----------------------------------------------------

    def _apply_bandwidth(self, event: FaultEvent) -> None:
        rate = self._base_rate * event.value
        self.dumbbell.bottleneck.set_rate(rate)
        self._record(f"bandwidth x{event.value:g} ({rate / 1e6:.1f} Mbps)")

    def _restore_bandwidth(self, event: FaultEvent) -> None:
        self.dumbbell.bottleneck.set_rate(self._base_rate)
        self._record("bandwidth restored")

    # -- RTT step / spike ---------------------------------------------

    def _target_flows(self, event: FaultEvent) -> List[int]:
        if event.flows is None:
            return sorted(self._reverse)
        return [fid for fid in event.flows if fid in self._reverse]

    def _apply_rtt(self, event: FaultEvent) -> None:
        flows = self._target_flows(event)
        for fid in flows:
            self._set_delay(fid, self._base_delays[fid] * event.value)
        self._record(f"rtt x{event.value:g} on {len(flows)} flow(s)")

    def _restore_rtt(self, event: FaultEvent) -> None:
        flows = self._target_flows(event)
        for fid in flows:
            self._set_delay(fid, self._base_delays[fid])
        self._record("rtt restored")

    def _set_delay(self, flow_id: int, delay: float) -> None:
        element = self._reverse[flow_id]
        if isinstance(element, NetemDelay):
            element.set_delay(delay)
        else:
            element.delay = delay

    # -- Gilbert–Elliott burst loss -----------------------------------

    def _apply_burst_loss(self, event: FaultEvent) -> None:
        p_enter, p_exit = event.params or DEFAULT_GE_TRANSITIONS
        model = GilbertElliott(
            p_enter=p_enter,
            p_exit=p_exit,
            loss_bad=event.value,
            rng=random.Random(self._rng.getrandbits(32)),
        )
        self.dumbbell.bottleneck.loss_model = model
        self._record(
            f"burst loss on (p_bad={event.value:g}, "
            f"avg loss {model.stationary_loss_rate:.2%})"
        )

    def _restore_burst_loss(self, event: FaultEvent) -> None:
        model = self.dumbbell.bottleneck.loss_model
        self.dumbbell.bottleneck.loss_model = None
        dropped = model.drops if isinstance(model, GilbertElliott) else 0
        self._record(f"burst loss off ({dropped} packet(s) dropped)")

    # -- buffer resize -------------------------------------------------

    def _apply_buffer(self, event: FaultEvent) -> None:
        capacity = max(1, int(self._base_capacity * event.value))
        self.dumbbell.queue.set_capacity(capacity, now=self.sim.now)
        self._record(f"buffer x{event.value:g} ({capacity} B)")

    def _restore_buffer(self, event: FaultEvent) -> None:
        self.dumbbell.queue.set_capacity(self._base_capacity, now=self.sim.now)
        self._record("buffer restored")
