"""Deterministic fault schedules.

A :class:`FaultSchedule` is an ordered list of timed :class:`FaultEvent`
records describing *when* the network misbehaves and *how*: link
blackouts, bottleneck bandwidth reduction, RTT steps/spikes on the netem
path, Gilbert–Elliott burst loss, and buffer resizing. Schedules are
declarative and picklable; :class:`~repro.faults.injector.FaultInjector`
turns them into simulator events against a built dumbbell.

Fault events live on the :class:`~repro.core.scenarios.Scenario`
(``faults=`` field), so they participate in the run-store cache key: a
faulted run is exactly as reproducible and cacheable as a steady one.
All stochastic elements (burst loss) draw from RNGs derived from the
scenario seed.

The module also defines the named **presets** behind ``repro run
--faults <name>`` and ``repro faults ls`` — blackout, flap, rtt-spike,
burst-loss — each scaled to the scenario duration at build time, plus a
tiny spec grammar for ad-hoc schedules::

    down@8+2                link down at t=8 s, restored at t=10 s
    down@8                  link down at t=8 s, never restored
    bw@10+5=0.25            bottleneck at 25% rate for 5 s
    rtt@12+1=4              netem delay x4 for 1 s
    gilbert@5+10=0.3        burst loss (bad-state drop prob 0.3) for 10 s
    buffer@6+3=0.1          bottleneck buffer shrunk to 10% for 3 s

Tokens are comma-separated and may mix presets with raw events:
``--faults "blackout,rtt@20+1=4"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

#: Recognised fault kinds (the ``kind`` field of :class:`FaultEvent`).
FAULT_KINDS = ("link_down", "bandwidth", "rtt", "burst_loss", "buffer")

#: Kinds whose ``value`` is a required positive multiplier/probability.
_VALUED_KINDS = ("bandwidth", "rtt", "burst_loss", "buffer")

#: Spec-token aliases for the kinds.
_KIND_ALIASES = {
    "down": "link_down",
    "link_down": "link_down",
    "bw": "bandwidth",
    "bandwidth": "bandwidth",
    "rtt": "rtt",
    "gilbert": "burst_loss",
    "burst_loss": "burst_loss",
    "buffer": "buffer",
}

#: Default Gilbert–Elliott transition probabilities per packet:
#: (P[good->bad], P[bad->good]). With these, bad bursts last ~5 packets
#: and strike ~9% of the time — squarely in the correlated-loss regime
#: the Gilbert channel literature uses to stress loss-rate models.
DEFAULT_GE_TRANSITIONS = (0.02, 0.2)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    time:
        Absolute simulated onset time in seconds.
    duration:
        How long the fault lasts before the injector restores the
        baseline; ``None`` means it is never restored (e.g. a permanent
        blackout).
    value:
        Kind-specific magnitude: rate multiplier (``bandwidth``), delay
        multiplier (``rtt``), bad-state drop probability
        (``burst_loss``), capacity multiplier (``buffer``). Unused for
        ``link_down``.
    params:
        Extra kind-specific numbers. For ``burst_loss``: the
        ``(P[good->bad], P[bad->good])`` per-packet transition
        probabilities (default :data:`DEFAULT_GE_TRANSITIONS`).
    flows:
        For ``rtt`` faults: the flow ids to impair (``None`` = every
        flow). Other kinds act on the shared bottleneck and ignore it.
    """

    kind: str
    time: float
    duration: Optional[float] = None
    value: float = 0.0
    params: Tuple[float, ...] = ()
    flows: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault duration must be positive, got {self.duration}")
        if self.kind in _VALUED_KINDS and self.value <= 0:
            raise ValueError(f"{self.kind} fault needs a positive value")
        if self.kind == "burst_loss":
            if not self.value < 1.0:
                raise ValueError("burst_loss drop probability must be < 1")
            transitions = self.params or DEFAULT_GE_TRANSITIONS
            if len(transitions) != 2 or not all(0.0 < p <= 1.0 for p in transitions):
                raise ValueError(
                    "burst_loss params must be two transition probabilities in (0, 1]"
                )

    @property
    def end_time(self) -> Optional[float]:
        """When the injector restores the baseline (``None`` = never)."""
        if self.duration is None:
            return None
        return self.time + self.duration

    def describe(self) -> str:
        """Compact human-readable form (used in timelines and ``faults ls``)."""
        span = f"@{self.time:g}" + (f"+{self.duration:g}" if self.duration else "")
        if self.kind == "link_down":
            return f"link_down{span}"
        detail = f"={self.value:g}"
        if self.kind == "burst_loss" and self.params:
            detail += "(" + ",".join(f"{p:g}" for p in self.params) + ")"
        return f"{self.kind}{span}{detail}"


class FaultSchedule:
    """An immutable, time-sorted collection of fault events."""

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.kind))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def describe(self) -> str:
        return ", ".join(e.describe() for e in self.events) or "(empty)"

    @classmethod
    def from_spec(cls, spec: str, duration: float) -> "FaultSchedule":
        """Parse the ``--faults`` grammar (see module docstring).

        ``duration`` is the scenario duration; presets scale to it.
        """
        events = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if token in PRESETS:
                events.extend(PRESETS[token].build(duration))
                continue
            events.append(_parse_token(token))
        if not events:
            raise ValueError(f"fault spec {spec!r} contains no events")
        return cls(events)


def _parse_token(token: str) -> FaultEvent:
    """One raw spec token: ``kind@time[+duration][=value]``."""
    head, sep, tail = token.partition("@")
    kind = _KIND_ALIASES.get(head.strip())
    if kind is None or not sep:
        known = ", ".join(sorted(set(_KIND_ALIASES)))
        presets = ", ".join(sorted(PRESETS))
        raise ValueError(
            f"bad fault token {token!r}: expected a preset ({presets}) or "
            f"kind@time[+duration][=value] with kind in {{{known}}}"
        )
    timing, _, value_text = tail.partition("=")
    start_text, _, duration_text = timing.partition("+")
    try:
        time = float(start_text)
        duration = float(duration_text) if duration_text else None
        value = float(value_text) if value_text else 0.0
    except ValueError:
        raise ValueError(f"bad fault token {token!r}: non-numeric field") from None
    if kind in _VALUED_KINDS and not value_text:
        raise ValueError(f"bad fault token {token!r}: {kind} needs =value")
    return FaultEvent(kind=kind, time=time, duration=duration, value=value)


# ----------------------------------------------------------------------
# Named presets (repro run --faults <name>; repro faults ls)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultPreset:
    """A named, duration-scaled schedule template."""

    name: str
    summary: str
    build: Callable[[float], Tuple[FaultEvent, ...]]

    def describe(self, duration: float = 30.0) -> str:
        return FaultSchedule(self.build(duration)).describe()


def _blackout(duration: float) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent("link_down", time=0.4 * duration, duration=0.1 * duration),
    )


def _flap(duration: float) -> Tuple[FaultEvent, ...]:
    dip = max(0.02 * duration, 1e-3)
    return tuple(
        FaultEvent("link_down", time=frac * duration, duration=dip)
        for frac in (0.3, 0.5, 0.7)
    )


def _rtt_spike(duration: float) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent("rtt", time=0.5 * duration, duration=0.1 * duration, value=4.0),
    )


def _burst_loss(duration: float) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            "burst_loss",
            time=0.3 * duration,
            duration=0.5 * duration,
            value=0.3,
            params=DEFAULT_GE_TRANSITIONS,
        ),
    )


PRESETS: Dict[str, FaultPreset] = {
    preset.name: preset
    for preset in (
        FaultPreset(
            "blackout",
            "one mid-run link outage (10% of the duration, starting at 40%)",
            _blackout,
        ),
        FaultPreset(
            "flap",
            "three short link flaps (2% of the duration each) at 30/50/70%",
            _flap,
        ),
        FaultPreset(
            "rtt-spike",
            "netem delay x4 for 10% of the duration, starting at 50%",
            _rtt_spike,
        ),
        FaultPreset(
            "burst-loss",
            "Gilbert-Elliott burst loss (p_bad=0.3) over the middle half",
            _burst_loss,
        ),
    )
}
