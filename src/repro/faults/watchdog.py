"""Stall detection for the experiment loop.

Long faulted runs can strand flows: a blackout outlasting the RTO
backoff ceiling leaves a sender retransmitting into a dead link forever,
and a mis-wired component can deadlock a flow outright. Without defense
the only backstop is the runstore scheduler's wall-clock SIGALRM, which
kills the whole job and discards everything.

:class:`SimWatchdog` is the graceful alternative. Armed on a
:class:`~repro.sim.engine.Simulator`, it checks every
``check_interval`` simulated seconds whether each flow has made
*delivery* progress — cumulative delivered packets or ACKs received,
read through :meth:`repro.instrumentation.flowmon.FlowMonitor.
progress_marks` — and declares a flow **stalled** once it has gone
``stall_budget`` simulated seconds without either counter moving.
Retransmissions into a dead link do not count as progress (packets-sent
keeps growing during a blackout; deliveries do not).

When every runnable flow is stalled the watchdog aborts the run via
:meth:`Simulator.stop`; ``run_experiment`` then returns a *partial*
:class:`~repro.core.results.ExperimentResult` whose ``health`` record
carries the stalled flows, the fault timeline and the truncation time —
so a sweep degrades per-flow instead of losing the job.

The zero-sim-time-progress livelock (a cycle of same-instant events)
cannot be caught from inside the event stream — a watchdog event
scheduled in the future never fires. That failure mode is covered by
the ``max_events`` budget ``run_experiment`` always arms (see
``default_event_budget``), which the watchdog converts into the same
graceful partial result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..instrumentation.flowmon import FlowMonitor
from ..obs.bus import EventBus
from ..sim.engine import Simulator


@dataclass(frozen=True)
class WatchdogConfig:
    """Tuning for :class:`SimWatchdog` (hashed into run-store keys).

    Parameters
    ----------
    stall_budget:
        Simulated seconds a flow may go without delivery progress before
        it is declared stalled. Must comfortably exceed the longest
        legitimate quiet period — the RTO backoff ceiling (60 s by
        default) is the natural floor for production runs; tests use
        smaller budgets against scaled-down RTO ceilings.
    check_interval:
        How often the watchdog samples, in simulated seconds
        (default: ``stall_budget / 4``).
    abort_when_all_stalled:
        Abort the run once every runnable flow is stalled. With
        ``False`` the watchdog only records stalled flows in ``health``.
    """

    stall_budget: float = 60.0
    check_interval: Optional[float] = None
    abort_when_all_stalled: bool = True

    def __post_init__(self) -> None:
        if self.stall_budget <= 0:
            raise ValueError("stall_budget must be positive")
        if self.check_interval is not None and self.check_interval <= 0:
            raise ValueError("check_interval must be positive")

    @property
    def interval(self) -> float:
        return (
            self.check_interval
            if self.check_interval is not None
            else self.stall_budget / 4.0
        )


class SimWatchdog:
    """Periodic per-flow stall detector (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        monitor: FlowMonitor,
        start_times: Sequence[float],
        config: Optional[WatchdogConfig] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        """``bus`` switches progress observation onto the event bus: one
        wildcard ``cwnd`` subscription counts per-flow ACK events, which
        move exactly when the polled ``(delivered, acks)`` marks move
        (both advance once per processed ACK, and delivery only happens
        inside ACK processing), so the stall verdicts — and therefore
        the run results — are identical to the polling path while the
        watchdog coexists with any other subscriber on the same sender."""
        if len(start_times) != len(monitor.senders):
            raise ValueError("need one start time per monitored flow")
        self.sim = sim
        self.monitor = monitor
        self.config = config or WatchdogConfig()
        self.aborted = False
        self.abort_reason = ""
        self.stalled_flows: List[int] = []
        self.checks = 0
        self._start_times: Dict[int, float] = {
            sender.flow_id: start
            for sender, start in zip(monitor.senders, start_times)
        }
        self._last_marks: Dict[int, Any] = {}
        self._last_progress: Dict[int, float] = {}
        self._armed = False
        self._ack_counts: Optional[Dict[int, int]] = None
        if bus is not None:
            self._ack_counts = {fid: 0 for fid in self._start_times}
            bus.subscribe("cwnd", self._on_cwnd_event)

    def _on_cwnd_event(self, now: float, flow_id: int, kind: str, cwnd: float) -> None:
        # Only "ack" marks progress: "rto"/"loss_event" fire while a
        # sender retransmits into a dead link, which is exactly the
        # stall signature the watchdog exists to catch.
        if kind == "ack" and self._ack_counts is not None:
            self._ack_counts[flow_id] = self._ack_counts.get(flow_id, 0) + 1

    def _marks(self) -> Dict[int, Any]:
        """Per-flow progress marks: bus-fed ACK counts when subscribed,
        otherwise the monitor's polled ``(delivered, acks)`` counters."""
        if self._ack_counts is not None:
            return dict(self._ack_counts)
        return dict(self.monitor.progress_marks())

    def arm(self) -> None:
        """Start the periodic checks (call once, before the run)."""
        if self._armed:
            raise RuntimeError("watchdog already armed")
        self._armed = True
        self.sim.schedule(self.config.interval, self._check)

    def abort(self, reason: str) -> None:
        """Record an abort and stop the running event loop."""
        self.aborted = True
        self.abort_reason = reason
        self.sim.stop()

    def _check(self) -> None:
        self.checks += 1
        now = self.sim.now
        marks = self._marks()
        stalled: List[int] = []
        runnable = 0
        for sender in self.monitor.senders:
            fid = sender.flow_id
            if sender.completed or now < self._start_times[fid]:
                continue  # finished, or not yet started: can't stall
            runnable += 1
            mark = marks[fid]
            if mark != self._last_marks.get(fid):
                self._last_marks[fid] = mark
                self._last_progress[fid] = now
                continue
            since = now - self._last_progress.setdefault(fid, now)
            if since >= self.config.stall_budget:
                stalled.append(fid)
        self.stalled_flows = stalled
        if runnable and len(stalled) == runnable and self.config.abort_when_all_stalled:
            self.abort("stall")
            return
        self.sim.schedule(self.config.interval, self._check)
