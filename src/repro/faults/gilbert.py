"""Gilbert–Elliott two-state burst-loss channel.

The classic correlated-loss model (Gilbert 1960, Elliott 1963): the
channel is a two-state Markov chain advanced once per packet. In the
*good* state packets survive (optionally with a small residual loss
probability); in the *bad* state each packet is dropped with a high
probability, producing the loss *bursts* that distinguish real drop-tail
dynamics from the i.i.d.-loss assumption behind the Mathis model — the
exact distinction the paper's F3 loss-vs-halving-rate analysis probes.

The model implements the :class:`repro.sim.link.LossModel` protocol and
attaches to a :class:`~repro.sim.link.Link` or
:class:`~repro.sim.netem.NetemDelay` via their ``loss_model`` hook. All
randomness comes from the injected RNG, which the fault layer derives
from the scenario seed, so burst patterns are reproducible.
"""

from __future__ import annotations

import random

from ..sim.packet import Packet


class GilbertElliott:
    """Per-packet two-state Markov loss process.

    Parameters
    ----------
    p_enter:
        Per-packet probability of moving good -> bad.
    p_exit:
        Per-packet probability of moving bad -> good. Expected burst
        length is ``1 / p_exit`` packets.
    loss_bad:
        Drop probability while in the bad state (classic Gilbert uses
        1.0; values below 1 give the "Gilbert–Elliott" generalisation).
    loss_good:
        Residual drop probability in the good state (default 0).
    rng:
        Seeded RNG; required so burst patterns stay reproducible.
    """

    def __init__(
        self,
        p_enter: float,
        p_exit: float,
        loss_bad: float,
        rng: random.Random,
        loss_good: float = 0.0,
    ) -> None:
        if not 0.0 < p_enter <= 1.0 or not 0.0 < p_exit <= 1.0:
            raise ValueError("transition probabilities must be in (0, 1]")
        if not 0.0 < loss_bad <= 1.0:
            raise ValueError("loss_bad must be in (0, 1]")
        if not 0.0 <= loss_good < 1.0:
            raise ValueError("loss_good must be in [0, 1)")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.loss_bad = loss_bad
        self.loss_good = loss_good
        self.bad = False
        self.drops = 0
        self.packets_seen = 0
        self.bursts = 0
        self._rng = rng

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run expected loss rate of the chain (for sizing faults)."""
        time_bad = self.p_enter / (self.p_enter + self.p_exit)
        return time_bad * self.loss_bad + (1.0 - time_bad) * self.loss_good

    def should_drop(self, packet: Packet) -> bool:
        """Advance the chain one packet and decide this packet's fate."""
        self.packets_seen += 1
        if self.bad:
            if self._rng.random() < self.p_exit:
                self.bad = False
        else:
            if self._rng.random() < self.p_enter:
                self.bad = True
                self.bursts += 1
        loss = self.loss_bad if self.bad else self.loss_good
        if loss > 0.0 and self._rng.random() < loss:
            self.drops += 1
            return True
        return False
