"""Engine performance benchmarks: the BENCH trajectory.

Measures simulator throughput (executed events per wall-clock second)
on a fixed set of canonical workloads and records it as
``BENCH_engine.json``, so the repo's performance history is finally a
tracked artifact rather than folklore:

- ``core-quick-20`` / ``core-quick-100`` — the CoreScale quick-profile
  operating points (paper 1000/5000 flows at scale divisor 50). These
  are the acceptance workloads for hot-path work: the per-flow windows
  of a handful of packets make ACK processing, loss marking and timer
  re-arming dominate, exactly like the paper's at-scale regime.
- ``edge-10`` — the EdgeScale baseline (large per-flow windows, long
  SACK-free stretches).
- ``engine-micro`` — the bare event loop: self-rescheduling callbacks
  plus a constantly cancelled-and-re-armed timer population, isolating
  scheduler/heap overhead from TCP processing.

Wall-clock reads live here by design — this module measures the host,
never simulation behaviour, and nothing it computes feeds back into a
run. Results on the same scenarios stay byte-identical regardless of
how (or whether) they are benchmarked; the golden-run suite enforces
that separately.

CLI: ``repro bench [--quick] [--out FILE] [--baseline FILE]
[--fail-threshold R]`` — with a baseline, exits non-zero when any
scenario's events/sec regresses by more than the threshold (CI's
perf-smoke gate).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .core.experiment import run_experiment
from .core.scenarios import Scenario, core_scale, edge_scale
from .sim.engine import Simulator

#: Bump when the scenario set or JSON schema changes incompatibly.
BENCH_FORMAT = 1

#: Events the micro-benchmark executes per repeat.
MICRO_EVENTS = 200_000


@dataclass
class BenchResult:
    """One scenario's measured throughput (best of ``repeats``)."""

    name: str
    events: int
    wall_seconds: float
    events_per_sec: float
    sim_seconds: float
    repeats: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_seconds": self.sim_seconds,
            "repeats": self.repeats,
        }


def bench_scenarios(quick: bool) -> Dict[str, Scenario]:
    duration = 4.0 if quick else 8.0
    warmup = 1.0 if quick else 2.0
    return {
        "core-quick-20": core_scale(
            flows=1000, cca="newreno", scale=50,
            duration=duration, warmup=warmup, seed=21,
        ),
        "core-quick-100": core_scale(
            flows=5000, cca="cubic", scale=50,
            duration=duration, warmup=warmup, seed=21,
        ),
        "edge-10": edge_scale(
            flows=10, cca="newreno", duration=duration, warmup=warmup, seed=7,
        ),
    }


def _run_scenario(scenario: Scenario) -> Tuple[int, float, float]:
    start = time.perf_counter()  # repro-lint: disable=RPR001 -- host benchmark
    result = run_experiment(scenario, record_drop_times=False)
    wall = time.perf_counter() - start  # repro-lint: disable=RPR001 -- host benchmark
    return result.events_processed, wall, scenario.duration


def run_engine_micro() -> Tuple[int, float, float]:
    """Raw engine throughput: tick storm plus timer re-arm churn.

    Mimics the shape TCP imposes on the scheduler: a large population
    of periodic callbacks, each of which also keeps one pending timer
    that is cancelled and re-armed on every tick (the RTO pattern), so
    lazily cancelled entries accumulate in the heap exactly as they do
    in a real run.
    """
    sim = Simulator()
    pending: List[Any] = []

    def tick(idx: int) -> None:
        timer = pending[idx]
        if timer is not None:
            sim.cancel(timer)
        pending[idx] = sim.schedule(1.0, _noop)
        sim.schedule(0.01, tick, idx)

    def _noop() -> None:
        pass

    workers = 200
    for idx in range(workers):
        pending.append(None)
        sim.schedule(0.01 * (idx + 1) / workers, tick, idx)
    start = time.perf_counter()  # repro-lint: disable=RPR001 -- host benchmark
    sim.run(max_events=MICRO_EVENTS)
    wall = time.perf_counter() - start  # repro-lint: disable=RPR001 -- host benchmark
    return sim.events_processed, wall, sim.now


def run_benchmarks(
    quick: bool = False,
    repeats: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, BenchResult]:
    """Run the full bench set; returns best-of-``repeats`` per scenario."""
    if repeats is None:
        repeats = 1 if quick else 2
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    jobs: List[Tuple[str, Callable[[], Tuple[int, float, float]]]] = [
        (name, (lambda sc=sc: _run_scenario(sc)))
        for name, sc in bench_scenarios(quick).items()
    ]
    jobs.append(("engine-micro", run_engine_micro))

    results: Dict[str, BenchResult] = {}
    for name, job in jobs:
        best: Optional[BenchResult] = None
        for _ in range(repeats):
            events, wall, sim_seconds = job()
            rate = events / wall if wall > 0 else 0.0
            candidate = BenchResult(name, events, wall, rate, sim_seconds, repeats)
            if best is None or candidate.events_per_sec > best.events_per_sec:
                best = candidate
        assert best is not None
        results[name] = best
        if progress is not None:
            progress(
                f"{name:16s} {best.events:>9d} events  "
                f"{best.wall_seconds:7.2f}s  {best.events_per_sec / 1e3:8.1f}k ev/s"
            )
    return results


def bench_json(
    results: Dict[str, BenchResult],
    quick: bool,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "format": BENCH_FORMAT,
        "profile": "quick" if quick else "default",
        "python": platform.python_version(),
        "scenarios": {name: r.to_json() for name, r in results.items()},
    }
    if extra:
        payload.update(extra)
    return payload


def compare_to_baseline(
    results: Dict[str, BenchResult],
    baseline: Dict[str, Any],
    fail_threshold: float,
) -> List[str]:
    """Regression check against a committed baseline document.

    Returns human-readable failure lines, one per scenario whose
    events/sec fell more than ``fail_threshold`` below the baseline.
    Scenarios missing from either side are reported as failures too —
    a silently skipped workload is how perf gates rot.
    """
    failures: List[str] = []
    base_scenarios = baseline.get("scenarios", {})
    for name, current in results.items():
        base = base_scenarios.get(name)
        if base is None:
            failures.append(f"{name}: not present in baseline (regenerate it)")
            continue
        base_rate = float(base["events_per_sec"])
        floor = base_rate * (1.0 - fail_threshold)
        if current.events_per_sec < floor:
            failures.append(
                f"{name}: {current.events_per_sec / 1e3:.1f}k ev/s is "
                f"{1.0 - current.events_per_sec / base_rate:.1%} below the "
                f"baseline {base_rate / 1e3:.1f}k ev/s "
                f"(allowed regression: {fail_threshold:.0%})"
            )
    for name in base_scenarios:
        if name not in results:
            failures.append(f"{name}: in baseline but not measured this run")
    return failures


def main(args: Any) -> int:
    """``repro bench`` entry point (argparse namespace from the CLI)."""
    results = run_benchmarks(quick=args.quick, repeats=args.repeats, progress=print)
    payload = bench_json(results, quick=args.quick)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = compare_to_baseline(results, baseline, args.fail_threshold)
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}")
            return 1
        print(
            f"all scenarios within {args.fail_threshold:.0%} of baseline "
            f"{args.baseline}"
        )
    return 0
