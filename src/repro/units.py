"""Unit conventions and conversion helpers.

Internal conventions used across the library:

- **time** is a ``float`` in seconds,
- **sizes** are ``int`` bytes,
- **rates** are ``float`` bits per second,
- **sequence numbers** count MSS-sized packets.

These helpers exist so that scenario definitions read like the paper
("10 Gbps bottleneck, 375 MB buffer, 20 ms RTT") rather than like raw
floats.
"""

from __future__ import annotations

#: Default maximum segment size, matching the paper (1448 payload bytes).
MSS = 1448

#: Wire size of a full-MSS data packet (payload + 52 bytes of headers).
DATA_PACKET_BYTES = 1500

#: Wire size of a pure ACK.
ACK_PACKET_BYTES = 40

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return value * KILO


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * MEGA


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return value * GIGA


def to_mbps(rate_bps: float) -> float:
    """Convert bits per second to megabits per second."""
    return rate_bps / MEGA


def kilobytes(value: float) -> int:
    """Convert kilobytes to bytes (rounded down)."""
    return int(value * KILO)


def megabytes(value: float) -> int:
    """Convert megabytes to bytes (rounded down)."""
    return int(value * MEGA)


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / 1_000.0


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value / 1_000_000.0


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1_000.0


def bdp_bytes(rate_bps: float, rtt_s: float) -> int:
    """Bandwidth-delay product in bytes for a link rate and an RTT.

    This is the rule of thumb the paper uses to size the bottleneck
    buffer (1 BDP at an assumed maximum RTT of 200 ms).
    """
    if rate_bps < 0 or rtt_s < 0:
        raise ValueError("rate and rtt must be non-negative")
    return int(rate_bps * rtt_s / 8.0)


def bdp_packets(rate_bps: float, rtt_s: float, packet_bytes: int = DATA_PACKET_BYTES) -> float:
    """Bandwidth-delay product expressed in packets of ``packet_bytes``."""
    if packet_bytes <= 0:
        raise ValueError("packet_bytes must be positive")
    return bdp_bytes(rate_bps, rtt_s) / packet_bytes


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Serialisation delay of ``size_bytes`` at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError("rate must be positive")
    return size_bytes * 8.0 / rate_bps
