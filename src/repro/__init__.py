"""repro — at-scale TCP congestion-control measurement harness.

A from-scratch reproduction of Philip et al., *Revisiting TCP
Congestion Control Throughput Models & Fairness Properties At Scale*
(ACM IMC 2021): a packet-level network simulator with faithful
NewReno / CUBIC / BBRv1 stacks, the paper's dumbbell testbed
methodology, and the full analysis toolchain (Mathis fitting, Jain's
fairness index, Goh-Barabási burstiness).

Quickstart::

    from repro import core_scale, run_experiment

    result = run_experiment(core_scale(flows=1000, cca="bbr", scale=50))
    print(result.summary())
    print("intra-BBR JFI:", result.jfi("bbr"))
"""

from __future__ import annotations

from .analysis import (
    FlowObservation,
    burstiness_score,
    fit_mathis,
    jains_fairness_index,
)
from .core import (
    ExperimentResult,
    FlowGroup,
    FlowResult,
    RunHealth,
    Scenario,
    competition,
    core_scale,
    edge_scale,
    run_experiment,
    run_sweep,
)
from .faults import (
    FAULT_PRESETS,
    FaultEvent,
    FaultSchedule,
    WatchdogConfig,
)
from .models import (
    cubic_throughput,
    mathis_throughput,
    padhye_throughput,
    predict_bbr_share,
)
from .obs import (
    EventBus,
    MetricsRegistry,
    SimProfiler,
    TraceRecorder,
)
from .runstore import (
    CACHE_VERSION,
    Job,
    JobEvent,
    RunOptions,
    RunStore,
    SweepError,
    SweepStats,
    job_key,
    run_jobs,
)
from .sim import Simulator
from .tcp.cca import make_cca

__version__ = "1.0.0"

__all__ = [
    "Scenario",
    "FlowGroup",
    "edge_scale",
    "core_scale",
    "competition",
    "run_experiment",
    "run_sweep",
    "CACHE_VERSION",
    "Job",
    "JobEvent",
    "RunOptions",
    "RunStore",
    "SweepError",
    "SweepStats",
    "job_key",
    "run_jobs",
    "ExperimentResult",
    "FlowResult",
    "RunHealth",
    "FAULT_PRESETS",
    "FaultEvent",
    "FaultSchedule",
    "WatchdogConfig",
    "Simulator",
    "make_cca",
    "EventBus",
    "MetricsRegistry",
    "SimProfiler",
    "TraceRecorder",
    "jains_fairness_index",
    "burstiness_score",
    "fit_mathis",
    "FlowObservation",
    "mathis_throughput",
    "padhye_throughput",
    "cubic_throughput",
    "predict_bbr_share",
    "__version__",
]
