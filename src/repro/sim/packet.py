"""Packet representation.

Packets are deliberately lightweight: a single slotted class covers both
data segments and ACKs. The simulator moves millions of these per run, so
no dataclass machinery or dictionaries are used.

Sequence numbers count MSS-sized segments (packet number space), the
standard simulator simplification — every CCA in this library operates
per-MSS anyway, mirroring how the Linux stack tracks ``packets_out``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..units import ACK_PACKET_BYTES, DATA_PACKET_BYTES

#: Type alias for a SACK block: a half-open packet-number range.
SackBlock = Tuple[int, int]


class Packet:
    """A data segment or an ACK travelling through the simulated network.

    Attributes
    ----------
    flow_id:
        Identifier of the owning flow; used by queues/monitors to
        attribute drops and by receivers to route.
    seq:
        Packet number of a data segment (index in MSS units).
    size:
        Wire size in bytes, used for serialisation delay and buffer
        occupancy.
    is_ack:
        True for ACK packets travelling the reverse path.
    ack_seq:
        Cumulative ACK: the next packet number expected by the receiver.
    sack_blocks:
        Up to three most recently formed out-of-order ranges, newest
        first (mirrors real TCP SACK option limits).
    sent_time:
        Simulated time the data segment was (re)transmitted.
    delivered / delivered_time / first_sent_time / is_app_limited:
        Delivery-rate-sampling state carried per the BBR draft
        (Cheng et al., "Delivery Rate Estimation"); echoed back by ACKs
        through the scoreboard rather than on the wire.
    retransmitted:
        True if this transmission is a retransmission (Karn's rule).
    """

    __slots__ = (
        "flow_id",
        "seq",
        "size",
        "is_ack",
        "ack_seq",
        "sack_blocks",
        "sent_time",
        "delivered",
        "delivered_time",
        "first_sent_time",
        "is_app_limited",
        "retransmitted",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int = 0,
        size: int = DATA_PACKET_BYTES,
        is_ack: bool = False,
        ack_seq: int = 0,
        sack_blocks: Optional[Tuple[SackBlock, ...]] = None,
    ) -> None:
        self.flow_id = flow_id
        self.seq = seq
        self.size = size
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.sack_blocks = sack_blocks or ()
        self.sent_time = 0.0
        self.delivered = 0
        self.delivered_time = 0.0
        self.first_sent_time = 0.0
        self.is_app_limited = False
        self.retransmitted = False

    @classmethod
    def data(cls, flow_id: int, seq: int, size: int = DATA_PACKET_BYTES) -> "Packet":
        """Build a data segment."""
        return cls(flow_id, seq=seq, size=size)

    @classmethod
    def ack(
        cls,
        flow_id: int,
        ack_seq: int,
        sack_blocks: Tuple[SackBlock, ...] = (),
        size: int = ACK_PACKET_BYTES,
    ) -> "Packet":
        """Build an ACK for ``flow_id`` acknowledging up to ``ack_seq``."""
        return cls(flow_id, size=size, is_ack=True, ack_seq=ack_seq, sack_blocks=sack_blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_ack:
            return f"Ack(flow={self.flow_id}, ack={self.ack_seq}, sack={self.sack_blocks})"
        return f"Data(flow={self.flow_id}, seq={self.seq}, size={self.size})"
