"""Dumbbell topology builder.

Reconstructs the paper's testbed (Figure 1): sender/receiver node pairs
on either side of a single bottleneck — the BESS software switch in the
paper, a rate-limited :class:`repro.sim.link.Link` with a drop-tail
queue here. Edge links are uncongested by construction (25 Gbps in the
paper), so they are modelled as pure propagation delays; per-flow base
RTT is set with a netem-style delay element on the ACK path, exactly
where the paper inserts it (at the receiver).

The builder wires one :class:`~repro.tcp.connection.TcpSender` /
:class:`~repro.tcp.connection.TcpReceiver` pair per flow and returns a
:class:`Dumbbell` handle exposing the bottleneck queue and the flows.
"""

from __future__ import annotations

import random

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..tcp.cca.base import CongestionControl
from ..tcp.connection import TcpReceiver, TcpSender
from ..units import DATA_PACKET_BYTES
from .engine import Simulator
from .link import DelayLink, Link
from .netem import NetemDelay
from .queue import DropTailQueue, Queue


@dataclass
class FlowSpec:
    """Configuration for one flow in the dumbbell.

    ``rtt`` is the flow's base (uncongested) round-trip time; the
    builder splits it between a fixed forward propagation component and
    a netem delay on the ACK path. ``start_time`` implements the paper's
    staggered flow arrival. ``total_packets=None`` gives the paper's
    infinite ("long-running") flows.
    """

    cca: CongestionControl
    rtt: float = 0.020
    start_time: float = 0.0
    total_packets: Optional[int] = None
    #: Uniform +/- jitter applied by the netem element on the ACK path.
    #: Physical testbeds have inherent timing noise that desynchronises
    #: flows; a deterministic simulator needs a little injected jitter to
    #: avoid drop-tail phase-locking artifacts (the classic ns-2 issue).
    jitter: float = 0.0
    #: Seed for this flow's netem RNG (derived by the builder if None).
    jitter_seed: Optional[int] = None


@dataclass
class Flow:
    """A wired-up sender/receiver pair."""

    flow_id: int
    spec: FlowSpec
    sender: TcpSender
    receiver: TcpReceiver


@dataclass
class Dumbbell:
    """The built topology: bottleneck link plus all flows."""

    sim: Simulator
    bottleneck: Link
    flows: List[Flow] = field(default_factory=list)

    @property
    def queue(self) -> Queue:
        return self.bottleneck.queue

    def start_all(self) -> None:
        """Start every flow at its configured start time."""
        for flow in self.flows:
            flow.sender.start(at=flow.spec.start_time)


class _Demux:
    """Delivers packets to the right per-flow endpoint by flow id."""

    __slots__ = ("_sinks",)

    def __init__(self) -> None:
        self._sinks: dict[int, object] = {}

    def register(self, flow_id: int, sink) -> None:
        self._sinks[flow_id] = sink

    def send(self, packet) -> None:
        self._sinks[packet.flow_id].send(packet)


def build_dumbbell(
    sim: Simulator,
    flow_specs: Sequence[FlowSpec],
    bottleneck_bw_bps: float,
    buffer_bytes: int,
    queue: Optional[Queue] = None,
    mss: int = DATA_PACKET_BYTES,
    bottleneck_prop_delay: float = 0.0005,
    delayed_ack: bool = True,
) -> Dumbbell:
    """Build the paper's dumbbell for the given flows.

    Parameters
    ----------
    flow_specs:
        One :class:`FlowSpec` per flow. Each flow's base RTT must be at
        least ``4 * bottleneck_prop_delay`` (the fixed propagation parts).
    bottleneck_bw_bps:
        Bottleneck link rate (the paper varies this between 100 Mbps and
        10 Gbps).
    buffer_bytes:
        Bottleneck buffer size (the paper uses ~1 BDP at 200 ms).
    queue:
        Custom queue discipline; defaults to drop-tail like the paper.
    """
    if not flow_specs:
        raise ValueError("at least one flow is required")
    if queue is None:
        queue = DropTailQueue(buffer_bytes)
    demux = _Demux()
    # All forward-path propagation (sender->switch access hop plus
    # switch->receiver hop) is folded into the bottleneck's delivery
    # delay: the edge links never congest (25 Gbps in the paper), so
    # only the total matters, and folding halves the event count.
    bottleneck = Link(
        sim,
        rate_bps=bottleneck_bw_bps,
        delay=2 * bottleneck_prop_delay,
        queue=queue,
        sink=demux,
    )
    dumbbell = Dumbbell(sim=sim, bottleneck=bottleneck)
    fixed_component = 4 * bottleneck_prop_delay
    for flow_id, spec in enumerate(flow_specs):
        if spec.rtt < fixed_component:
            raise ValueError(
                f"flow {flow_id}: rtt {spec.rtt} below fixed propagation "
                f"{fixed_component}"
            )
        sender = TcpSender(
            sim,
            flow_id,
            spec.cca,
            total_packets=spec.total_packets,
            mss=mss,
        )
        receiver = TcpReceiver(sim, flow_id, delayed_ack=delayed_ack)
        # Forward path: sender -> bottleneck (access hop folded above).
        sender.path = bottleneck
        demux.register(flow_id, receiver)
        # Reverse path: one netem element carrying the flow's base-RTT
        # delay plus the fixed reverse propagation (paper: netem at the
        # receiver sets the base RTT).
        netem_delay = spec.rtt - fixed_component
        jitter = min(spec.jitter, netem_delay + 2 * bottleneck_prop_delay)
        if netem_delay > 0 or jitter > 0:
            reverse: object = NetemDelay(
                sim,
                netem_delay + 2 * bottleneck_prop_delay,
                sink=sender,
                jitter=jitter,
                rng=random.Random(
                    spec.jitter_seed if spec.jitter_seed is not None else flow_id
                ),
            )
        else:
            reverse = DelayLink(sim, 2 * bottleneck_prop_delay, sink=sender)
        receiver.reverse_path = reverse
        dumbbell.flows.append(Flow(flow_id, spec, sender, receiver))
    return dumbbell
