"""Bottleneck queue disciplines.

The paper's testbed uses a drop-tail queue at the BESS software switch
sized to ~1 BDP; :class:`DropTailQueue` is the faithful equivalent.
:class:`REDQueue` is provided as an ablation extension (the paper fixes
drop-tail; DESIGN.md lists queue discipline as an ablation axis).

Queues are passive containers: the owning :class:`repro.sim.link.Link`
drives enqueue/dequeue. Drop/enqueue notification happens through
ordered listener lists (``add_drop_listener`` / ``add_enqueue_listener``,
usually wired via :class:`repro.obs.bus.EventBus`) so instrumentation
never has to subclass and any number of observers can coexist.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..lint.sanitizer import SimSanitizer

#: Callback invoked as ``drop_listener(now, packet)`` on every drop.
DropListener = Callable[[float, Packet], None]


class Queue:
    """Interface for bottleneck queue disciplines."""

    __slots__ = (
        "capacity_bytes",
        "occupancy_bytes",
        "enqueued_packets",
        "dropped_packets",
        "_items",
        "_drop_listeners",
        "_enqueue_listeners",
        "sanitizer",
    )

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.occupancy_bytes = 0
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self._items: deque[Packet] = deque()
        # Ordered multi-subscriber listener lists (see add_drop_listener).
        self._drop_listeners: list[DropListener] = []
        self._enqueue_listeners: list[DropListener] = []
        #: Byte-conservation auditor; set by SimSanitizer.watch_queue().
        self.sanitizer: Optional["SimSanitizer"] = None

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def add_drop_listener(self, fn: DropListener) -> DropListener:
        """Append a drop listener; listeners fire in attachment order."""
        self._drop_listeners.append(fn)
        return fn

    def remove_drop_listener(self, fn: DropListener) -> None:
        self._drop_listeners.remove(fn)

    def add_enqueue_listener(self, fn: DropListener) -> DropListener:
        """Append an enqueue listener; listeners fire in attachment order."""
        self._enqueue_listeners.append(fn)
        return fn

    def remove_enqueue_listener(self, fn: DropListener) -> None:
        self._enqueue_listeners.remove(fn)

    @staticmethod
    def _single(listeners: "list[DropListener]", slot: str) -> Optional[DropListener]:
        if not listeners:
            return None
        if len(listeners) == 1:
            return listeners[0]
        raise RuntimeError(f"multiple {slot}s attached; track add_{slot} handles")

    @staticmethod
    def _assign(
        listeners: "list[DropListener]", fn: Optional[DropListener], slot: str
    ) -> None:
        """Legacy single-slot assignment — refuses to clobber an observer."""
        if fn is None:
            listeners.clear()
            return
        if listeners:
            raise RuntimeError(
                f"queue already has a {slot} attached; assigning would "
                f"clobber it. Use add_{slot}() (or subscribe through "
                "repro.obs.EventBus) to attach additional observers."
            )
        listeners.append(fn)

    @property
    def drop_listener(self) -> Optional[DropListener]:
        """The sole attached drop listener, or ``None`` (legacy accessor)."""
        return self._single(self._drop_listeners, "drop_listener")

    @drop_listener.setter
    def drop_listener(self, fn: Optional[DropListener]) -> None:
        self._assign(self._drop_listeners, fn, "drop_listener")

    @property
    def enqueue_listener(self) -> Optional[DropListener]:
        """The sole attached enqueue listener, or ``None`` (legacy accessor)."""
        return self._single(self._enqueue_listeners, "enqueue_listener")

    @enqueue_listener.setter
    def enqueue_listener(self, fn: Optional[DropListener]) -> None:
        self._assign(self._enqueue_listeners, fn, "enqueue_listener")

    def _notify_drop(self, now: float, packet: Packet) -> None:
        for fn in self._drop_listeners:
            fn(now, packet)

    def offer(self, now: float, packet: Packet) -> bool:
        """Try to enqueue ``packet`` at time ``now``.

        Returns ``True`` if accepted, ``False`` if dropped. Subclasses
        implement the admission policy in :meth:`_admit`.
        """
        if self._admit(now, packet):
            self._items.append(packet)
            self.occupancy_bytes += packet.size
            self.enqueued_packets += 1
            if self.sanitizer is not None:
                self.sanitizer.on_enqueue(self, packet)
            for fn in self._enqueue_listeners:
                fn(now, packet)
            return True
        self.dropped_packets += 1
        if self.sanitizer is not None:
            self.sanitizer.on_reject(self, packet)
        self._notify_drop(now, packet)
        return False

    def poll(self, now: float = 0.0) -> Optional[Packet]:
        """Dequeue the head-of-line packet, or ``None`` if empty.

        ``now`` is the dequeue time; FIFO disciplines ignore it, but
        AQMs with dequeue-time drop decisions (CoDel) need it.
        """
        if not self._items:
            return None
        packet = self._items.popleft()
        self.occupancy_bytes -= packet.size
        if self.sanitizer is not None:
            self.sanitizer.on_dequeue(self, packet)
        return packet

    def set_capacity(self, capacity_bytes: int, now: float = 0.0) -> None:
        """Resize the buffer (fault-injection hook).

        Shrinking evicts from the *tail* (newest arrivals first) until the
        backlog fits, with full drop accounting — reconfiguring a real
        switch port buffer discards the overflow the same way. Eviction
        happens before the capacity is updated so the occupancy-within-
        capacity invariant holds at every step.
        """
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        while self._items and self.occupancy_bytes > capacity_bytes:
            packet = self._evict_tail()
            self.occupancy_bytes -= packet.size
            self.dropped_packets += 1
            if self.sanitizer is not None:
                self.sanitizer.on_queue_drop(self, packet)
            self._notify_drop(now, packet)
        self.capacity_bytes = capacity_bytes

    def _evict_tail(self) -> Packet:
        """Remove and return the newest queued packet (resize eviction)."""
        return self._items.pop()

    def _admit(self, now: float, packet: Packet) -> bool:
        raise NotImplementedError


class DropTailQueue(Queue):
    """FIFO queue that drops arrivals once the byte capacity is exceeded.

    This is the discipline used for every experiment in the paper; tail
    drops under many competing flows are exactly what produces the bursty
    loss pattern behind Findings 1-3.

    ``offer`` is overridden to inline the admission test: drop-tail sits
    on the per-packet hot path of every bottleneck, and the virtual
    ``_admit`` dispatch is measurable at CoreScale. The flattened body is
    behaviourally identical to ``Queue.offer`` + ``_admit``; ``_admit``
    is kept for discipline-agnostic callers.
    """

    __slots__ = ()

    def _admit(self, now: float, packet: Packet) -> bool:
        return self.occupancy_bytes + packet.size <= self.capacity_bytes

    def offer(self, now: float, packet: Packet) -> bool:
        size = packet.size
        occupancy = self.occupancy_bytes
        if occupancy + size <= self.capacity_bytes:
            self._items.append(packet)
            self.occupancy_bytes = occupancy + size
            self.enqueued_packets += 1
            if self.sanitizer is not None:
                self.sanitizer.on_enqueue(self, packet)
            listeners = self._enqueue_listeners
            if listeners:
                for fn in listeners:
                    fn(now, packet)
            return True
        self.dropped_packets += 1
        if self.sanitizer is not None:
            self.sanitizer.on_reject(self, packet)
        listeners = self._drop_listeners
        if listeners:
            for fn in listeners:
                fn(now, packet)
        return False


class REDQueue(Queue):
    """Random Early Detection (Floyd & Jacobson 1993), gentle variant.

    Provided for the queue-discipline ablation: RED breaks up the
    synchronized burst drops of drop-tail, which is the hypothesised
    mechanism behind the loss-rate/halving-rate divergence at scale.
    """

    def __init__(
        self,
        capacity_bytes: int,
        min_thresh_bytes: Optional[int] = None,
        max_thresh_bytes: Optional[int] = None,
        max_p: float = 0.1,
        weight: float = 0.002,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(capacity_bytes)
        self.min_thresh = min_thresh_bytes if min_thresh_bytes is not None else capacity_bytes // 4
        self.max_thresh = max_thresh_bytes if max_thresh_bytes is not None else capacity_bytes // 2
        if not 0 < self.min_thresh < self.max_thresh <= capacity_bytes:
            raise ValueError("require 0 < min_thresh < max_thresh <= capacity")
        if not 0.0 < max_p <= 1.0:
            raise ValueError("max_p must be in (0, 1]")
        self.max_p = max_p
        self.weight = weight
        self.avg_bytes = 0.0
        self._count_since_drop = -1
        self._rng = rng or random.Random(0x52ED)

    def set_capacity(self, capacity_bytes: int, now: float = 0.0) -> None:
        """Resize, rescaling both RED thresholds proportionally."""
        ratio = capacity_bytes / self.capacity_bytes
        super().set_capacity(capacity_bytes, now)
        self.min_thresh = max(1, int(self.min_thresh * ratio))
        self.max_thresh = min(
            capacity_bytes, max(self.min_thresh + 1, int(self.max_thresh * ratio))
        )

    def _admit(self, now: float, packet: Packet) -> bool:
        if self.occupancy_bytes + packet.size > self.capacity_bytes:
            return False
        self.avg_bytes += self.weight * (self.occupancy_bytes - self.avg_bytes)
        if self.avg_bytes < self.min_thresh:
            self._count_since_drop = -1
            return True
        if self.avg_bytes >= 2 * self.max_thresh:
            self._count_since_drop = 0
            return False
        # Gentle RED: probability ramps from 0..max_p over [min, max), and
        # from max_p..1 over [max, 2*max).
        if self.avg_bytes < self.max_thresh:
            fraction = (self.avg_bytes - self.min_thresh) / (self.max_thresh - self.min_thresh)
            p_base = fraction * self.max_p
        else:
            fraction = (self.avg_bytes - self.max_thresh) / self.max_thresh
            p_base = self.max_p + fraction * (1.0 - self.max_p)
        self._count_since_drop += 1
        denominator = max(1e-9, 1.0 - self._count_since_drop * p_base)
        p_actual = min(1.0, p_base / denominator)
        if self._rng.random() < p_actual:
            self._count_since_drop = 0
            return False
        return True


class CoDelQueue(Queue):
    """CoDel AQM (Nichols & Jacobson 2012), simplified.

    Controlled-delay active queue management: drops at *dequeue* time
    once the head packet's sojourn time has exceeded ``target`` for at
    least ``interval``, with the drop rate accelerating by the inverse-
    sqrt control law. Provided as a second AQM ablation axis beside RED:
    CoDel bounds queueing delay, which changes the RTT regime the
    paper's CoreScale buffer creates.
    """

    TARGET = 0.005     # 5 ms target sojourn
    INTERVAL = 0.100   # 100 ms initial interval

    def __init__(
        self,
        capacity_bytes: int,
        target: float = TARGET,
        interval: float = INTERVAL,
    ) -> None:
        super().__init__(capacity_bytes)
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self._enqueue_times: deque[float] = deque()
        # None while the head sojourn is acceptable — a sentinel rather
        # than 0.0 so no float-equality test is needed to read the state.
        self.first_above_time: Optional[float] = None
        self.dropping = False
        self.drop_next = 0.0
        self.drop_count = 0

    def _admit(self, now: float, packet: Packet) -> bool:
        if self.occupancy_bytes + packet.size > self.capacity_bytes:
            return False
        self._enqueue_times.append(now)
        return True

    def _evict_tail(self) -> Packet:
        self._enqueue_times.pop()
        return self._items.pop()

    def _pop(self) -> Optional[Packet]:
        if not self._items:
            self.first_above_time = None
            return None
        self._enqueue_times.popleft()
        packet = self._items.popleft()
        self.occupancy_bytes -= packet.size
        if self.sanitizer is not None:
            self.sanitizer.on_dequeue(self, packet)
        return packet

    def _sojourn_ok(self, now: float) -> bool:
        """True while the head packet's delay is acceptable."""
        if not self._items:
            self.first_above_time = None
            return True
        sojourn = now - self._enqueue_times[0]
        if sojourn < self.target:
            self.first_above_time = None
            return True
        if self.first_above_time is None:
            self.first_above_time = now + self.interval
            return True
        return now < self.first_above_time

    def _drop_head(self, now: float) -> None:
        self._enqueue_times.popleft()
        packet = self._items.popleft()
        self.occupancy_bytes -= packet.size
        self.dropped_packets += 1
        if self.sanitizer is not None:
            self.sanitizer.on_queue_drop(self, packet)
        self._notify_drop(now, packet)

    def poll(self, now: float = 0.0) -> Optional[Packet]:
        if self.dropping:
            if self._sojourn_ok(now):
                self.dropping = False
                return self._pop()
            while self.dropping and now >= self.drop_next and self._items:
                self._drop_head(now)
                self.drop_count += 1
                if self._sojourn_ok(now):
                    self.dropping = False
                    break
                self.drop_next += self.interval / (self.drop_count ** 0.5)
            return self._pop()
        if not self._sojourn_ok(now):
            # Enter the dropping state: drop the head now, schedule the
            # next drop one control interval out.
            self._drop_head(now)
            self.dropping = True
            self.drop_count = 1
            self.drop_next = now + self.interval
        return self._pop()
