"""netem-style impairment element.

The paper sets each flow's base RTT by adding delay with Linux ``netem``
at the receiver. :class:`NetemDelay` reproduces that: a per-flow element
adding constant delay, optional jitter, and optional random loss (the
paper uses pure delay; jitter/loss are extensions for sensitivity
studies).
"""

from __future__ import annotations

import random
from typing import Optional

from .engine import Simulator
from .link import LossModel, Sink
from .packet import Packet


class NetemDelay:
    """Constant extra delay with optional uniform jitter and random loss.

    Parameters
    ----------
    delay:
        Base one-way delay added to every packet, seconds.
    jitter:
        If non-zero, each packet's delay is drawn uniformly from
        ``[delay - jitter, delay + jitter]``. Packet reordering is
        possible under jitter, exactly as with real netem without
        reorder protection.
    loss_rate:
        Probability in [0, 1) of silently dropping each packet.
    rng:
        The element's RNG. Callers on the experiment path derive this
        from the scenario/flow seed (see ``build_dumbbell``); when
        omitted, a seed is drawn from the owning simulator's
        deterministic seed stream (:meth:`Simulator.next_seed`) so that
        two elements never share a sequence. (Previously every default
        instance used the same fixed seed, which perfectly correlated
        loss/jitter across flows.)
    """

    __slots__ = (
        "sim",
        "delay",
        "jitter",
        "loss_rate",
        "sink",
        "dropped_packets",
        "loss_model",
        "_rng",
        "_schedule",
    )

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        sink: Optional[Sink] = None,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        if jitter > delay:
            raise ValueError("jitter must not exceed the base delay")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.delay = delay
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.sink = sink
        self.dropped_packets = 0
        #: Channel-loss element (e.g. Gilbert–Elliott burst loss),
        #: consulted before the independent ``loss_rate`` draw.
        self.loss_model: Optional[LossModel] = None
        self._rng = rng or random.Random(sim.next_seed(0x4E45))
        # Bound-method fast path (see DelayLink): the element schedules
        # once per forwarded packet.
        self._schedule = sim.schedule

    def set_delay(self, delay: float, jitter: Optional[float] = None) -> None:
        """Change the base delay (fault-injection hook: RTT step/spike).

        ``jitter`` defaults to the current jitter clamped to the new
        delay, preserving the construction-time invariant. Packets
        already in flight keep the delay they were scheduled with.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if jitter is None:
            jitter = min(self.jitter, delay)
        if jitter < 0 or jitter > delay:
            raise ValueError("jitter must be in [0, delay]")
        self.delay = delay
        self.jitter = jitter

    def send(self, packet: Packet) -> None:
        if self.sink is None:
            raise RuntimeError("NetemDelay has no sink attached")
        if self.loss_model is not None and self.loss_model.should_drop(packet):
            self.dropped_packets += 1
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped_packets += 1
            return
        delay = self.delay
        if self.jitter > 0.0:
            delay += self._rng.uniform(-self.jitter, self.jitter)
        if delay <= 0.0:
            self.sink.send(packet)
        else:
            self._schedule(delay, self.sink.send, packet)
