"""Discrete-event network simulation substrate."""

from __future__ import annotations

from .engine import Event, SimulationError, Simulator
from .link import DelayLink, Link
from .netem import NetemDelay
from .packet import Packet
from .queue import DropTailQueue, Queue, REDQueue
from .topology import Dumbbell, Flow, FlowSpec, build_dumbbell

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "Packet",
    "Queue",
    "DropTailQueue",
    "REDQueue",
    "Link",
    "DelayLink",
    "NetemDelay",
    "Dumbbell",
    "Flow",
    "FlowSpec",
    "build_dumbbell",
]
