"""Discrete-event simulation engine.

A small, fast event loop built on :mod:`heapq`. Every other component in
:mod:`repro.sim` — links, queues, TCP endpoints — schedules callbacks
through a single :class:`Simulator` instance.

Design notes
------------
- Events are plain lists ``[time, seq, fn, args]`` so that heap ordering
  uses C-level list comparison on ``(time, seq)`` — this matters: the
  heap performs millions of comparisons per simulated second, and a
  Python ``__lt__`` would dominate the profile. The ``seq`` tiebreaker
  makes same-instant events fire in scheduling order (deterministic
  runs) and guarantees the comparison never reaches the callback field.
- Cancellation is lazy: :meth:`Simulator.cancel` nulls the callback and
  the main loop skips the entry when popped. ``cancel`` is O(1), which
  matters because TCP retransmission timers are re-armed constantly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..lint.sanitizer import SimSanitizer, maybe_sanitizer

#: A scheduled event: ``[time, seq, fn, args]``; ``fn is None`` once
#: cancelled or executed. Treat as opaque outside this module except for
#: the documented helpers below.
Event = List[Any]

_TIME = 0
_SEQ = 1
_FN = 2
_ARGS = 3


def event_time(event: Event) -> float:
    """Scheduled firing time of an event handle."""
    return event[_TIME]


def event_pending(event: Event) -> bool:
    """True while the event is scheduled and not yet cancelled/fired."""
    return event[_FN] is not None


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulator."""


class Simulator:
    """A discrete-event simulator with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> sim.now, fired
    (1.5, ['hello'])

    Parameters
    ----------
    sanitize:
        Enable the runtime simulation sanitizer
        (:class:`repro.lint.sanitizer.SimSanitizer`): invariant checks
        on the clock, queues, links and TCP scoreboards, failing fast
        on violation. ``None`` (the default) defers to the
        ``REPRO_SANITIZE`` environment variable.
    """

    def __init__(self, sanitize: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stop_requested = False
        self._events_processed = 0
        self._seed_seq = 0
        #: Active invariant checker, or ``None`` when sanitizing is off.
        #: Components wire themselves to it at construction time.
        self.sanitizer: Optional[SimSanitizer] = maybe_sanitizer(self, sanitize)
        #: Optional :class:`repro.obs.profiler.SimProfiler` (installed via
        #: ``profiler.install(sim)``). When set, the loop brackets every
        #: handler with ``profiler.clock()`` and reports through
        #: ``profiler.record(fn, elapsed)`` — observation only, so a
        #: profiled run stays byte-identical to an unprofiled one.
        self.profiler: Optional[Any] = None

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued, including lazily cancelled ones."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        event: Event = [self.now + delay, self._seq, fn, args]
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(event[_TIME])
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        self._seq += 1
        event: Event = [time, self._seq, fn, args]
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(time)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event. Cancelling twice is a harmless no-op."""
        event[_FN] = None
        event[_ARGS] = ()

    def next_seed(self, salt: int = 0) -> int:
        """Deterministic per-simulator seed stream for component RNGs.

        Components that need a default RNG (e.g. :class:`~repro.sim.netem.
        NetemDelay` when the caller supplies none) draw a seed here instead
        of hard-coding one: successive calls yield distinct values, so two
        elements never share an RNG sequence, while the stream itself is a
        pure function of construction order — reproducible run to run.
        """
        self._seed_seq += 1
        return (self._seed_seq * 0x9E3779B1 ^ salt) & 0xFFFFFFFF

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current event.

        The clock is left wherever the loop stopped (it is *not* advanced
        to ``until``), so callers can distinguish an early stop from
        natural completion by comparing ``now`` against their target time.
        Used by watchdogs to abort a run cleanly from inside an event.
        """
        self._stop_requested = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. Events scheduled at
            exactly ``until`` still fire, and the clock is advanced to
            ``until`` when the loop exhausts earlier events.
        max_events:
            Safety valve: stop after executing this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        heap = self._heap
        pop = heapq.heappop
        processed = self._events_processed
        budget = None if max_events is None else max_events - processed
        sanitizer = self.sanitizer
        profiler = self.profiler
        try:
            while heap:
                event = heap[0]
                fn = event[_FN]
                if fn is None:
                    pop(heap)
                    continue
                time = event[_TIME]
                if until is not None and time > until:
                    break
                pop(heap)
                if sanitizer is not None:
                    sanitizer.on_execute(time)
                self.now = time
                args = event[_ARGS]
                event[_FN] = None
                event[_ARGS] = ()
                if profiler is not None:
                    start = profiler.clock()
                    fn(*args)
                    profiler.record(fn, profiler.clock() - start)
                else:
                    fn(*args)
                processed += 1
                if self._stop_requested:
                    break
                if budget is not None:
                    budget -= 1
                    if budget <= 0:
                        break
        finally:
            self._events_processed = processed
            self._running = False
        stopped_early = self._stop_requested or (budget is not None and budget <= 0)
        if until is not None and self.now < until and not stopped_early:
            self.now = until

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (cancelled events are skipped silently).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            fn = event[_FN]
            if fn is None:
                continue
            if self.sanitizer is not None:
                self.sanitizer.on_execute(event[_TIME])
            self.now = event[_TIME]
            args = event[_ARGS]
            event[_FN] = None
            event[_ARGS] = ()
            if self.profiler is not None:
                start = self.profiler.clock()
                fn(*args)
                self.profiler.record(fn, self.profiler.clock() - start)
            else:
                fn(*args)
            self._events_processed += 1
            return True
        return False
