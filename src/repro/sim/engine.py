"""Discrete-event simulation engine.

A small, fast event loop built on :mod:`heapq`. Every other component in
:mod:`repro.sim` — links, queues, TCP endpoints — schedules callbacks
through a single :class:`Simulator` instance.

Design notes
------------
- Events are plain lists ``[time, seq, fn, args]`` so that heap ordering
  uses C-level list comparison on ``(time, seq)`` — this matters: the
  heap performs millions of comparisons per simulated second, and a
  Python ``__lt__`` would dominate the profile. The ``seq`` tiebreaker
  makes same-instant events fire in scheduling order (deterministic
  runs) and guarantees the comparison never reaches the callback field.
- Cancellation is lazy: :meth:`Simulator.cancel` nulls the callback and
  the main loop skips the entry when popped. ``cancel`` is O(1), which
  matters because TCP retransmission timers are re-armed constantly.
- Dead entries do not pile up unboundedly: once cancelled entries
  outnumber live ones (past a small floor), ``cancel`` compacts the heap
  in place — filter out the dead, re-heapify. Live events keep their
  ``(time, seq)`` keys, so the sequence of *executed* events is
  identical with or without compaction; only the heap's internal size
  (and thus per-operation cost) changes. The rebuild reuses the same
  list object, so a ``run()`` loop holding a local reference stays
  valid even when a handler's ``cancel`` triggers compaction mid-run.
- ``run`` keeps two copies of the dispatch loop: the instrumented one
  (sanitizer and/or profiler brackets around every handler) and a bare
  one with no per-event instrumentation checks. They execute events
  identically — the split exists purely so the common case pays zero
  per-event cost for observation hooks it is not using.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..lint.sanitizer import SimSanitizer, maybe_sanitizer

#: A scheduled event: ``[time, seq, fn, args]``; ``fn is None`` once
#: cancelled or executed. Treat as opaque outside this module except for
#: the documented helpers below.
Event = List[Any]

_TIME = 0
_SEQ = 1
_FN = 2
_ARGS = 3

_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify
_INF = float("inf")

#: Compaction floor: below this many dead entries the heap is left
#: alone, so small simulations never pay the rebuild.
_COMPACT_MIN = 256


def event_time(event: Event) -> float:
    """Scheduled firing time of an event handle."""
    return event[_TIME]


def event_pending(event: Event) -> bool:
    """True while the event is scheduled and not yet cancelled/fired."""
    return event[_FN] is not None


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulator."""


class Simulator:
    """A discrete-event simulator with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> sim.now, fired
    (1.5, ['hello'])

    Parameters
    ----------
    sanitize:
        Enable the runtime simulation sanitizer
        (:class:`repro.lint.sanitizer.SimSanitizer`): invariant checks
        on the clock, queues, links and TCP scoreboards, failing fast
        on violation. ``None`` (the default) defers to the
        ``REPRO_SANITIZE`` environment variable.
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_cancelled",
        "_running",
        "_stop_requested",
        "_events_processed",
        "_seed_seq",
        "sanitizer",
        "profiler",
    )

    def __init__(self, sanitize: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = 0
        #: Cancelled-but-not-yet-popped entries still in the heap.
        self._cancelled = 0
        self._running = False
        self._stop_requested = False
        self._events_processed = 0
        self._seed_seq = 0
        #: Active invariant checker, or ``None`` when sanitizing is off.
        #: Components wire themselves to it at construction time.
        self.sanitizer: Optional[SimSanitizer] = maybe_sanitizer(self, sanitize)
        #: Optional :class:`repro.obs.profiler.SimProfiler` (installed via
        #: ``profiler.install(sim)``). When set, the loop brackets every
        #: handler with ``profiler.clock()`` and reports through
        #: ``profiler.record(fn, elapsed)`` — observation only, so a
        #: profiled run stays byte-identical to an unprofiled one.
        self.profiler: Optional[Any] = None

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued, including lazily cancelled
        entries that have not been compacted away yet."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        event: Event = [self.now + delay, seq, fn, args]
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(event[_TIME])
        _heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        self._seq = seq = self._seq + 1
        event: Event = [time, seq, fn, args]
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(time)
        _heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event. Cancelling twice is a harmless no-op."""
        if event[_FN] is None:
            return
        event[_FN] = None
        event[_ARGS] = ()
        cancelled = self._cancelled + 1
        heap = self._heap
        if cancelled >= _COMPACT_MIN and cancelled * 2 > len(heap):
            # In-place rebuild (slice assignment keeps the list identity
            # for any run() loop holding a reference to it).
            heap[:] = [e for e in heap if e[_FN] is not None]
            _heapify(heap)
            self._cancelled = 0
        else:
            self._cancelled = cancelled

    def next_seed(self, salt: int = 0) -> int:
        """Deterministic per-simulator seed stream for component RNGs.

        Components that need a default RNG (e.g. :class:`~repro.sim.netem.
        NetemDelay` when the caller supplies none) draw a seed here instead
        of hard-coding one: successive calls yield distinct values, so two
        elements never share an RNG sequence, while the stream itself is a
        pure function of construction order — reproducible run to run.
        """
        self._seed_seq += 1
        return (self._seed_seq * 0x9E3779B1 ^ salt) & 0xFFFFFFFF

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current event.

        The clock is left wherever the loop stopped (it is *not* advanced
        to ``until``), so callers can distinguish an early stop from
        natural completion by comparing ``now`` against their target time.
        Used by watchdogs to abort a run cleanly from inside an event.
        """
        self._stop_requested = True

    def _next_pending_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or ``None`` if drained.

        Pops dead (cancelled) entries off the top as a side effect —
        harmless, they would be skipped anyway.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event[_FN] is None:
                _heappop(heap)
                self._cancelled -= 1
                continue
            return event[_TIME]  # type: ignore[no-any-return]
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. Events scheduled at
            exactly ``until`` still fire. The clock is advanced to
            ``until`` exactly when the run *completes*: every event due at
            or before ``until`` has executed. A run truncated early — by
            :meth:`stop` or by exhausting ``max_events`` with due events
            still pending — leaves the clock at the last executed event,
            so callers can detect the truncation. (A budget that runs out
            precisely as the last due event executes is a completed run,
            not a truncated one.)
        max_events:
            Safety valve: stop once ``events_processed`` reaches this
            total. The budget counts lifetime executed events, so a call
            with ``max_events <= events_processed`` executes nothing.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        heap = self._heap
        processed = self._events_processed
        budget = _INF if max_events is None else max_events - processed
        limit = _INF if until is None else until
        sanitizer = self.sanitizer
        profiler = self.profiler
        try:
            if sanitizer is None and profiler is None:
                # Bare loop: no per-event instrumentation checks.
                while heap:
                    event = heap[0]
                    fn = event[_FN]
                    if fn is None:
                        _heappop(heap)
                        self._cancelled -= 1
                        continue
                    time = event[_TIME]
                    if time > limit or budget <= 0:
                        break
                    budget -= 1
                    _heappop(heap)
                    self.now = time
                    args = event[_ARGS]
                    event[_FN] = None
                    event[_ARGS] = ()
                    fn(*args)
                    processed += 1
                    if self._stop_requested:
                        break
            else:
                while heap:
                    event = heap[0]
                    fn = event[_FN]
                    if fn is None:
                        _heappop(heap)
                        self._cancelled -= 1
                        continue
                    time = event[_TIME]
                    if time > limit or budget <= 0:
                        break
                    budget -= 1
                    _heappop(heap)
                    if sanitizer is not None:
                        sanitizer.on_execute(time)
                    self.now = time
                    args = event[_ARGS]
                    event[_FN] = None
                    event[_ARGS] = ()
                    if profiler is not None:
                        start = profiler.clock()
                        fn(*args)
                        profiler.record(fn, profiler.clock() - start)
                    else:
                        fn(*args)
                    processed += 1
                    if self._stop_requested:
                        break
        finally:
            self._events_processed = processed
            self._running = False
        if until is not None and self.now < until and not self._stop_requested:
            next_due = self._next_pending_time()
            if next_due is None or next_due > until:
                self.now = until

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (cancelled events are skipped silently).
        """
        heap = self._heap
        while heap:
            event = _heappop(heap)
            fn = event[_FN]
            if fn is None:
                self._cancelled -= 1
                continue
            if self.sanitizer is not None:
                self.sanitizer.on_execute(event[_TIME])
            self.now = event[_TIME]
            args = event[_ARGS]
            event[_FN] = None
            event[_ARGS] = ()
            if self.profiler is not None:
                start = self.profiler.clock()
                fn(*args)
                self.profiler.record(fn, self.profiler.clock() - start)
            else:
                fn(*args)
            self._events_processed += 1
            return True
        return False
