"""Network path elements: rate-limited links and pure-delay links.

Every element forwards packets toward a *sink* — any object with a
``send(packet)`` method (another element or an endpoint). This composes
into per-flow paths built by :mod:`repro.sim.topology`.

Two element types cover the dumbbell testbed:

- :class:`Link` — finite-rate link with a queue discipline in front of
  the transmitter and a propagation delay behind it. Used for the
  bottleneck (the BESS switch port in the paper).
- :class:`DelayLink` — infinite-rate, pure propagation delay. Used for
  the 25 Gbps edge links, which by construction never congest in the
  paper's testbed, so modelling their serialisation would only add
  events without changing behaviour.
"""

from __future__ import annotations

from typing import Optional, Protocol

from .engine import Simulator
from .packet import Packet
from .queue import DropTailQueue, Queue


class Sink(Protocol):
    """Anything that can accept a packet."""

    def send(self, packet: Packet) -> None: ...


class LossModel(Protocol):
    """A per-packet drop decision, consulted before a packet enters an
    element (e.g. the Gilbert–Elliott burst-loss channel in
    :mod:`repro.faults.gilbert`). Stateful models advance their state on
    every call, so the decision sequence is part of the run's seed-derived
    determinism."""

    def should_drop(self, packet: Packet) -> bool: ...


class DelayLink:
    """A fixed propagation delay with unlimited bandwidth.

    Zero-delay instances forward synchronously, avoiding a heap event —
    useful to splice monitors into a path for free.
    """

    __slots__ = ("sim", "delay", "sink", "forwarded_packets", "_schedule")

    def __init__(self, sim: Simulator, delay: float, sink: Optional[Sink] = None) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.delay = delay
        self.sink = sink
        self.forwarded_packets = 0
        # Bound-method fast path: one per-packet attribute hop instead
        # of two (the simulator is fixed for the element's lifetime).
        self._schedule = sim.schedule

    def send(self, packet: Packet) -> None:
        if self.sink is None:
            raise RuntimeError("DelayLink has no sink attached")
        self.forwarded_packets += 1
        # <= rather than ==: the constructor guarantees delay >= 0, and an
        # ordering guard keeps the fast path safe against float noise.
        if self.delay <= 0.0:
            self.sink.send(packet)
        else:
            self._schedule(self.delay, self.sink.send, packet)


class Link:
    """A rate-limited link: queue discipline + transmitter + propagation.

    Packets offered while the transmitter is busy wait in ``queue``;
    packets that the queue rejects are dropped (the queue handles drop
    accounting and listener notification). The transmitter serialises one
    packet at a time at ``rate_bps`` and delivers it to ``sink`` after an
    additional propagation ``delay``.

    Fault hooks (used by :mod:`repro.faults`):

    - :meth:`set_down` / :meth:`set_up` — a blackout. While down, the
      queue keeps accepting arrivals (and overflows naturally once full)
      but the transmitter is paused; a transmission already serialising
      when the link goes down still completes, exactly like a cable cut
      behind a store-and-forward switch port.
    - :meth:`set_rate` — bandwidth reduction/restoration; takes effect
      from the next serialisation.
    - :attr:`loss_model` — an optional channel-loss element consulted on
      every arrival *before* the queue, so channel losses are accounted
      separately (``impaired_drops``) from congestion drops.
    """

    __slots__ = (
        "sim",
        "rate_bps",
        "delay",
        "queue",
        "sink",
        "busy",
        "up",
        "transmitted_packets",
        "transmitted_bytes",
        "impaired_drops",
        "loss_model",
        "_tx_times",
        "_sanitizer",
        "_schedule",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay: float = 0.0,
        queue: Optional[Queue] = None,
        sink: Optional[Sink] = None,
        queue_capacity_bytes: int = 1_000_000,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay must be non-negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(queue_capacity_bytes)
        self.sink = sink
        self.busy = False
        self.up = True
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        #: Packets dropped by the channel-loss model (not queue drops).
        self.impaired_drops = 0
        self.loss_model: Optional[LossModel] = None
        # Serialisation-time memo, keyed by packet size. The cached value
        # is the result of the exact expression ``size * 8.0 / rate_bps``
        # — never a precomputed reciprocal, which would round differently
        # — so cached and uncached runs are bit-identical. Invalidated by
        # :meth:`set_rate`.
        self._tx_times: dict[int, float] = {}
        # The sanitizer is fixed at simulator construction; cache the
        # reference so the per-packet paths skip two attribute hops.
        self._sanitizer = sim.sanitizer
        self._schedule = sim.schedule
        if sim.sanitizer is not None:
            sim.sanitizer.watch_queue(self.queue)

    def send(self, packet: Packet) -> None:
        """Offer a packet to the link (entry point for upstream elements)."""
        if self.loss_model is not None and self.loss_model.should_drop(packet):
            self.impaired_drops += 1
            return
        if self.queue.offer(self.sim.now, packet):
            if not self.busy and self.up:
                self._start_next()

    def set_down(self) -> None:
        """Take the link down (blackout). Idempotent."""
        self.up = False

    def set_up(self) -> None:
        """Restore a downed link and resume draining the queue."""
        if self.up:
            return
        self.up = True
        if not self.busy:
            self._start_next()

    def set_rate(self, rate_bps: float) -> None:
        """Change the link rate; applies from the next serialisation."""
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.rate_bps = rate_bps
        self._tx_times.clear()

    def _start_next(self) -> None:
        if not self.up:
            self.busy = False
            return
        packet = self.queue.poll(self.sim.now)
        if packet is None:
            self.busy = False
            return
        self.busy = True
        size = packet.size
        tx_time = self._tx_times.get(size)
        if tx_time is None:
            tx_time = size * 8.0 / self.rate_bps
            self._tx_times[size] = tx_time
        self._schedule(tx_time, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size
        if self._sanitizer is not None:
            self._sanitizer.on_link_finish(self, packet)
        sink = self.sink
        if sink is None:
            raise RuntimeError("Link has no sink attached")
        # <= rather than ==: see DelayLink.send.
        if self.delay <= 0.0:
            sink.send(packet)
        else:
            self._schedule(self.delay, sink.send, packet)
        self._start_next()

    @property
    def utilization_possible_bytes(self) -> int:
        """Bytes this link could have carried since t=0 (for utilisation math)."""
        return int(self.rate_bps * self.sim.now / 8.0)
