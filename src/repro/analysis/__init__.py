"""Analysis toolkit: fairness, burstiness, model fitting, convergence."""

from __future__ import annotations

from .burstiness import burstiness_score, inter_event_times, windowed_burstiness
from .convergence import ConvergenceTracker, has_converged
from .fairness import jains_fairness_index, min_max_ratio
from .mathis_fit import (
    FlowObservation,
    MathisFit,
    fit_mathis,
    prediction_errors_with_constant,
)
from .stats import mean, median, percentile, relative_errors
from .throughput import (
    fair_share_bps,
    group_shares,
    link_utilization,
    loss_to_halving_ratio,
    per_flow_event_rate,
)

__all__ = [
    "jains_fairness_index",
    "min_max_ratio",
    "burstiness_score",
    "inter_event_times",
    "windowed_burstiness",
    "FlowObservation",
    "MathisFit",
    "fit_mathis",
    "prediction_errors_with_constant",
    "group_shares",
    "loss_to_halving_ratio",
    "per_flow_event_rate",
    "link_utilization",
    "fair_share_bps",
    "median",
    "mean",
    "percentile",
    "relative_errors",
    "has_converged",
    "ConvergenceTracker",
]
