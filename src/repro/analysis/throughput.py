"""Throughput share and loss/halving-ratio analyses.

Covers the aggregation the paper's fairness figures report: the share of
total throughput obtained by each CCA group (Figures 5-8) and the
packet-loss-to-CWND-halving ratio (Figure 3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Mapping


def group_shares(
    goodputs: Mapping[int, float], groups: Mapping[int, str]
) -> Dict[str, float]:
    """Fraction of total goodput obtained by each flow group.

    Parameters
    ----------
    goodputs:
        Per-flow goodput keyed by flow id.
    groups:
        Flow id -> group label (typically the CCA name).
    """
    totals: Dict[str, float] = defaultdict(float)
    for flow_id, goodput in goodputs.items():
        totals[groups[flow_id]] += goodput
    grand_total = sum(totals.values())
    if grand_total == 0:
        return {name: 0.0 for name in totals}
    return {name: value / grand_total for name, value in totals.items()}


def loss_to_halving_ratio(total_losses: int, total_halvings: int) -> float:
    """Packets lost per window-reduction event (Figure 3's y-axis).

    The paper finds ~1.7 at EdgeScale and 6-9 at CoreScale — burst drops
    at scale cost several packets per single congestion response.
    """
    if total_halvings <= 0:
        raise ValueError("no congestion events observed")
    if total_losses < 0:
        raise ValueError("negative loss count")
    return total_losses / total_halvings


def per_flow_event_rate(events: int, delivered_packets: int) -> float:
    """Events per delivered packet — the Mathis ``p`` for one flow."""
    if delivered_packets <= 0:
        return 0.0
    return events / delivered_packets


def link_utilization(
    aggregate_goodput_bps: float, link_rate_bps: float, payload_fraction: float = 1448 / 1500
) -> float:
    """Fraction of bottleneck capacity carried as application goodput.

    ``payload_fraction`` accounts for header overhead so that a fully
    saturated link reports ~1.0.
    """
    if link_rate_bps <= 0:
        raise ValueError("link rate must be positive")
    return aggregate_goodput_bps / (link_rate_bps * payload_fraction)


def fair_share_bps(link_rate_bps: float, flow_count: int) -> float:
    """Equal-split share of the link for ``flow_count`` flows."""
    if flow_count <= 0:
        raise ValueError("flow_count must be positive")
    return link_rate_bps / flow_count
