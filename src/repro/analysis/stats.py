"""Small statistics helpers shared across the analysis modules."""

from __future__ import annotations

from typing import List, Sequence


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def relative_errors(predicted: Sequence[float], measured: Sequence[float]) -> List[float]:
    """Per-element ``|predicted - measured| / measured`` (measured != 0)."""
    if len(predicted) != len(measured):
        raise ValueError("length mismatch")
    errors: List[float] = []
    for p, m in zip(predicted, measured):
        if m == 0:
            raise ValueError("measured value of zero makes relative error undefined")
        errors.append(abs(p - m) / abs(m))
    return errors
