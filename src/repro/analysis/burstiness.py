"""Goh–Barabási burstiness score.

The paper corroborates its Finding 3 hypothesis ("losses are burstier
at scale") by scoring the bottleneck drop-time series with the
burstiness measure of Goh & Barabási (EPL 2008):

    B = (sigma - mu) / (sigma + mu)

over the distribution of inter-event times, where B = -1 for a perfectly
periodic signal, B ~ 0 for a Poisson process, and B -> 1 for highly
bursty trains. The paper reports medians ~0.2 at EdgeScale and ~0.35 at
CoreScale.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def inter_event_times(event_times: Sequence[float]) -> List[float]:
    """Gaps between consecutive events (input need not be sorted)."""
    if len(event_times) < 2:
        return []
    ordered = sorted(event_times)
    return [b - a for a, b in zip(ordered, ordered[1:])]


def burstiness_score(event_times: Sequence[float]) -> float:
    """Goh–Barabási burstiness of a point process given its event times.

    Requires at least three events (two inter-event gaps). Returns a
    value in [-1, 1].
    """
    gaps = inter_event_times(event_times)
    if len(gaps) < 2:
        raise ValueError("need at least 3 events to estimate burstiness")
    n = len(gaps)
    mean = sum(gaps) / n
    variance = sum((g - mean) ** 2 for g in gaps) / n
    sigma = math.sqrt(variance)
    if sigma + mean == 0:
        return 0.0
    return (sigma - mean) / (sigma + mean)


def windowed_burstiness(
    event_times: Sequence[float], window: float
) -> List[float]:
    """Burstiness computed over consecutive time windows.

    Windows with fewer than three events are skipped. Useful for the
    median-of-windows statistic the paper reports.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if not event_times:
        return []
    ordered = sorted(event_times)
    scores: List[float] = []
    start = ordered[0]
    bucket: List[float] = []
    for t in ordered:
        if t < start + window:
            bucket.append(t)
            continue
        if len(bucket) >= 3:
            scores.append(burstiness_score(bucket))
        while t >= start + window:
            start += window
        bucket = [t]
    if len(bucket) >= 3:
        scores.append(burstiness_score(bucket))
    return scores
