"""Experiment convergence detection.

The paper runs each experiment "until the metric being evaluated changes
by less than 1% over 20 minutes" (or a 3-hour cap). This module
implements that stop rule generically over a sampled metric time series,
with the window expressed as a fraction of run length so scaled-down
runs can apply it proportionally.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence


def has_converged(
    times: Sequence[float],
    values: Sequence[float],
    window: float,
    tolerance: float = 0.01,
) -> bool:
    """True if the metric stayed within ``tolerance`` (relative) over the
    trailing ``window`` seconds of the series."""
    if len(times) != len(values):
        raise ValueError("times/values length mismatch")
    if window <= 0:
        raise ValueError("window must be positive")
    if len(times) < 2:
        return False
    horizon = times[-1] - window
    if times[0] > horizon:
        return False  # series does not yet span a full window
    tail = [v for t, v in zip(times, values) if t >= horizon]
    if len(tail) < 2:
        return False
    lo, hi = min(tail), max(tail)
    if hi == 0:
        return True
    return (hi - lo) / abs(hi) <= tolerance


class ConvergenceTracker:
    """Streaming version of :func:`has_converged`.

    Feed it ``observe(time, value)`` samples; ``converged`` flips to True
    once the trailing window is stable. Optionally invokes a callback
    the first time convergence is reached (e.g. to stop a simulation).
    """

    def __init__(
        self,
        window: float,
        tolerance: float = 0.01,
        on_converged: Optional[Callable[[float], None]] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.tolerance = tolerance
        self.on_converged = on_converged
        self.converged = False
        self.converged_at: Optional[float] = None
        self._times: List[float] = []
        self._values: List[float] = []

    def observe(self, time: float, value: float) -> bool:
        """Add a sample; returns the current convergence verdict."""
        if self._times and time < self._times[-1]:
            raise ValueError("samples must be time-ordered")
        self._times.append(time)
        self._values.append(value)
        # Trim samples older than one window before the newest.
        horizon = time - self.window
        cut = 0
        while cut < len(self._times) - 1 and self._times[cut + 1] <= horizon:
            cut += 1
        if cut:
            del self._times[:cut]
            del self._values[:cut]
        if not self.converged and self._spans_window() and self._stable():
            self.converged = True
            self.converged_at = time
            if self.on_converged is not None:
                self.on_converged(time)
        return self.converged

    def _spans_window(self) -> bool:
        return len(self._times) >= 2 and self._times[-1] - self._times[0] >= self.window

    def _stable(self) -> bool:
        lo, hi = min(self._values), max(self._values)
        if hi == 0:
            return True
        return (hi - lo) / abs(hi) <= self.tolerance
