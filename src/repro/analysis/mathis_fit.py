"""Mathis model fitting and validation against measured flows.

Implements the paper's Table 1 / Figure 2 methodology: given the
per-flow measurements of an experiment (goodput, RTT, loss rate, CWND
halving rate), derive the best-fit Mathis constant under each
interpretation of ``p`` and compute per-flow prediction errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..models.mathis import derive_constant, mathis_throughput
from .stats import median


@dataclass
class FlowObservation:
    """One flow's measured quantities over the measurement window."""

    goodput_bps: float
    rtt_s: float
    loss_rate: float
    halving_rate: float  # congestion events per delivered packet

    def p(self, interpretation: str) -> float:
        """The value of Mathis ``p`` under an interpretation of the model."""
        if interpretation == "loss":
            return self.loss_rate
        if interpretation == "halving":
            return self.halving_rate
        raise ValueError(f"unknown interpretation {interpretation!r}")


@dataclass
class MathisFit:
    """Result of fitting the Mathis constant to a set of flows."""

    interpretation: str
    constant: float
    per_flow_errors: List[float]

    @property
    def median_error(self) -> float:
        """Median relative prediction error across flows."""
        return median(self.per_flow_errors)


def fit_mathis(
    observations: Sequence[FlowObservation],
    interpretation: str,
    mss_bytes: int,
) -> MathisFit:
    """Derive the best-fit constant and per-flow errors (Table 1 / Fig 2).

    Flows with ``p == 0`` (no events observed) are excluded, matching
    the model's domain.
    """
    usable = [o for o in observations if o.p(interpretation) > 0 and o.goodput_bps > 0]
    if not usable:
        raise ValueError("no usable observations")
    constant = derive_constant(
        [o.goodput_bps for o in usable],
        [o.rtt_s for o in usable],
        [o.p(interpretation) for o in usable],
        mss_bytes,
    )
    errors = []
    for o in usable:
        predicted = mathis_throughput(mss_bytes, o.rtt_s, o.p(interpretation), constant)
        errors.append(abs(predicted - o.goodput_bps) / o.goodput_bps)
    return MathisFit(interpretation, constant, errors)


def prediction_errors_with_constant(
    observations: Sequence[FlowObservation],
    interpretation: str,
    mss_bytes: int,
    constant: float,
) -> List[float]:
    """Per-flow errors using a *fixed* constant (e.g. one derived in a
    different setting, to test cross-setting transfer of ``C``)."""
    errors: List[float] = []
    for o in observations:
        p = o.p(interpretation)
        if p <= 0 or o.goodput_bps <= 0:
            continue
        predicted = mathis_throughput(mss_bytes, o.rtt_s, p, constant)
        errors.append(abs(predicted - o.goodput_bps) / o.goodput_bps)
    if not errors:
        raise ValueError("no usable observations")
    return errors
