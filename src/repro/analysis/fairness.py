"""Fairness metrics.

Jain's Fairness Index (Jain, Chiu & Hawe 1984) is the paper's fairness
metric for Findings 4 and 5: JFI = (sum x)^2 / (n * sum x^2), ranging
from 1/n (one flow takes everything) to 1 (perfectly equal shares).
"""

from __future__ import annotations

from typing import Sequence


def jains_fairness_index(allocations: Sequence[float]) -> float:
    """Jain's Fairness Index of a set of throughput allocations.

    Raises ``ValueError`` on an empty input or on negative allocations;
    returns 1.0 when every allocation is zero (no flow is disadvantaged
    relative to another).
    """
    if not allocations:
        raise ValueError("JFI of an empty allocation set is undefined")
    if any(x < 0 for x in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    squares = sum(x * x for x in allocations)
    if total == 0 or squares == 0.0:
        # All-zero allocations, or subnormal values whose squares
        # underflow to zero — no flow is measurably disadvantaged.
        return 1.0
    n = len(allocations)
    return min(1.0, (total * total) / (n * squares))


def min_max_ratio(allocations: Sequence[float]) -> float:
    """Ratio of the smallest to the largest allocation (1 = perfectly fair)."""
    if not allocations:
        raise ValueError("ratio of an empty allocation set is undefined")
    largest = max(allocations)
    if largest == 0:
        return 1.0
    return min(allocations) / largest
