"""Disjoint integer interval set.

Used by the TCP receiver to track out-of-order data and by the sender's
scoreboard to track SACKed sequence ranges. Ranges are half-open
``[start, end)`` over packet numbers.

The implementation keeps a sorted list of disjoint, non-adjacent ranges
and merges on insert, giving O(log n) lookups and O(n) worst-case insert
— in practice the number of fragments is tiny (bounded by the reordering
degree of the path).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple

Range = Tuple[int, int]


class RangeSet:
    """A set of integers stored as sorted, disjoint half-open ranges."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, ranges: Iterable[Range] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        for start, end in ranges:
            self.add(start, end)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __len__(self) -> int:
        """Total number of integers covered."""
        return sum(end - start for start, end in zip(self._starts, self._ends))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __iter__(self) -> Iterator[Range]:
        return iter(self.ranges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeSet({self.ranges()!r})"

    def ranges(self) -> List[Range]:
        """All ranges as a list of ``(start, end)`` tuples, ascending."""
        return list(zip(self._starts, self._ends))

    def consistency_error(self) -> Optional[str]:
        """Describe the first structural-invariant violation, or ``None``.

        The representation invariant — parallel start/end lists holding
        sorted, disjoint, non-adjacent, non-empty half-open ranges — is
        what every bisect-based query relies on. The runtime sanitizer
        calls this on the sender's scoreboards after each ACK.
        """
        if len(self._starts) != len(self._ends):
            return (
                f"parallel lists out of sync: {len(self._starts)} starts, "
                f"{len(self._ends)} ends"
            )
        prev_end: Optional[int] = None
        for start, end in zip(self._starts, self._ends):
            if start >= end:
                return f"empty or inverted range [{start}, {end})"
            if prev_end is not None and start <= prev_end:
                kind = "overlapping" if start < prev_end else "unmerged adjacent"
                return f"{kind} ranges at [{start}, {end}) after end {prev_end}"
            prev_end = end
        return None

    def range_count(self) -> int:
        """Number of disjoint fragments."""
        return len(self._starts)

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging with overlapping/adjacent ranges."""
        if start >= end:
            if start == end:
                return
            raise ValueError(f"invalid range [{start}, {end})")
        # Find all existing ranges that overlap or touch [start, end).
        lo = bisect_left(self._ends, start)  # first range with end >= start
        hi = bisect_right(self._starts, end)  # first range with start > end
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        self._starts.insert(lo, start)
        self._ends.insert(lo, end)

    def add_point(self, value: int) -> None:
        """Insert a single integer."""
        self.add(value, value + 1)

    def __contains__(self, value: int) -> bool:
        idx = bisect_right(self._starts, value) - 1
        return idx >= 0 and value < self._ends[idx]

    def covers(self, start: int, end: int) -> bool:
        """True if every integer in ``[start, end)`` is present."""
        if start >= end:
            return True
        idx = bisect_right(self._starts, start) - 1
        return idx >= 0 and end <= self._ends[idx]

    def max_value(self) -> int:
        """Largest covered integer. Raises ``ValueError`` when empty."""
        if not self._ends:
            raise ValueError("max_value() of empty RangeSet")
        return self._ends[-1] - 1

    def min_value(self) -> int:
        """Smallest covered integer. Raises ``ValueError`` when empty."""
        if not self._starts:
            raise ValueError("min_value() of empty RangeSet")
        return self._starts[0]

    def contiguous_end_from(self, start: int) -> int:
        """Largest ``e`` such that ``[start, e)`` is fully covered.

        Returns ``start`` itself when ``start`` is not covered. Used by
        the receiver to advance ``rcv_nxt`` across filled holes.
        """
        idx = bisect_right(self._starts, start) - 1
        if idx >= 0 and start < self._ends[idx]:
            return self._ends[idx]
        return start

    def remove_below(self, cutoff: int) -> None:
        """Discard all integers ``< cutoff`` (scoreboard garbage collection)."""
        idx = bisect_right(self._ends, cutoff)
        del self._starts[:idx]
        del self._ends[:idx]
        if self._starts and self._starts[0] < cutoff:
            self._starts[0] = cutoff

    def count_above(self, value: int) -> int:
        """Number of covered integers strictly greater than ``value``."""
        total = 0
        idx = bisect_right(self._ends, value + 1)
        if idx > 0:
            idx -= 1  # the range ending at/after value+1 may straddle it
        for start, end in zip(self._starts[idx:], self._ends[idx:]):
            lo = max(start, value + 1)
            if end > lo:
                total += end - lo
        return total

    def count_below(self, value: int) -> int:
        """Number of covered integers strictly less than ``value``."""
        total = 0
        for start, end in zip(self._starts, self._ends):
            if start >= value:
                break
            total += min(end, value) - start
        return total

    def holes_between(self, start: int, end: int) -> List[Range]:
        """Uncovered sub-ranges of ``[start, end)``, ascending."""
        if start >= end:
            return []
        holes: List[Range] = []
        cursor = start
        starts, ends = self._starts, self._ends
        idx = max(0, bisect_right(ends, start) - 1)
        for i in range(idx, len(starts)):
            r_start = starts[i]
            if r_start >= end:
                break
            r_end = ends[i]
            if r_end <= cursor:
                continue
            if r_start > cursor:
                holes.append((cursor, min(r_start, end)))
            cursor = max(cursor, r_end)
            if cursor >= end:
                break
        if cursor < end:
            holes.append((cursor, end))
        return holes

    def nth_from_top(self, n: int) -> Optional[int]:
        """The ``n``-th largest covered integer (1-indexed), or ``None``
        if fewer than ``n`` integers are covered.

        Used by RFC 6675 loss marking: with DupThresh = 3, every hole
        below the 3rd-highest SACKed sequence is deemed lost.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        remaining = n
        for i in range(len(self._starts) - 1, -1, -1):
            size = self._ends[i] - self._starts[i]
            if size >= remaining:
                return self._ends[i] - remaining
            remaining -= size
        return None
