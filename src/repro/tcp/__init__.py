"""TCP transport substrate: connection machinery, SACK, RTT, pacing, CCAs."""

from __future__ import annotations

from .connection import ConnectionStats, TcpReceiver, TcpSender
from .rangeset import RangeSet
from .rate_sample import DeliveryRateEstimator, RateSample
from .rtt import RttEstimator

__all__ = [
    "TcpSender",
    "TcpReceiver",
    "ConnectionStats",
    "RangeSet",
    "RateSample",
    "DeliveryRateEstimator",
    "RttEstimator",
]
