"""RTT estimation and retransmission timeout per RFC 6298.

Matches the Linux implementation's structure: SRTT/RTTVAR smoothing with
alpha=1/8, beta=1/4, a configurable minimum RTO (Linux uses 200 ms,
which matters at scale where per-flow windows are a handful of packets
and timeouts are part of steady-state behaviour), and exponential
backoff on repeated timeouts.
"""

from __future__ import annotations

from typing import Optional


class RttEstimator:
    """RFC 6298 smoothed RTT estimator and RTO calculator."""

    ALPHA = 0.125
    BETA = 0.25
    K = 4.0

    __slots__ = (
        "initial_rto",
        "min_rto",
        "max_rto",
        "granularity",
        "srtt",
        "rttvar",
        "latest_rtt",
        "min_rtt",
        "_rto",
        "_backoff",
    )

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        clock_granularity: float = 0.001,
    ) -> None:
        if not 0 < min_rto <= max_rto:
            raise ValueError("require 0 < min_rto <= max_rto")
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.granularity = clock_granularity
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.latest_rtt: Optional[float] = None
        self.min_rtt: Optional[float] = None
        self._rto = initial_rto
        self._backoff = 1

    @property
    def rto(self) -> float:
        """Current retransmission timeout, including backoff."""
        return min(self._rto * self._backoff, self.max_rto)

    def on_measurement(self, rtt: float) -> None:
        """Incorporate a new RTT sample (from a non-retransmitted packet)."""
        if rtt <= 0:
            raise ValueError(f"rtt sample must be positive, got {rtt}")
        self.latest_rtt = rtt
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - rtt)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._rto = self.srtt + max(self.granularity, self.K * self.rttvar)
        self._rto = min(max(self._rto, self.min_rto), self.max_rto)
        self._backoff = 1  # a valid sample clears backoff

    def on_timeout(self) -> None:
        """Apply exponential backoff after an RTO fires (RFC 6298 §5.5)."""
        if self._backoff < 64:
            self._backoff *= 2

    def reset_backoff(self) -> None:
        """Clear backoff (e.g. when new data is ACKed after recovery)."""
        self._backoff = 1
