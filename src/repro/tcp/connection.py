"""TCP sender and receiver endpoints.

This is the transport substrate of the reproduction: a from-scratch TCP
data-transfer engine with the pieces that matter for congestion-control
measurement —

- SACK scoreboard with RFC 6675-style loss marking and pipe accounting
  (limited transmit emerges naturally from pipe-based sending);
- fast recovery entered once per loss *event* (per window), which is the
  "CWND halving" the paper counts via tcpprobe;
- RFC 6298 RTO with exponential backoff and a Linux-like 200 ms floor;
- delivery-rate sampling (the BBR measurement substrate);
- optional pacing, driven by the CCA's ``pacing_rate``;
- delayed ACKs at the receiver (Linux-like, every second segment with a
  40 ms timer), since the Mathis constant depends on ACKing policy.

Sequence numbers count MSS-sized packets. Flows send either infinite
data (the paper's workload) or a fixed number of packets.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..sim.engine import Event, Simulator, event_pending, event_time
from ..sim.link import Sink
from ..sim.packet import Packet, SackBlock
from ..units import ACK_PACKET_BYTES, DATA_PACKET_BYTES
from .cca.base import CongestionControl
from .rangeset import RangeSet
from .rate_sample import DeliveryRateEstimator
from .rtt import RttEstimator

#: Listener called as ``fn(now, kind, cwnd)`` where kind is one of
#: "ack", "loss_event", "rto", "recovery_exit".
CwndListener = Callable[[float, str, float], None]


class PacketMeta:
    """Per-in-flight-packet scoreboard state."""

    __slots__ = (
        "sent_time",
        "first_sent_time",
        "delivered",
        "delivered_time",
        "is_app_limited",
        "retransmitted",
        "retx_pending",
        "in_retrans_out",
        "sacked",
        "lost",
    )

    def __init__(self) -> None:
        self.sent_time = 0.0
        self.first_sent_time = 0.0
        self.delivered = 0
        self.delivered_time: Optional[float] = 0.0
        self.is_app_limited = False
        # 'retransmitted' is sticky (Karn's rule: never RTT-sample such a
        # packet); 'in_retrans_out' tracks whether it currently counts in
        # the pipe's retrans_out term; 'retx_pending' means it sits in the
        # retransmission queue.
        self.retransmitted = False
        self.retx_pending = False
        self.in_retrans_out = False
        self.sacked = False
        self.lost = False


class ConnectionStats:
    """Counters a single sender accumulates over its lifetime."""

    __slots__ = (
        "packets_sent",
        "retransmits",
        "loss_recovery_events",
        "rto_events",
        "acks_received",
        "spurious_rtos",
    )

    def __init__(self) -> None:
        self.packets_sent = 0
        self.retransmits = 0
        self.loss_recovery_events = 0
        self.rto_events = 0
        self.acks_received = 0
        self.spurious_rtos = 0

    @property
    def congestion_events(self) -> int:
        """Total multiplicative-decrease events (fast recoveries + RTOs).

        This is the event count the paper's "CWND halving rate" measures:
        each entry into recovery reduces the window once, regardless of
        how many packets were dropped in the triggering burst.
        """
        return self.loss_recovery_events + self.rto_events


class TcpSender:
    """The sending side of a TCP connection.

    Parameters
    ----------
    sim:
        The owning simulator.
    flow_id:
        Stamped on every packet; used for drop attribution.
    cca:
        The congestion control algorithm instance (owned by this sender).
    path:
        First element of the forward (data) path; must eventually deliver
        to the paired :class:`TcpReceiver`.
    total_packets:
        ``None`` for an infinite flow (the paper's workload), otherwise
        the flow completes after this many packets are cumulatively ACKed
        and ``completion_listener`` fires.
    """

    DUPTHRESH = 3

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        cca: CongestionControl,
        path: Optional[Sink] = None,
        total_packets: Optional[int] = None,
        mss: int = DATA_PACKET_BYTES,
        rtt_estimator: Optional[RttEstimator] = None,
        loss_marking: str = "rack",
    ) -> None:
        """``loss_marking`` selects the loss-detection rule:

        - ``"rack"`` (default): any hole below a delivered (SACKed)
          packet is marked lost. This is what Linux RACK-TLP converges
          to on a non-reordering path, and it is essential in the
          paper's CoreScale regime where per-flow windows of ~4 packets
          can never produce three duplicate ACKs.
        - ``"dupthresh"``: classic RFC 6675 three-dupACK marking.
        """
        if loss_marking not in ("rack", "dupthresh"):
            raise ValueError("loss_marking must be 'rack' or 'dupthresh'")
        self.sim = sim
        self.flow_id = flow_id
        self.cca = cca
        self.path = path
        self.total_packets = total_packets
        self.mss = mss
        self.loss_marking = loss_marking
        self.rtt = rtt_estimator or RttEstimator()
        self.rate_estimator = DeliveryRateEstimator()
        self.stats = ConnectionStats()

        self.snd_una = 0
        self.snd_nxt = 0
        self.sacked_out = 0
        self.lost_out = 0
        self.retrans_out = 0
        self.in_recovery = False
        self.in_rto_recovery = False
        self.recovery_point = 0
        self.started = False
        self.completed = False
        self._rto_checked = True

        self._meta: dict[int, PacketMeta] = {}
        self._sacked = RangeSet()
        self._lost = RangeSet()
        # SACKed union lost: holes in this set are the only candidates
        # the loss marker still needs to visit.
        self._covered = RangeSet()
        self._high_sacked = 0
        self._retx_heap: List[int] = []
        self._pacing_next = 0.0
        self._send_timer: Optional[Event] = None
        self._rto_deadline: Optional[float] = None
        self._rto_event: Optional[Event] = None

        # Ordered cwnd listeners (multi-subscriber; see add_cwnd_listener).
        self._cwnd_listeners: List[CwndListener] = []
        # The subset of listeners that also want per-ACK "ack" events —
        # the other kinds are orders of magnitude rarer, so the hot ACK
        # path dispatches against this (usually empty) list only.
        self._ack_cwnd_listeners: List[CwndListener] = []
        self.completion_listener: Optional[Callable[["TcpSender"], None]] = None
        # Runtime sanitizer (None when off): audited after every ACK/RTO.
        self._sanitizer = sim.sanitizer

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    @property
    def packets_out(self) -> int:
        """Packets between ``snd_una`` and ``snd_nxt``."""
        return self.snd_nxt - self.snd_una

    @property
    def in_flight(self) -> int:
        """Linux-style pipe estimate (RFC 6675 Pipe)."""
        return self.packets_out - self.sacked_out - self.lost_out + self.retrans_out

    @property
    def delivered_packets(self) -> int:
        """Cumulative delivered packets (includes SACKed)."""
        return self.rate_estimator.delivered

    @property
    def cwnd_packets(self) -> int:
        """Integer congestion window the send loop enforces."""
        return max(1, int(self.cca.cwnd))

    def _has_new_data(self) -> bool:
        return self.total_packets is None or self.snd_nxt < self.total_packets

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, at: Optional[float] = None) -> None:
        """Begin transmitting, now or at absolute time ``at``."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        if at is None or at <= self.sim.now:
            self._try_send()
        else:
            self.sim.schedule_at(at, self._try_send)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _next_retransmit(self) -> Optional[int]:
        """Pop the lowest lost sequence still worth retransmitting."""
        while self._retx_heap:
            seq = heapq.heappop(self._retx_heap)
            if seq < self.snd_una:
                continue
            meta = self._meta.get(seq)
            if meta is None or meta.sacked or not meta.lost or not meta.retx_pending:
                continue
            return seq
        return None

    def _try_send(self) -> None:
        if not self.started or self.completed or self.path is None:
            return
        now = self.sim.now
        pacing_rate = self.cca.pacing_rate
        # cwnd and pacing_rate only change inside ACK/loss processing,
        # never while this send loop runs, so both — and the pipe
        # estimate, which grows by exactly one per transmission — are
        # safe to fold into locals for the duration of the loop.
        cwnd_packets = self.cwnd_packets
        total_packets = self.total_packets
        in_flight = (
            self.snd_nxt - self.snd_una - self.sacked_out - self.lost_out
            + self.retrans_out
        )
        while True:
            if in_flight >= cwnd_packets:
                break
            if pacing_rate is not None and now < self._pacing_next:
                self._arm_send_timer(self._pacing_next)
                break
            seq = self._next_retransmit() if self._retx_heap else None
            retransmission = seq is not None
            if seq is None:
                seq = self.snd_nxt
                if total_packets is not None and seq >= total_packets:
                    break
            self._transmit(seq, retransmission)
            in_flight += 1
            if pacing_rate is not None and pacing_rate > 0:
                gap = self.mss * 8.0 / pacing_rate
                self._pacing_next = max(now, self._pacing_next) + gap

    def _arm_send_timer(self, at: float) -> None:
        if self._send_timer is not None and event_pending(self._send_timer):
            if event_time(self._send_timer) <= at:
                return
            self.sim.cancel(self._send_timer)
        self._send_timer = self.sim.schedule_at(at, self._try_send)

    def _transmit(self, seq: int, retransmission: bool) -> None:
        now = self.sim.now
        if retransmission:
            meta = self._meta[seq]
            meta.retransmitted = True
            meta.retx_pending = False
            meta.in_retrans_out = True
            self.retrans_out += 1
            self.stats.retransmits += 1
        else:
            meta = PacketMeta()
            self._meta[seq] = meta
            self.snd_nxt += 1
        # self.in_flight inlined (property chain is hot here).
        in_flight = (
            self.snd_nxt - self.snd_una - self.sacked_out - self.lost_out
            + self.retrans_out
        )
        self.rate_estimator.on_packet_sent(meta, now, in_flight - 1)
        meta.sent_time = now
        self.stats.packets_sent += 1
        packet = Packet(self.flow_id, seq, self.mss)
        packet.sent_time = now
        assert self.path is not None
        self.path.send(packet)
        if self._rto_deadline is None:
            self._set_rto_deadline(now + self.rtt.rto)

    # ------------------------------------------------------------------
    # ACK processing (entry point: reverse path delivers ACKs here)
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Sink interface — the reverse path hands ACKs to the sender."""
        if not packet.is_ack:
            raise ValueError("TcpSender received a non-ACK packet")
        self._on_ack(packet)

    def _on_ack(self, ack: Packet) -> None:
        # This method runs once per received ACK and dominates the whole
        # simulation profile, so the property chains (in_flight,
        # packets_out) and repeated attribute lookups are folded into
        # locals. Every arithmetic expression is kept identical to the
        # straightforward form — results must stay byte-for-byte equal.
        now = self.sim.now
        self.stats.acks_received += 1
        prior_una = self.snd_una
        rate_estimator = self.rate_estimator
        on_delivered = rate_estimator.on_packet_delivered
        meta_map = self._meta
        in_flight = (
            self.snd_nxt - prior_una - self.sacked_out - self.lost_out
            + self.retrans_out
        )
        rs = rate_estimator.start_sample(in_flight)
        rtt_sample: Optional[float] = None
        newly_acked = 0

        # --- cumulative ACK -------------------------------------------
        ack_seq = ack.ack_seq
        if ack_seq > prior_una:
            meta_pop = meta_map.pop
            sacked_out = self.sacked_out
            lost_out = self.lost_out
            retrans_out = self.retrans_out
            for seq in range(prior_una, ack_seq):
                meta = meta_pop(seq, None)
                if meta is None:
                    continue
                if meta.sacked:
                    sacked_out -= 1
                else:
                    on_delivered(rs, meta, now)
                    newly_acked += 1
                    if not meta.retransmitted:
                        rtt_sample = now - meta.sent_time
                if meta.lost:
                    lost_out -= 1
                if meta.in_retrans_out:
                    retrans_out -= 1
            self.sacked_out = sacked_out
            self.lost_out = lost_out
            self.retrans_out = retrans_out
            self.snd_una = ack_seq
            if self._sacked:
                self._sacked.remove_below(ack_seq)
            if self._lost:
                self._lost.remove_below(ack_seq)
            if self._covered:
                self._covered.remove_below(ack_seq)

        # --- SACK blocks ----------------------------------------------
        sack_blocks = ack.sack_blocks
        if sack_blocks:
            meta_get = meta_map.get
            sacked_set = self._sacked
            covered = self._covered
            snd_una = self.snd_una
            snd_nxt = self.snd_nxt
            for lo, hi in sack_blocks:
                if lo < snd_una:
                    lo = snd_una
                if hi > snd_nxt:
                    hi = snd_nxt
                if lo >= hi:
                    continue
                for gap_lo, gap_hi in sacked_set.holes_between(lo, hi):
                    for seq in range(gap_lo, gap_hi):
                        meta = meta_get(seq)
                        if meta is None or meta.sacked:
                            continue
                        meta.sacked = True
                        self.sacked_out += 1
                        newly_acked += 1
                        on_delivered(rs, meta, now)
                        if not meta.retransmitted:
                            rtt_sample = now - meta.sent_time
                        if meta.lost:
                            meta.lost = False
                            self.lost_out -= 1
                        if meta.in_retrans_out:
                            meta.in_retrans_out = False
                            self.retrans_out -= 1
                sacked_set.add(lo, hi)
                covered.add(lo, hi)
                if hi - 1 > self._high_sacked:
                    self._high_sacked = hi - 1

        # --- loss detection -------------------------------------------
        newly_lost = self._mark_lost_from_sack()

        # Spurious-RTO detection: an RTT sample during RTO recovery can
        # only come from a never-retransmitted packet, meaning the
        # original transmission survived and the timeout was premature.
        if self.in_rto_recovery and rtt_sample is not None and not self._rto_checked:
            self._rto_checked = True
            self.stats.spurious_rtos += 1

        # --- recovery transitions -------------------------------------
        if self.in_recovery and self.snd_una >= self.recovery_point:
            self.in_recovery = False
            self.in_rto_recovery = False
            self.rtt.reset_backoff()
            self.cca.on_recovery_exit(self)
            self._notify_cwnd("recovery_exit")
        if newly_lost > 0 and not self.in_recovery:
            self._enter_recovery()

        # --- CCA + RTT updates ----------------------------------------
        if rtt_sample is not None and rtt_sample > 0:
            self.rtt.on_measurement(rtt_sample)
        rs.rtt = rtt_sample
        rs.newly_acked = newly_acked
        rs.newly_lost = newly_lost
        rate_estimator.finish_sample(rs, self.rtt.min_rtt)
        self.cca.on_ack(rs, self)
        listeners = self._ack_cwnd_listeners
        if listeners:
            cwnd = self.cca.cwnd
            for fn in listeners:
                fn(now, "ack", cwnd)
        if self._sanitizer is not None:
            self._sanitizer.check_sender(self)

        # --- completion / RTO rearm -----------------------------------
        if self.total_packets is not None and self.snd_una >= self.total_packets:
            if not self.completed:
                self.completed = True
                self._clear_rto_deadline()
                if self.completion_listener is not None:
                    self.completion_listener(self)
            return
        if self.snd_nxt > self.snd_una:
            # RFC 6298 §5.3: restart the timer only when new data is
            # acknowledged — dupACKs must not keep pushing it out, or a
            # lost retransmission would never time out.
            if ack_seq > prior_una or self._rto_deadline is None:
                self._set_rto_deadline(now + self.rtt.rto)
        else:
            self._clear_rto_deadline()
        self._try_send()

    def _enter_recovery(self) -> None:
        self.in_recovery = True
        self.in_rto_recovery = False
        self.recovery_point = self.snd_nxt
        self.stats.loss_recovery_events += 1
        self.cca.on_loss_event(self)
        self._notify_cwnd("loss_event")

    def _mark_lost_from_sack(self) -> int:
        """RFC 6675 IsLost marking.

        A sequence is lost once >= DupThresh SACKed packets sit above
        it; equivalently, everything below the DupThresh-th-highest
        SACKed sequence that is neither SACKed nor already marked. The
        ``_covered`` set (SACKed union lost) makes this incremental:
        each hole is walked exactly once over the connection's lifetime.
        """
        if not self._sacked:
            return 0
        if self.loss_marking == "rack":
            threshold: Optional[int] = self._sacked.max_value()
        else:
            threshold = self._sacked.nth_from_top(self.DUPTHRESH)
        if threshold is None or threshold <= self.snd_una:
            return 0
        newly = 0
        for hole_lo, hole_hi in self._covered.holes_between(self.snd_una, threshold):
            for seq in range(hole_lo, hole_hi):
                meta = self._meta.get(seq)
                if meta is None or meta.sacked or meta.lost or meta.retransmitted:
                    continue
                meta.lost = True
                meta.retx_pending = True
                self.lost_out += 1
                newly += 1
                heapq.heappush(self._retx_heap, seq)
            self._covered.add(hole_lo, hole_hi)
            self._lost.add(hole_lo, hole_hi)
        return newly

    # ------------------------------------------------------------------
    # RTO machinery (lazy re-arm to avoid heap churn)
    # ------------------------------------------------------------------

    def _set_rto_deadline(self, deadline: float) -> None:
        self._rto_deadline = deadline
        if self._rto_event is None or not event_pending(self._rto_event):
            self._rto_event = self.sim.schedule_at(deadline, self._on_rto_timer)

    def _clear_rto_deadline(self) -> None:
        self._rto_deadline = None

    def _on_rto_timer(self) -> None:
        self._rto_event = None
        if self._rto_deadline is None:
            return
        now = self.sim.now
        if now < self._rto_deadline - 1e-12:
            self._rto_event = self.sim.schedule_at(self._rto_deadline, self._on_rto_timer)
            return
        if self.packets_out == 0 or self.completed:
            self._rto_deadline = None
            return
        self._fire_rto()

    def _fire_rto(self) -> None:
        now = self.sim.now
        self.stats.rto_events += 1
        self.rtt.on_timeout()
        # Let the CCA react while in_flight still reflects the pre-RTO
        # pipe (RFC 5681 sets ssthresh from FlightSize).
        self.cca.on_rto(self)
        # Mark every outstanding, un-SACKed packet lost and rebuild the
        # retransmission queue (RFC 6582 loss recovery, keeping SACK info).
        self._retx_heap = []
        self.retrans_out = 0
        self.lost_out = 0
        for seq in range(self.snd_una, self.snd_nxt):
            meta = self._meta.get(seq)
            if meta is None:
                continue
            meta.in_retrans_out = False
            if meta.sacked:
                meta.lost = False
                continue
            meta.lost = True
            meta.retx_pending = True
            self.lost_out += 1
            heapq.heappush(self._retx_heap, seq)
        if self.snd_nxt > self.snd_una:
            self._lost.add(self.snd_una, self.snd_nxt)
            self._covered.add(self.snd_una, self.snd_nxt)
        self.in_recovery = True
        self.in_rto_recovery = True
        self._rto_checked = False
        self.recovery_point = self.snd_nxt
        self._notify_cwnd("rto")
        if self._sanitizer is not None:
            self._sanitizer.check_sender(self)
        self._set_rto_deadline(now + self.rtt.rto)
        self._try_send()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def add_cwnd_listener(
        self, fn: CwndListener, ack_events: bool = True
    ) -> CwndListener:
        """Append a cwnd listener; listeners fire in attachment order.

        Any number of observers (probe, watchdog, metrics sampler,
        event-bus forwarder) can coexist on one sender. Returns ``fn``
        so the handle can be kept for :meth:`remove_cwnd_listener`.

        ``ack_events=False`` registers a listener for the rare kinds
        only ("loss_event", "rto", "recovery_exit"): the sender then
        skips it entirely on the per-ACK fast path. Use
        :meth:`enable_ack_events` to upgrade later.
        """
        self._cwnd_listeners.append(fn)
        if ack_events:
            self._ack_cwnd_listeners.append(fn)
        return fn

    def enable_ack_events(self, fn: CwndListener) -> None:
        """Start delivering per-ACK "ack" events to an attached listener.

        Upgrades a listener added with ``ack_events=False``; relative
        delivery order among ack-event listeners always follows overall
        attachment order. No-op if the listener already receives them.
        """
        if fn not in self._cwnd_listeners:
            raise ValueError("listener is not attached to this sender")
        if fn in self._ack_cwnd_listeners:
            return
        wanted = {id(f) for f in self._ack_cwnd_listeners}
        wanted.add(id(fn))
        self._ack_cwnd_listeners[:] = [
            f for f in self._cwnd_listeners if id(f) in wanted
        ]

    def remove_cwnd_listener(self, fn: CwndListener) -> None:
        """Detach a previously added listener (ValueError if absent)."""
        self._cwnd_listeners.remove(fn)
        if fn in self._ack_cwnd_listeners:
            self._ack_cwnd_listeners.remove(fn)

    @property
    def cwnd_listener(self) -> Optional[CwndListener]:
        """The sole attached listener, or ``None`` (legacy accessor)."""
        if not self._cwnd_listeners:
            return None
        if len(self._cwnd_listeners) == 1:
            return self._cwnd_listeners[0]
        raise RuntimeError(
            "multiple cwnd listeners attached; inspect _cwnd_listeners or "
            "track handles from add_cwnd_listener instead"
        )

    @cwnd_listener.setter
    def cwnd_listener(self, fn: Optional[CwndListener]) -> None:
        """Legacy single-slot assignment — refuses to clobber.

        Assigning used to silently replace whatever observer was
        already attached (losing, e.g., a cwnd probe when the watchdog
        arrived). Assignment now only works on an unobserved sender;
        ``None`` detaches everything. Use :meth:`add_cwnd_listener` or
        an :class:`~repro.obs.bus.EventBus` to compose observers.
        """
        if fn is None:
            self._cwnd_listeners.clear()
            self._ack_cwnd_listeners.clear()
            return
        if self._cwnd_listeners:
            raise RuntimeError(
                "sender already has a cwnd listener attached; assigning "
                "would clobber it. Use add_cwnd_listener() (or subscribe "
                "through repro.obs.EventBus) to attach additional observers."
            )
        self._cwnd_listeners.append(fn)
        self._ack_cwnd_listeners.append(fn)

    def _notify_cwnd(self, kind: str) -> None:
        """Dispatch a rare-kind cwnd event to every listener.

        The per-ACK "ack" notification is inlined in :meth:`_on_ack`
        against ``_ack_cwnd_listeners`` instead of going through here.
        """
        listeners = self._cwnd_listeners
        if listeners:
            now = self.sim.now
            cwnd = self.cca.cwnd
            for fn in listeners:
                fn(now, kind, cwnd)


class TcpReceiver:
    """The receiving side: reassembly, SACK generation, delayed ACKs."""

    #: ACK at least every second full-sized segment (RFC 5681).
    ACK_QUOTA = 2

    __slots__ = (
        "sim",
        "flow_id",
        "reverse_path",
        "delayed_ack",
        "delack_timeout",
        "max_sack_blocks",
        "rcv_nxt",
        "received_packets",
        "duplicate_packets",
        "acks_sent",
        "_ooo",
        "_unacked_segments",
        "_delack_event",
    )

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        reverse_path: Optional[Sink] = None,
        delayed_ack: bool = True,
        delack_timeout: float = 0.040,
        max_sack_blocks: int = 3,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.reverse_path = reverse_path
        self.delayed_ack = delayed_ack
        self.delack_timeout = delack_timeout
        self.max_sack_blocks = max_sack_blocks
        self.rcv_nxt = 0
        self.received_packets = 0
        self.duplicate_packets = 0
        self.acks_sent = 0
        self._ooo = RangeSet()
        self._unacked_segments = 0
        self._delack_event: Optional[Event] = None

    def send(self, packet: Packet) -> None:
        """Sink interface — the forward path delivers data here."""
        if packet.is_ack:
            raise ValueError("TcpReceiver received an ACK packet")
        self.received_packets += 1
        seq = packet.seq
        rcv_nxt = self.rcv_nxt
        if seq == rcv_nxt and not self._ooo:
            # In-order fast path (the overwhelmingly common case): the
            # arrival extends the contiguous prefix by exactly one and
            # there is no reordering state to reconcile, so the RangeSet
            # round-trip below (add_point / contiguous_end_from /
            # remove_below) collapses to a single increment. Behaviour
            # is identical to the general path for this case.
            self.rcv_nxt = rcv_nxt + 1
            if not self.delayed_ack:
                self._send_ack(triggering_seq=seq)
                return
            self._unacked_segments += 1
            if self._unacked_segments >= self.ACK_QUOTA:
                self._send_ack(triggering_seq=seq)
            else:
                self._arm_delack()
            return
        if seq < rcv_nxt or seq in self._ooo:
            self.duplicate_packets += 1
            self._send_ack(triggering_seq=seq)
            return
        self._ooo.add_point(seq)
        filled_hole = False
        new_nxt = self._ooo.contiguous_end_from(self.rcv_nxt)
        if new_nxt > self.rcv_nxt:
            # Advanced the cumulative point; an advance of more than one
            # packet means this arrival filled a hole in front of buffered
            # out-of-order data -> ACK immediately (RFC 5681 §4.2).
            filled_hole = new_nxt - self.rcv_nxt > 1
            self.rcv_nxt = new_nxt
            self._ooo.remove_below(new_nxt)
        out_of_order = seq >= self.rcv_nxt  # still above the cumulative point
        if out_of_order or filled_hole or self._ooo or not self.delayed_ack:
            self._send_ack(triggering_seq=seq)
            return
        self._unacked_segments += 1
        if self._unacked_segments >= self.ACK_QUOTA:
            self._send_ack(triggering_seq=seq)
        else:
            self._arm_delack()

    def _arm_delack(self) -> None:
        if self._delack_event is not None and event_pending(self._delack_event):
            return
        self._delack_event = self.sim.schedule(self.delack_timeout, self._on_delack)

    def _on_delack(self) -> None:
        self._delack_event = None
        if self._unacked_segments > 0:
            self._send_ack(triggering_seq=None)

    def _sack_blocks(self, triggering_seq: Optional[int]) -> Tuple[SackBlock, ...]:
        if not self._ooo:
            return ()
        ranges = self._ooo.ranges()
        blocks: List[SackBlock] = []
        if triggering_seq is not None:
            for r in ranges:
                if r[0] <= triggering_seq < r[1]:
                    blocks.append(r)
                    break
        for r in ranges:
            if len(blocks) >= self.max_sack_blocks:
                break
            if r not in blocks:
                blocks.append(r)
        return tuple(blocks)

    def _send_ack(self, triggering_seq: Optional[int]) -> None:
        if self.reverse_path is None:
            raise RuntimeError("TcpReceiver has no reverse path attached")
        self._unacked_segments = 0
        if self._delack_event is not None and event_pending(self._delack_event):
            self.sim.cancel(self._delack_event)
            self._delack_event = None
        ack = Packet(
            self.flow_id,
            size=ACK_PACKET_BYTES,
            is_ack=True,
            ack_seq=self.rcv_nxt,
            sack_blocks=self._sack_blocks(triggering_seq) if self._ooo else (),
        )
        self.acks_sent += 1
        self.reverse_path.send(ack)
