"""BBRv2 congestion control (simplified).

The paper evaluates BBRv1 and notes that "BBRv2 remains a work in
progress"; this module implements the *structural* BBRv2 changes that
matter for the paper's fairness questions, so users can extend the
sweeps to the successor algorithm (see ``benchmarks/bench_ext_bbr2.py``):

- **loss responsiveness**: unlike v1, v2 reacts to loss events with a
  multiplicative cut (``BETA = 0.7``) and learns a volume-of-inflight
  upper bound ``inflight_hi`` from the level at which loss occurred;
- **time-based ProbeBW cycle**: DOWN -> CRUISE -> REFILL -> UP instead
  of v1's eight-phase gain cycle, probing for bandwidth only every
  couple of seconds instead of every eight round trips;
- **gentler ProbeRTT**: cwnd is halved (not dropped to four packets)
  and the probe interval is 5 s.

Deliberate simplifications vs the full draft (documented here so nobody
mistakes this for a complete BBRv2): no ECN support, no ``inflight_lo``
/ ``bw_lo`` short-term model, no full loss-rate bookkeeping per probe
round — the loss signal is the recovery-event hook the connection
already provides.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..rate_sample import RateSample
from .bbr import Bbr

if TYPE_CHECKING:  # pragma: no cover
    from ..connection import TcpSender

PROBE_DOWN = "PROBE_DOWN"
PROBE_CRUISE = "PROBE_CRUISE"
PROBE_REFILL = "PROBE_REFILL"
PROBE_UP = "PROBE_UP"


class Bbr2(Bbr):
    """Simplified BBRv2: BBRv1 skeleton + loss-bounded inflight model."""

    name = "bbr2"

    #: Multiplicative decrease applied to the inflight bound on loss.
    BETA = 0.7
    #: Baseline wait between bandwidth probes, seconds (draft: 2-3 s).
    PROBE_WAIT_BASE = 2.0
    #: ProbeRTT cadence for v2.
    RTPROP_FILTER_LEN = 5.0

    def __init__(self, mss: int = 1500, rng: Optional[random.Random] = None) -> None:
        super().__init__(mss=mss, rng=rng)
        self.inflight_hi = float("inf")
        self._probe_wait = self.PROBE_WAIT_BASE
        self._phase_stamp = 0.0

    # ------------------------------------------------------------------
    # ProbeBW: time-based DOWN/CRUISE/REFILL/UP cycle
    # ------------------------------------------------------------------

    def _enter_probe_bw(self, now: float) -> None:
        self.state = PROBE_DOWN
        self.cwnd_gain = 2.0
        self.pacing_gain = 0.9
        self._phase_stamp = now
        self._probe_wait = self.PROBE_WAIT_BASE + self._rng.uniform(0.0, 1.0)

    def _in_probe_bw(self) -> bool:
        return self.state in (PROBE_DOWN, PROBE_CRUISE, PROBE_REFILL, PROBE_UP)

    def _check_cycle_phase(self, rs: RateSample, now: float) -> None:
        if not self._in_probe_bw():
            return
        rtprop = self.rtprop if self.rtprop is not None else 0.05
        elapsed = now - self._phase_stamp
        if self.state == PROBE_DOWN:
            # Drain until inflight is back within the (reduced) target.
            if elapsed > rtprop and rs.prior_in_flight <= self.inflight_target(1.0):
                self.state = PROBE_CRUISE
                self.pacing_gain = 1.0
                self._phase_stamp = now
        elif self.state == PROBE_CRUISE:
            if elapsed > self._probe_wait:
                self.state = PROBE_REFILL
                self.pacing_gain = 1.0
                self.inflight_hi = max(self.inflight_hi, self.inflight_target(1.0))
                self._phase_stamp = now
        elif self.state == PROBE_REFILL:
            if elapsed > rtprop:
                self.state = PROBE_UP
                self.pacing_gain = 1.25
                self._phase_stamp = now
        elif self.state == PROBE_UP:
            hit_ceiling = rs.newly_lost > 0 or (
                self.inflight_hi < float("inf")
                and rs.prior_in_flight >= self.inflight_hi
            )
            if elapsed > rtprop and hit_ceiling:
                self.state = PROBE_DOWN
                self.pacing_gain = 0.9
                self._phase_stamp = now
                self._probe_wait = self.PROBE_WAIT_BASE + self._rng.uniform(0.0, 1.0)
            elif rs.newly_lost == 0 and elapsed > rtprop:
                # No loss at the current ceiling: raise it once per
                # round-trip of probing, bounded well above the 1-BDP
                # operating point so it stops constraining when the path
                # shows no loss at all.
                self._phase_stamp = now
                if self.inflight_hi < float("inf"):
                    self.inflight_hi = min(
                        self.inflight_hi * 1.25, self.inflight_target(4.0)
                    )

    # ------------------------------------------------------------------
    # Loss response (the defining v2 change)
    # ------------------------------------------------------------------

    def on_loss_event(self, conn: "TcpSender") -> None:
        super().on_loss_event(conn)
        level = max(float(conn.in_flight), self.MIN_PIPE_CWND)
        if self.inflight_hi == float("inf"):
            self.inflight_hi = level * self.BETA
        else:
            self.inflight_hi = max(
                min(self.inflight_hi, level) * self.BETA, self.MIN_PIPE_CWND
            )
        # v2 cuts cwnd multiplicatively rather than relying purely on
        # packet conservation.
        self.cwnd = max(self.cwnd * self.BETA, self.MIN_PIPE_CWND)
        if self._in_probe_bw():
            self.state = PROBE_DOWN
            self.pacing_gain = 0.9
            self._phase_stamp = conn.sim.now

    def _update_cwnd(self, rs: RateSample, conn: "TcpSender") -> None:
        super()._update_cwnd(rs, conn)
        if self.inflight_hi < float("inf") and self.state != "PROBE_RTT":
            self.cwnd = min(self.cwnd, max(self.inflight_hi, self.MIN_PIPE_CWND))

    # ------------------------------------------------------------------
    # Gentler ProbeRTT
    # ------------------------------------------------------------------

    def _probe_rtt_cwnd(self) -> float:
        return max(self.bdp_packets(0.5), self.MIN_PIPE_CWND)

    def _handle_probe_rtt(self, rs: RateSample, conn: "TcpSender", now: float) -> None:
        conn.rate_estimator.mark_app_limited(conn.in_flight)
        floor = self._probe_rtt_cwnd()
        if self.probe_rtt_done_stamp is None:
            if conn.in_flight <= floor + 1:
                self.probe_rtt_done_stamp = now + self.PROBE_RTT_DURATION
                self.probe_rtt_round_done = False
                self.next_round_delivered = conn.rate_estimator.delivered
            return
        if self.round_start:
            self.probe_rtt_round_done = True
        if self.probe_rtt_round_done and now > self.probe_rtt_done_stamp:
            self.rtprop_stamp = now
            self._restore_cwnd()
            self._exit_probe_rtt(now)

    def _check_probe_rtt(self, rs: RateSample, conn: "TcpSender", now: float) -> None:
        if self.state != "PROBE_RTT" and self.rtprop_expired and self.rtprop is not None:
            self._enter_probe_rtt()
        if self.state == "PROBE_RTT":
            self._handle_probe_rtt(rs, conn, now)
            self.cwnd = min(self.cwnd, max(self._probe_rtt_cwnd(), self.MIN_PIPE_CWND))
