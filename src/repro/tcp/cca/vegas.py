"""TCP Vegas congestion control (Brakmo et al., 1994).

Delay-based CCA included as an extension: the paper mentions Vegas in
its CCA survey but does not evaluate it. Having a delay-based algorithm
in the library lets users extend the paper's sweeps to a third CCA
family (see ``examples/``), and exercises the RateSample RTT plumbing a
second way.

Implements the classic per-RTT decision rule: with ``diff = cwnd *
(rtt - base_rtt) / rtt`` packets estimated queued, increase cwnd by one
when ``diff < alpha``, decrease by one when ``diff > beta``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..rate_sample import RateSample
from .base import CongestionControl

if TYPE_CHECKING:  # pragma: no cover
    from ..connection import TcpSender


class Vegas(CongestionControl):
    """TCP Vegas with slow start and alpha/beta steady-state control."""

    name = "vegas"

    def __init__(self, alpha: float = 2.0, beta: float = 4.0) -> None:
        super().__init__()
        if not 0 < alpha <= beta:
            raise ValueError("require 0 < alpha <= beta")
        self.alpha = alpha
        self.beta = beta
        self.ssthresh = float("inf")
        self.base_rtt: Optional[float] = None
        self._min_rtt_this_round: Optional[float] = None
        self._next_adjust_delivered = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, rs: RateSample, conn: "TcpSender") -> None:
        if rs.rtt is not None and rs.rtt > 0:
            if self.base_rtt is None or rs.rtt < self.base_rtt:
                self.base_rtt = rs.rtt
            if self._min_rtt_this_round is None or rs.rtt < self._min_rtt_this_round:
                self._min_rtt_this_round = rs.rtt
        if rs.newly_acked <= 0 or conn.in_recovery:
            return
        delivered = conn.rate_estimator.delivered
        if delivered < self._next_adjust_delivered:
            return
        # One adjustment per round trip (per cwnd of deliveries).
        self._next_adjust_delivered = delivered + int(self.cwnd)
        rtt = self._min_rtt_this_round
        self._min_rtt_this_round = None
        if rtt is None or self.base_rtt is None or rtt <= 0:
            return
        if self.in_slow_start:
            # Vegas slow start: grow every other round; leave when the
            # queue estimate exceeds one packet.
            diff = self.cwnd * (rtt - self.base_rtt) / rtt
            if diff > 1.0:
                self.ssthresh = self.cwnd
            else:
                self.cwnd += self.cwnd / 2.0
            return
        diff = self.cwnd * (rtt - self.base_rtt) / rtt
        if diff < self.alpha:
            self.cwnd += 1.0
        elif diff > self.beta:
            self.cwnd = max(self.cwnd - 1.0, self.MIN_CWND)

    def on_loss_event(self, conn: "TcpSender") -> None:
        self.ssthresh = max(self.cwnd * 0.5, self.MIN_CWND)
        self.cwnd = max(self.cwnd * 0.75, self.MIN_CWND)

    def on_rto(self, conn: "TcpSender") -> None:
        self.ssthresh = max(conn.in_flight * 0.5, self.MIN_CWND)
        self.cwnd = 1.0
