"""TCP CUBIC congestion control (RFC 8312).

The default CCA on Linux and Windows Server, and the baseline the paper
competes NewReno and BBR against. Implements the cubic window growth
function with the TCP-friendly region, fast convergence, and
``beta = 0.7`` multiplicative decrease. HyStart is not implemented
(standard slow start is used); this does not affect steady-state
competition results, which is what the paper measures after its warm-up
cut.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..rate_sample import RateSample
from .base import CongestionControl

if TYPE_CHECKING:  # pragma: no cover
    from ..connection import TcpSender


class Cubic(CongestionControl):
    """CUBIC per RFC 8312."""

    name = "cubic"

    #: RFC 8312 constants.
    C = 0.4
    BETA = 0.7

    def __init__(self, fast_convergence: bool = True) -> None:
        super().__init__()
        self.fast_convergence = fast_convergence
        self.ssthresh = float("inf")
        self.w_max = 0.0
        self.k = 0.0
        self.epoch_start: Optional[float] = None
        self.w_est = 0.0
        self._ack_count = 0.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, rs: RateSample, conn: "TcpSender") -> None:
        if rs.newly_acked <= 0 or conn.in_recovery:
            return
        if self.in_slow_start:
            self.cwnd += rs.newly_acked
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
            return
        now = conn.sim.now
        rtt = conn.rtt.srtt or conn.rtt.latest_rtt
        if rtt is None or rtt <= 0:
            # No RTT estimate yet; grow like Reno until one exists.
            self.cwnd += rs.newly_acked / self.cwnd
            return
        if self.epoch_start is None:
            self._start_epoch(now, rtt)
        t = now - self.epoch_start
        target = self._w_cubic(t + rtt)
        # TCP-friendly region (RFC 8312 §4.2): track the window standard
        # AIMD would have reached.
        self._ack_count += rs.newly_acked
        self.w_est += (
            3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) * rs.newly_acked / self.cwnd
        )
        if self._w_cubic(t) < self.w_est:
            if self.cwnd < self.w_est:
                self.cwnd = self.w_est
            return
        # Concave/convex region: approach 'target' within one RTT.
        if target > self.cwnd:
            self.cwnd += (target - self.cwnd) / self.cwnd * rs.newly_acked
        else:
            # Window is above target (e.g. just after epoch start):
            # minimal growth keeps the ACK clock alive (RFC: 1% of cwnd
            # per RTT is acceptable; we hold the window instead).
            self.cwnd += 0.01 * rs.newly_acked / self.cwnd

    def _start_epoch(self, now: float, rtt: float) -> None:
        self.epoch_start = now
        if self.w_max < self.cwnd:
            self.w_max = self.cwnd
        self.k = ((self.w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
        self.w_est = self.cwnd
        self._ack_count = 0.0

    def _w_cubic(self, t: float) -> float:
        return self.C * (t - self.k) ** 3 + self.w_max

    def on_loss_event(self, conn: "TcpSender") -> None:
        self.epoch_start = None
        if self.fast_convergence and self.cwnd < self.w_max:
            # Release bandwidth faster when the available share shrank.
            self.w_max = self.cwnd * (2.0 - self.BETA) / 2.0
        else:
            self.w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.BETA, self.MIN_CWND)
        self.ssthresh = max(self.cwnd, self.MIN_CWND)

    def on_rto(self, conn: "TcpSender") -> None:
        self.epoch_start = None
        self.w_max = self.cwnd
        self.ssthresh = max(conn.in_flight * self.BETA, self.MIN_CWND)
        self.cwnd = 1.0
