"""BBRv1 congestion control (Cardwell et al.).

Implements the state machine from draft-cardwell-iccrg-bbr-congestion-
control-00 (the "BBRv1" the paper evaluates): STARTUP / DRAIN /
PROBE_BW / PROBE_RTT, a windowed-max bottleneck-bandwidth filter over 10
round trips, a 10-second min-RTT filter with ProbeRTT refresh, pacing at
``pacing_gain * BtlBw``, and a cwnd cap of ``cwnd_gain * BDP`` (plus the
Linux-style 3-packet quantization budget, which matters in the paper's
CoreScale regime where per-flow BDP is only a few packets).

Loss handling follows the draft's modulations: one round of packet
conservation on entering recovery, cwnd = 1 after an RTO, and restoring
the saved cwnd when recovery ends — BBR otherwise ignores loss, which is
exactly the property behind the paper's Findings 6 and 7.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..rate_sample import RateSample
from .base import CongestionControl
from .filters import WindowedFilter

if TYPE_CHECKING:  # pragma: no cover
    from ..connection import TcpSender

STARTUP = "STARTUP"
DRAIN = "DRAIN"
PROBE_BW = "PROBE_BW"
PROBE_RTT = "PROBE_RTT"


class Bbr(CongestionControl):
    """BBRv1 per the IETF draft."""

    name = "bbr"

    #: 2/ln(2): fastest gain that still allows bandwidth doubling per round.
    HIGH_GAIN = 2.885
    #: ProbeBW pacing-gain cycle (draft §4.3.4.2).
    GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    #: BtlBw max-filter length, in round trips.
    BTLBW_FILTER_LEN = 10
    #: RTprop min-filter length, seconds.
    RTPROP_FILTER_LEN = 10.0
    #: Time spent at minimal cwnd in PROBE_RTT.
    PROBE_RTT_DURATION = 0.2
    #: Minimal cwnd (packets) BBR will ever use.
    MIN_PIPE_CWND = 4.0
    #: Quantization budget added to the inflight target (Linux adds
    #: 3 * TSO-quantum; with no offload the quantum is one packet).
    QUANTIZATION_BUDGET = 3.0

    def __init__(self, mss: int = 1500, rng: Optional[random.Random] = None) -> None:
        super().__init__()
        self.mss = mss
        self._rng = rng or random.Random(0xBB12)
        # Filters and estimates.
        self.btlbw_filter = WindowedFilter(self.BTLBW_FILTER_LEN, mode="max")
        self.btlbw: Optional[float] = None  # packets / second
        self.rtprop: Optional[float] = None
        self.rtprop_stamp = 0.0
        self.rtprop_expired = False
        # Round counting.
        self.round_count = 0
        self.round_start = False
        self.next_round_delivered = 0
        # Startup full-pipe detection.
        self.filled_pipe = False
        self.full_bw = 0.0
        self.full_bw_count = 0
        # State machine.
        self.state = STARTUP
        self.pacing_gain = self.HIGH_GAIN
        self.cwnd_gain = self.HIGH_GAIN
        self.cycle_index = 0
        self.cycle_stamp = 0.0
        # ProbeRTT.
        self.probe_rtt_done_stamp: Optional[float] = None
        self.probe_rtt_round_done = False
        # Recovery modulation.
        self.packet_conservation = False
        self.prior_cwnd = 0.0
        self._in_recovery = False

        self.cwnd = self.INITIAL_CWND

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def pacing_rate(self) -> Optional[float]:
        """Pacing rate in bits/second."""
        bw = self.btlbw
        if bw is None:
            # Bootstrap: pace the initial window over the (unknown) RTT,
            # assuming 1 ms until a measurement exists (draft §4.2.1).
            rtt = self.rtprop if self.rtprop else 0.001
            bw = self.INITIAL_CWND / rtt
        return self.pacing_gain * bw * self.mss * 8.0

    def bdp_packets(self, gain: float = 1.0) -> float:
        """BDP estimate scaled by ``gain``, in packets."""
        if self.btlbw is None or self.rtprop is None:
            return self.INITIAL_CWND
        return gain * self.btlbw * self.rtprop

    def inflight_target(self, gain: float) -> float:
        """The inflight level BBR aims for at a given gain (draft BBRInflight)."""
        if self.btlbw is None or self.rtprop is None:
            return self.INITIAL_CWND
        return max(
            self.bdp_packets(gain) + self.QUANTIZATION_BUDGET, self.MIN_PIPE_CWND
        )

    # ------------------------------------------------------------------
    # Main per-ACK update (draft BBRUpdateOnACK)
    # ------------------------------------------------------------------

    def on_ack(self, rs: RateSample, conn: "TcpSender") -> None:
        now = conn.sim.now
        self._update_round(rs, conn)
        self._update_btlbw(rs)
        self._check_cycle_phase(rs, now)
        self._check_full_pipe(rs)
        self._check_drain(conn, now)
        self._update_rtprop(rs, now)
        self._check_probe_rtt(rs, conn, now)
        self._update_cwnd(rs, conn)

    def _update_round(self, rs: RateSample, conn: "TcpSender") -> None:
        self.round_start = False
        if rs.delivered <= 0:
            return
        if rs.prior_delivered >= self.next_round_delivered:
            self.next_round_delivered = conn.rate_estimator.delivered
            self.round_count += 1
            self.round_start = True
            if self.packet_conservation:
                # One round of conservation after entering recovery.
                self.packet_conservation = False

    def _update_btlbw(self, rs: RateSample) -> None:
        rate = rs.delivery_rate
        if rate is None:
            return
        if not rs.is_app_limited or (self.btlbw is not None and rate >= self.btlbw):
            self.btlbw = self.btlbw_filter.update(rate, self.round_count)

    def _check_cycle_phase(self, rs: RateSample, now: float) -> None:
        if self.state != PROBE_BW:
            return
        if self._is_next_cycle_phase(rs, now):
            self.cycle_index = (self.cycle_index + 1) % len(self.GAIN_CYCLE)
            self.cycle_stamp = now
            self.pacing_gain = self.GAIN_CYCLE[self.cycle_index]

    def _is_next_cycle_phase(self, rs: RateSample, now: float) -> bool:
        rtprop = self.rtprop if self.rtprop is not None else 0.0
        is_full_length = (now - self.cycle_stamp) > rtprop
        if self.pacing_gain == 1.0:
            return is_full_length
        if self.pacing_gain > 1.0:
            return is_full_length and (
                rs.newly_lost > 0
                or rs.prior_in_flight >= self.inflight_target(self.pacing_gain)
            )
        return is_full_length or rs.prior_in_flight <= self.inflight_target(1.0)

    def _check_full_pipe(self, rs: RateSample) -> None:
        if self.filled_pipe or not self.round_start or rs.is_app_limited:
            return
        if self.btlbw is None:
            return
        if self.btlbw >= self.full_bw * 1.25:
            self.full_bw = self.btlbw
            self.full_bw_count = 0
            return
        self.full_bw_count += 1
        if self.full_bw_count >= 3:
            self.filled_pipe = True

    def _check_drain(self, conn: "TcpSender", now: float) -> None:
        if self.state == STARTUP and self.filled_pipe:
            self.state = DRAIN
            self.pacing_gain = 1.0 / self.HIGH_GAIN
            self.cwnd_gain = self.HIGH_GAIN
        if self.state == DRAIN and conn.in_flight <= self.inflight_target(1.0):
            self._enter_probe_bw(now)

    def _enter_probe_bw(self, now: float) -> None:
        self.state = PROBE_BW
        self.cwnd_gain = 2.0
        # Start anywhere in the cycle except the 1.25 probing phase
        # (draft: randomised to de-synchronise flows).
        self.cycle_index = self._rng.randrange(1, len(self.GAIN_CYCLE))
        self.pacing_gain = self.GAIN_CYCLE[self.cycle_index]
        self.cycle_stamp = now

    def _update_rtprop(self, rs: RateSample, now: float) -> None:
        self.rtprop_expired = now > self.rtprop_stamp + self.RTPROP_FILTER_LEN
        if rs.rtt is not None and rs.rtt > 0:
            if self.rtprop is None or rs.rtt <= self.rtprop or self.rtprop_expired:
                self.rtprop = rs.rtt
                self.rtprop_stamp = now

    def _check_probe_rtt(self, rs: RateSample, conn: "TcpSender", now: float) -> None:
        if self.state != PROBE_RTT and self.rtprop_expired and self.rtprop is not None:
            self._enter_probe_rtt()
        if self.state == PROBE_RTT:
            self._handle_probe_rtt(rs, conn, now)

    def _enter_probe_rtt(self) -> None:
        self.prior_cwnd = self._save_cwnd()
        self.state = PROBE_RTT
        self.pacing_gain = 1.0
        self.cwnd_gain = 1.0
        self.probe_rtt_done_stamp = None
        self.probe_rtt_round_done = False

    def _handle_probe_rtt(self, rs: RateSample, conn: "TcpSender", now: float) -> None:
        # Samples taken at the 4-packet ProbeRTT cwnd would drag the
        # bandwidth filter down; flag them app-limited (draft §4.3.5).
        conn.rate_estimator.mark_app_limited(conn.in_flight)
        if self.probe_rtt_done_stamp is None:
            if conn.in_flight <= self.MIN_PIPE_CWND:
                self.probe_rtt_done_stamp = now + self.PROBE_RTT_DURATION
                self.probe_rtt_round_done = False
                self.next_round_delivered = conn.rate_estimator.delivered
            return
        if self.round_start:
            self.probe_rtt_round_done = True
        if self.probe_rtt_round_done and now > self.probe_rtt_done_stamp:
            self.rtprop_stamp = now
            self._restore_cwnd()
            self._exit_probe_rtt(now)

    def _exit_probe_rtt(self, now: float) -> None:
        if self.filled_pipe:
            self._enter_probe_bw(now)
        else:
            self.state = STARTUP
            self.pacing_gain = self.HIGH_GAIN
            self.cwnd_gain = self.HIGH_GAIN

    # ------------------------------------------------------------------
    # cwnd control (draft BBRSetCwnd)
    # ------------------------------------------------------------------

    def _update_cwnd(self, rs: RateSample, conn: "TcpSender") -> None:
        acked = rs.newly_acked
        # Loss modulation (Linux bbr_set_cwnd_to_recover_or_restore):
        # subtract the newly marked losses from cwnd, and during the
        # first round of recovery never let cwnd fall below what is in
        # flight — a floor, not a ceiling.
        if rs.newly_lost > 0:
            self.cwnd = max(self.cwnd - rs.newly_lost, 1.0)
        if self.packet_conservation:
            self.cwnd = max(self.cwnd, conn.in_flight + acked)
        if acked <= 0 and rs.newly_lost <= 0 and self.state != PROBE_RTT:
            return
        target = self.inflight_target(self.cwnd_gain)
        if not self.packet_conservation and acked > 0:
            if self.filled_pipe:
                self.cwnd = min(self.cwnd + acked, target)
            elif self.cwnd < target or conn.rate_estimator.delivered < self.INITIAL_CWND:
                self.cwnd += acked
        self.cwnd = max(self.cwnd, self.MIN_PIPE_CWND)
        if self.state == PROBE_RTT:
            self.cwnd = min(self.cwnd, self._probe_rtt_cwnd())

    def _probe_rtt_cwnd(self) -> float:
        """cwnd held during ProbeRTT (v1: the 4-packet floor)."""
        return self.MIN_PIPE_CWND

    def _save_cwnd(self) -> float:
        if not self._in_recovery and self.state != PROBE_RTT:
            return self.cwnd
        return max(self.prior_cwnd, self.cwnd)

    def _restore_cwnd(self) -> None:
        self.cwnd = max(self.cwnd, self.prior_cwnd)

    # ------------------------------------------------------------------
    # Loss / recovery modulation
    # ------------------------------------------------------------------

    def on_loss_event(self, conn: "TcpSender") -> None:
        self.prior_cwnd = self._save_cwnd()
        self._in_recovery = True
        self.packet_conservation = True
        self.next_round_delivered = conn.rate_estimator.delivered
        # The per-ACK loss modulation in _update_cwnd handles the actual
        # cwnd adjustment (cwnd -= losses, floored at in-flight).

    def on_recovery_exit(self, conn: "TcpSender") -> None:
        self._in_recovery = False
        self.packet_conservation = False
        self._restore_cwnd()

    def on_rto(self, conn: "TcpSender") -> None:
        self.prior_cwnd = self._save_cwnd()
        self._in_recovery = True
        self.packet_conservation = False
        self.cwnd = 1.0
