"""Windowed max/min filters used by BBR.

BBR tracks the bottleneck bandwidth as a windowed maximum of delivery
rate samples over ~10 round trips, and the round-trip propagation delay
as a windowed minimum over 10 seconds. Both are implemented here as a
generic monotonic-deque filter keyed by an arbitrary "time" axis (round
count for the bandwidth filter, seconds for the RTT filter).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class WindowedFilter:
    """Tracks the extremum of a stream of samples over a sliding window.

    Parameters
    ----------
    window:
        Width of the window on whatever axis ``update`` receives.
    mode:
        ``"max"`` or ``"min"``.
    """

    def __init__(self, window: float, mode: str = "max") -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.window = window
        self._is_max = mode == "max"
        self._samples: Deque[Tuple[float, float]] = deque()  # (time, value)

    def update(self, value: float, time: float) -> float:
        """Insert a sample observed at ``time``; returns the new extremum."""
        better = (lambda a, b: a >= b) if self._is_max else (lambda a, b: a <= b)
        samples = self._samples
        # Evict samples dominated by the new one.
        while samples and better(value, samples[-1][1]):
            samples.pop()
        samples.append((time, value))
        # Evict samples that have aged out of the window.
        horizon = time - self.window
        while samples and samples[0][0] < horizon:
            samples.popleft()
        return samples[0][1]

    def get(self) -> Optional[float]:
        """Current extremum, or ``None`` if no samples are in the window."""
        if not self._samples:
            return None
        return self._samples[0][1]

    def oldest_time(self) -> Optional[float]:
        """Timestamp of the sample currently defining the extremum."""
        if not self._samples:
            return None
        return self._samples[0][0]

    def reset(self) -> None:
        """Forget all samples."""
        self._samples.clear()
