"""Congestion control algorithms.

Provides the three CCAs the paper evaluates (NewReno, Cubic, BBRv1) plus
Vegas as an extension, and a name-based factory used by scenario
definitions and the CLI.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import CongestionControl
from .bbr import Bbr
from .bbr2 import Bbr2
from .cubic import Cubic
from .newreno import NewReno
from .vegas import Vegas

#: Registry mapping CCA names to zero-argument factories.
CCA_REGISTRY: Dict[str, Callable[[], CongestionControl]] = {
    NewReno.name: NewReno,
    Cubic.name: Cubic,
    Bbr.name: Bbr,
    Bbr2.name: Bbr2,
    Vegas.name: Vegas,
    # Common aliases.
    "reno": NewReno,
    "bbr1": Bbr,
    "bbrv2": Bbr2,
}


def make_cca(name: str) -> CongestionControl:
    """Instantiate a CCA by name (e.g. ``"newreno"``, ``"cubic"``, ``"bbr"``)."""
    try:
        factory = CCA_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(set(CCA_REGISTRY)))
        raise ValueError(f"unknown CCA {name!r}; known: {known}") from None
    return factory()


__all__ = [
    "CongestionControl",
    "NewReno",
    "Cubic",
    "Bbr",
    "Bbr2",
    "Vegas",
    "CCA_REGISTRY",
    "make_cca",
]
