"""Congestion control algorithm (CCA) interface.

CCAs plug into :class:`repro.tcp.connection.TcpSender` through a small
hook surface modelled on the Linux ``tcp_congestion_ops`` vtable:

- :meth:`CongestionControl.on_ack` — every ACK, with a delivery
  :class:`~repro.tcp.rate_sample.RateSample`;
- :meth:`CongestionControl.on_loss_event` — on entry to fast recovery
  (one call per loss *event*, i.e. per window, not per lost packet —
  this is exactly the "CWND halving" the paper measures with tcpprobe);
- :meth:`CongestionControl.on_recovery_exit` — when recovery completes;
- :meth:`CongestionControl.on_rto` — when the retransmission timer fires.

A CCA owns ``cwnd`` (in MSS-sized packets, may be fractional) and an
optional ``pacing_rate`` (bits/second; ``None`` means pure ACK clocking).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..rate_sample import RateSample

if TYPE_CHECKING:  # pragma: no cover
    from ..connection import TcpSender


class CongestionControl:
    """Base class for congestion control algorithms."""

    #: Human-readable algorithm name, used in results and CLI.
    name = "base"

    #: Linux-style initial window (RFC 6928).
    INITIAL_CWND = 10.0

    #: Absolute floor on the congestion window.
    MIN_CWND = 2.0

    def __init__(self) -> None:
        self.cwnd: float = self.INITIAL_CWND

    @property
    def pacing_rate(self) -> Optional[float]:
        """Pacing rate in bits/second, or ``None`` for ACK clocking."""
        return None

    def on_ack(self, rs: RateSample, conn: "TcpSender") -> None:
        """Process one ACK. ``rs.newly_acked`` packets were delivered."""

    def on_loss_event(self, conn: "TcpSender") -> None:
        """A loss event was detected and fast recovery is starting."""

    def on_recovery_exit(self, conn: "TcpSender") -> None:
        """Fast recovery (or RTO recovery) completed."""

    def on_rto(self, conn: "TcpSender") -> None:
        """The retransmission timeout fired."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(cwnd={self.cwnd:.2f})"
