"""TCP NewReno congestion control (RFC 5681 / RFC 6582).

The classic AIMD loss-based algorithm the Mathis model describes:
additive increase of one MSS per RTT in congestion avoidance, window
halving on each loss event, slow start below ``ssthresh``.

The Mathis constant the paper derives empirically (Table 1) corresponds
to this algorithm with delayed ACKs and SACK — both of which the
surrounding :mod:`repro.tcp.connection` machinery provides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..rate_sample import RateSample
from .base import CongestionControl

if TYPE_CHECKING:  # pragma: no cover
    from ..connection import TcpSender


class NewReno(CongestionControl):
    """NewReno: slow start, AIMD congestion avoidance, halving on loss."""

    name = "newreno"

    def __init__(self, beta: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        self.beta = beta
        self.ssthresh = float("inf")

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, rs: RateSample, conn: "TcpSender") -> None:
        if rs.newly_acked <= 0 or conn.in_recovery:
            # No growth while recovering (the SACK pipe rule governs
            # transmission; cwnd stays at the post-halving value).
            return
        if self.in_slow_start:
            self.cwnd += rs.newly_acked
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            self.cwnd += rs.newly_acked / self.cwnd

    def on_loss_event(self, conn: "TcpSender") -> None:
        self.ssthresh = max(self.cwnd * self.beta, self.MIN_CWND)
        self.cwnd = self.ssthresh

    def on_rto(self, conn: "TcpSender") -> None:
        self.ssthresh = max(conn.in_flight * self.beta, self.MIN_CWND)
        self.cwnd = 1.0
