"""Delivery rate estimation (Cheng, Cardwell et al.).

Implements the per-connection bookkeeping and per-ACK rate-sample
generation from draft-cheng-iccrg-delivery-rate-estimation, which is the
measurement substrate BBR's bandwidth filter consumes. The same sample
object is handed to every CCA on each ACK, so loss-based CCAs can also
observe delivery rate if they wish (Vegas uses the RTT fields).
"""

from __future__ import annotations

from typing import Optional


class RateSample:
    """A delivery rate sample covering one ACK's newly delivered data.

    Attributes mirror the draft: ``delivery_rate`` is in packets per
    second (the library's sequence space is packet-numbered), ``rtt`` is
    the ACK's RTT sample if one was taken, and ``is_app_limited`` marks
    samples that may underestimate the path capacity.
    """

    __slots__ = (
        "delivered",
        "prior_delivered",
        "interval",
        "delivery_rate",
        "rtt",
        "is_app_limited",
        "prior_in_flight",
        "newly_acked",
        "newly_lost",
    )

    def __init__(self) -> None:
        self.delivered = 0
        self.prior_delivered = 0
        self.interval = 0.0
        self.delivery_rate: Optional[float] = None
        self.rtt: Optional[float] = None
        self.is_app_limited = False
        self.prior_in_flight = 0
        self.newly_acked = 0
        self.newly_lost = 0


class DeliveryRateEstimator:
    """Per-connection delivery accounting.

    The owning connection calls :meth:`on_packet_sent` when transmitting
    and :meth:`on_packet_delivered` for each packet newly cumulatively
    ACKed or SACKed, then :meth:`finish_sample` once per ACK to produce
    the :class:`RateSample`.
    """

    __slots__ = ("delivered", "delivered_time", "first_sent_time", "app_limited_until")

    def __init__(self) -> None:
        self.delivered = 0
        self.delivered_time = 0.0
        self.first_sent_time = 0.0
        self.app_limited_until = 0  # 'delivered' marker; 0 = not app limited

    def on_packet_sent(self, pkt_state, now: float, in_flight: int) -> None:
        """Stamp per-packet send state (draft's ``SendPacket``)."""
        if in_flight == 0:
            self.first_sent_time = now
            self.delivered_time = now
        pkt_state.sent_time = now
        pkt_state.first_sent_time = self.first_sent_time
        pkt_state.delivered = self.delivered
        pkt_state.delivered_time = self.delivered_time
        pkt_state.is_app_limited = self.app_limited_until > 0

    def start_sample(self, in_flight: int) -> RateSample:
        """Begin a new per-ACK sample (records prior in-flight)."""
        rs = RateSample()
        rs.prior_in_flight = in_flight
        return rs

    def on_packet_delivered(self, rs: RateSample, pkt_state, now: float) -> None:
        """Account one newly delivered packet (draft's ``UpdateRateSample``)."""
        if pkt_state.delivered_time is None:
            return  # already accounted through an earlier SACK
        self.delivered += 1
        self.delivered_time = now
        if pkt_state.delivered >= rs.prior_delivered:
            rs.prior_delivered = pkt_state.delivered
            rs.is_app_limited = pkt_state.is_app_limited
            send_elapsed = pkt_state.sent_time - pkt_state.first_sent_time
            ack_elapsed = self.delivered_time - pkt_state.delivered_time
            rs.interval = max(send_elapsed, ack_elapsed)
            self.first_sent_time = pkt_state.sent_time
        pkt_state.delivered_time = None
        if self.app_limited_until and self.delivered > self.app_limited_until:
            self.app_limited_until = 0

    def finish_sample(self, rs: RateSample, min_rtt_hint: Optional[float]) -> RateSample:
        """Finalise the per-ACK sample, computing ``delivery_rate``."""
        rs.delivered = self.delivered - rs.prior_delivered
        if rs.delivered <= 0 or rs.interval <= 0:
            rs.delivery_rate = None
            return rs
        if min_rtt_hint is not None and rs.interval < min_rtt_hint:
            # Interval shorter than the path's min RTT cannot yield a
            # trustworthy bandwidth sample (draft §3.3).
            rs.delivery_rate = None
            return rs
        rs.delivery_rate = rs.delivered / rs.interval
        return rs

    def mark_app_limited(self, in_flight: int) -> None:
        """Record that sending is application-limited right now."""
        self.app_limited_until = max(self.delivered + in_flight, 1)
