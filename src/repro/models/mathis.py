"""The Mathis NewReno throughput model (Mathis et al., CCR 1997).

    Throughput = MSS * C / (RTT * sqrt(p))

The model's ``p`` is the *congestion event rate*. The paper's central
observation (Findings 1-3) is that two interpretations of ``p`` —
the packet loss rate and the CWND halving rate — agree at the edge but
diverge by 6-9x at scale, so the constant ``C`` is only stable when the
halving rate is used.

This module provides prediction and the empirical derivation of ``C``
by least squares, following the methodology Mathis et al. describe and
the paper reuses for Table 1.
"""

from __future__ import annotations

import math
from typing import Sequence

#: The constant Mathis et al. derive analytically for NewReno with
#: delayed ACKs and SACK.
MATHIS_C_DELAYED_SACK = 0.94


def mathis_throughput(
    mss_bytes: int, rtt_s: float, p: float, c: float = MATHIS_C_DELAYED_SACK
) -> float:
    """Predicted throughput in bits/second.

    Parameters
    ----------
    mss_bytes:
        Maximum segment size (the paper fixes 1448 bytes).
    rtt_s:
        Round-trip time in seconds.
    p:
        Congestion event rate per delivered packet (loss rate or CWND
        halving rate, depending on the interpretation under test).
    c:
        The Mathis constant.
    """
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    return mss_bytes * 8.0 * c / (rtt_s * math.sqrt(p))


def derive_constant(
    throughputs_bps: Sequence[float],
    rtts_s: Sequence[float],
    ps: Sequence[float],
    mss_bytes: int,
) -> float:
    """Best-fit Mathis constant ``C`` by least squares.

    Minimises ``sum_i (T_i - C * x_i)^2`` with
    ``x_i = MSS*8 / (RTT_i * sqrt(p_i))``, which has the closed form
    ``C = sum(x_i * T_i) / sum(x_i^2)``. This is the "C which minimizes
    the least squared prediction error" procedure of Table 1.
    """
    if not throughputs_bps:
        raise ValueError("need at least one observation")
    if not (len(throughputs_bps) == len(rtts_s) == len(ps)):
        raise ValueError("length mismatch between observations")
    num = 0.0
    den = 0.0
    for t, rtt, p in zip(throughputs_bps, rtts_s, ps):
        if rtt <= 0:
            raise ValueError("rtt must be positive")
        if p <= 0:
            continue  # a flow that saw no congestion events carries no signal
        x = mss_bytes * 8.0 / (rtt * math.sqrt(p))
        num += x * t
        den += x * x
    if den == 0.0:
        raise ValueError("no usable observations (all p were zero)")
    return num / den
