"""Analytic CCA throughput models evaluated by the paper."""

from __future__ import annotations

from .cubic_model import cubic_constant, cubic_reno_crossover_p, cubic_throughput
from .mathis import MATHIS_C_DELAYED_SACK, derive_constant, mathis_throughput
from .padhye import padhye_throughput
from .ware_bbr import EMPIRICAL_NEUTRAL_SHARE, predict_bbr_share, probe_sample_share

__all__ = [
    "mathis_throughput",
    "derive_constant",
    "MATHIS_C_DELAYED_SACK",
    "padhye_throughput",
    "cubic_throughput",
    "cubic_constant",
    "cubic_reno_crossover_p",
    "predict_bbr_share",
    "probe_sample_share",
    "EMPIRICAL_NEUTRAL_SHARE",
]
