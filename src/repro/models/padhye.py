"""The PFTK NewReno throughput model (Padhye et al., SIGCOMM 1998).

The more detailed companion to the Mathis model, extending it with
timeout behaviour and a cap at the receiver window:

    T = min( Wmax/RTT,
             MSS / (RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p^2)) )

The paper cites this model alongside Mathis; it is included so users can
compare both against measured goodput (timeouts matter precisely in the
at-scale regime the paper studies, where per-flow windows are tiny).
"""

from __future__ import annotations

import math
from typing import Optional


def padhye_throughput(
    mss_bytes: int,
    rtt_s: float,
    p: float,
    rto_s: float = 0.2,
    b: int = 2,
    max_window_packets: Optional[float] = None,
) -> float:
    """Predicted throughput in bits/second per the full PFTK model.

    Parameters
    ----------
    b:
        Packets acknowledged per ACK (2 with delayed ACKs).
    rto_s:
        Retransmission timeout T0 (Linux floors this at 200 ms, which we
        use as the default).
    max_window_packets:
        Receiver/advertised window cap Wmax, in packets; ``None`` for
        unbounded.
    """
    if rtt_s <= 0 or rto_s <= 0:
        raise ValueError("rtt and rto must be positive")
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    if b < 1:
        raise ValueError("b must be >= 1")
    denom = rtt_s * math.sqrt(2.0 * b * p / 3.0)
    denom += rto_s * min(1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0)) * p * (1.0 + 32.0 * p * p)
    rate_pps = 1.0 / denom
    if max_window_packets is not None:
        if max_window_packets <= 0:
            raise ValueError("max_window_packets must be positive")
        rate_pps = min(rate_pps, max_window_packets / rtt_s)
    return rate_pps * mss_bytes * 8.0
