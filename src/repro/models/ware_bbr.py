"""Ware et al.'s model of BBR competing with loss-based CCAs (IMC 2019).

Ware, Mukerjee, Seshan & Sherry showed that when BBRv1 shares a
drop-tail bottleneck with loss-based flows it becomes *window-limited*:
its throughput is pinned by the in-flight cap ``cwnd_gain * BtlBw_est *
RTprop_est`` rather than by its pacing rate, and therefore depends only
on the buffer size — **not** on the number of loss-based competitors.
The headline prediction the paper re-validates at scale (Findings 6-7)
is that a single BBR flow takes ~40% of the link with a ~1 BDP buffer,
whether it faces 16 flows or 5000.

This module implements that model as a fixed-point iteration over
BBR's estimator map in the full-buffer regime:

- the queue is kept full by the loss-based aggregate, so a
  window-limited BBR flow with in-flight ``i`` (in BDP units) delivers a
  share ``s = i / (1 + q)`` of the link, where ``q`` is the buffer in
  BDP units (FIFO service is proportional to queue occupancy);
- BBR's in-flight cap is ``cwnd_gain * b`` where ``b`` is its bandwidth
  estimate as a link fraction (RTprop is measured during ProbeRTT and
  equals the base RTT);
- during the 1.25 ProbeBW phase BBR's arrival rate rises to
  ``probe_gain * b`` but in-flight stays capped, so the delivery-rate
  sample feeding the max filter is
  ``min(probe_gain * b, cwnd_gain * b / (1 + q))``.

For ``q < cwnd_gain/probe_gain - 1 = 0.6`` the map grows until BBR
saturates the link; for ``q`` near 1 BDP the map is neutrally stable and
the share parks where the probing dynamics leave it — empirically ~40%
(Ware et al. measure 35-40%, and this library's own benches reproduce
the same band); for large ``q`` the share decays toward BBR's 4-packet
cwnd floor.
"""

from __future__ import annotations


#: Share Ware et al. measure in the neutrally-stable ~1 BDP-buffer regime.
EMPIRICAL_NEUTRAL_SHARE = 0.40


def probe_sample_share(b: float, buffer_bdp: float, probe_gain: float = 1.25,
                       cwnd_gain: float = 2.0) -> float:
    """Delivery-rate sample (as a link share) taken during a probe phase."""
    if b < 0 or buffer_bdp < 0:
        raise ValueError("b and buffer_bdp must be non-negative")
    return min(probe_gain * b, cwnd_gain * b / (1.0 + buffer_bdp))


def predict_bbr_share(
    buffer_bdp: float,
    probe_gain: float = 1.25,
    cwnd_gain: float = 2.0,
    iterations: int = 500,
    initial_share: float = 0.5,
) -> float:
    """Predicted steady-state link share of the BBR aggregate.

    Parameters
    ----------
    buffer_bdp:
        Bottleneck buffer in BDP units (the paper's setting is ~1).
    """
    if buffer_bdp < 0:
        raise ValueError("buffer_bdp must be non-negative")
    # Neutral-stability band around 1 BDP: the estimator map has
    # |f'(b)| = 1 and the outcome is set by probing transients; return
    # the empirically validated share.
    neutral_lo = cwnd_gain / probe_gain - 1.0  # 0.6 for standard gains
    if neutral_lo <= buffer_bdp <= cwnd_gain - 1.0:
        return EMPIRICAL_NEUTRAL_SHARE
    b = initial_share
    for _ in range(iterations):
        steady = min(1.0, cwnd_gain * b / (1.0 + buffer_bdp))
        probe = min(1.0, probe_sample_share(b, buffer_bdp, probe_gain, cwnd_gain))
        b_next = max(steady, probe)
        if abs(b_next - b) < 1e-12:
            b = b_next
            break
        b = b_next
    return max(0.0, min(1.0, b))


def share_is_flow_count_invariant() -> bool:
    """The model's defining property: the share does not depend on the
    number of loss-based competitors (they only determine how the
    *remainder* of the link is divided)."""
    return True
