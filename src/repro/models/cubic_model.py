"""CUBIC steady-state throughput model (Ha, Rhee & Xu 2008 / RFC 8312).

Average-window analysis of the cubic growth cycle yields

    T = MSS * (C*(3+beta) / (4*(1-beta)))^(1/4) / (RTT^(1/4) * p^(3/4))

where C = 0.4 and beta = 0.7 (so the leading constant is ~1.054). Note
the weaker RTT dependence (power 1/4 vs Mathis' power 1) — the source of
CUBIC's improved RTT fairness and of its advantage over NewReno in the
paper's Figure 5 competition experiments.
"""

from __future__ import annotations


def cubic_constant(c: float = 0.4, beta: float = 0.7) -> float:
    """Leading constant of the CUBIC response function."""
    if c <= 0 or not 0.0 < beta < 1.0:
        raise ValueError("require c > 0 and beta in (0, 1)")
    return (c * (3.0 + beta) / (4.0 * (1.0 - beta))) ** 0.25


def cubic_throughput(
    mss_bytes: int,
    rtt_s: float,
    p: float,
    c: float = 0.4,
    beta: float = 0.7,
) -> float:
    """Predicted CUBIC throughput in bits/second (cubic-dominated regime)."""
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    k = cubic_constant(c, beta)
    rate_pps = k / (rtt_s ** 0.25 * p ** 0.75)
    return rate_pps * mss_bytes * 8.0


def cubic_reno_crossover_p(rtt_s: float, b: int = 1) -> float:
    """Loss rate below which CUBIC's cubic-mode window exceeds Reno's.

    For higher loss rates CUBIC operates in its TCP-friendly region and
    behaves like Reno; below the crossover the cubic response function
    dominates and CUBIC out-competes Reno (the regime of Figure 5).
    Derived by equating the two response functions.
    """
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    # Equate the two rate laws (packets/second):
    #   Reno:  sqrt(3/(2b)) / (RTT * sqrt(p))
    #   CUBIC: k / (RTT^(1/4) * p^(3/4))
    # => k * RTT^(3/4) = sqrt(3/(2b)) * p^(1/4)
    # => p* = k^4 * RTT^3 / (3/(2b))^2
    k = cubic_constant()
    return k ** 4 * rtt_s ** 3 / (3.0 / (2.0 * b)) ** 2
