"""Lint driver: file discovery, suppression handling, reporting.

Suppressions
------------
A finding is suppressed by an inline comment on the flagged line::

    wall_start = time.perf_counter()  # repro-lint: disable=RPR001 -- wall profiling

or by a comment-only line directly above it (for lines that are already
long). Multiple codes are comma-separated, and ``disable=all`` silences
every rule for that line. Everything after the code list is free text —
use it to justify *why* the violation is intended; the linter does not
parse it but reviewers should expect it.

Suppressions that never match a finding are themselves reported as
``unused suppression`` findings (code ``RPR000``) so stale disables
cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import os
import re
import sys
import tokenize
from typing import IO, Iterable, List, Optional, Sequence, Set

from .rules import ALL_CODES, Finding, check_module

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=((?:RPR\d{3}|all)(?:\s*,\s*(?:RPR\d{3}|all))*)"
)

#: Pseudo-code reported for a suppression comment that silenced nothing.
UNUSED_SUPPRESSION = "RPR000"


class _Directive:
    """One ``# repro-lint: disable=...`` comment and the lines it covers."""

    __slots__ = ("line", "codes", "covered", "used")

    def __init__(self, line: int, codes: Set[str], covered: Set[int]) -> None:
        self.line = line
        self.codes = codes
        self.covered = covered
        self.used = False


def _parse_suppressions(source: str) -> List[_Directive]:
    """Extract suppression directives from source comments.

    Real COMMENT tokens only (a directive quoted inside a string or
    docstring is inert). An inline directive covers its own line; a
    comment-only directive line covers itself and the next line (for
    statements too long to carry the comment).
    """
    directives: List[_Directive] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return directives  # caller already surfaced the syntax problem
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        codes = {c.strip() for c in match.group(1).split(",")}
        if "all" in codes:
            codes = set(ALL_CODES)
        covered = {lineno}
        line_text = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        if line_text.lstrip().startswith("#"):
            covered.add(lineno + 1)
        directives.append(_Directive(lineno, codes, covered))
    return directives


def lint_source(path: str, source: str) -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="RPR999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    directives = _parse_suppressions(source)
    kept: List[Finding] = []
    for finding in check_module(path, tree):
        suppressed = False
        for directive in directives:
            if finding.line in directive.covered and finding.code in directive.codes:
                directive.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    for directive in directives:
        if not directive.used:
            kept.append(
                Finding(
                    path=path,
                    line=directive.line,
                    col=0,
                    code=UNUSED_SUPPRESSION,
                    message="unused suppression: no finding matched "
                    f"disable={','.join(sorted(directive.codes))}",
                )
            )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every Python file under ``paths``."""
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as fh:
            source = fh.read()
        findings.extend(lint_source(filename, source))
    return findings


#: Codes accepted by ``--select`` beyond the real rules.
_PSEUDO_CODES = (UNUSED_SUPPRESSION, "RPR999")


def main(paths: Sequence[str], select: Sequence[str] = (), out: Optional[IO[str]] = None) -> int:
    """CLI entry: print findings, return a shell exit status.

    Usage errors (unknown ``--select`` code, missing path) exit 2 rather
    than reporting a clean tree: a CI gate pointed at a renamed
    directory must fail loudly, not pass vacuously.
    """
    if out is None:
        out = sys.stdout  # bound at call time so stream redirection works
    unknown = [c for c in select if c not in ALL_CODES and c not in _PSEUDO_CODES]
    if unknown:
        print(f"repro-lint: error: unknown rule code(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"repro-lint: error: no such file or directory: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    if select:
        wanted = set(select)
        findings = [f for f in findings if f.code in wanted]
    for finding in findings:
        print(finding.render(), file=out)
    count = len(findings)
    files = len(set(iter_python_files(paths)))
    status = "clean" if count == 0 else f"{count} finding(s)"
    print(f"repro-lint: {files} file(s) checked, {status}", file=out)
    return 1 if count else 0


__all__ = ["Finding", "lint_source", "lint_paths", "iter_python_files", "main"]
