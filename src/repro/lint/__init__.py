"""Simulator-aware correctness tooling.

Two halves, one goal — make measurement-corrupting bugs impossible to
land silently:

- **Static pass** (:mod:`repro.lint.rules`, :mod:`repro.lint.runner`) —
  an AST linter with domain rules (``RPR001``..``RPR006``) over
  simulation code: wall-clock reads, unseeded randomness, float
  equality on simulated time, hash-order-dependent scheduling, mutable
  defaults, and ``schedule()`` callback arity. Run it as
  ``repro lint src benchmarks``.
- **Runtime sanitizer** (:mod:`repro.lint.sanitizer`) — opt-in
  invariant checking (``REPRO_SANITIZE=1`` or
  ``Simulator(sanitize=True)``) asserting clock monotonicity, byte
  conservation through queues, ``cwnd >= 1`` MSS, and scoreboard
  RangeSet consistency, failing fast with flow and simulated time.

See README "Static analysis & sanitizer" and DESIGN.md for why these
invariants protect the paper's findings F1-F8.
"""

from __future__ import annotations

from .rules import ALL_CODES, RULE_SUMMARIES, Finding
from .runner import iter_python_files, lint_paths, lint_source
from .sanitizer import SanitizerError, SimSanitizer, sanitize_enabled_from_env

__all__ = [
    "ALL_CODES",
    "RULE_SUMMARIES",
    "Finding",
    "lint_paths",
    "lint_source",
    "iter_python_files",
    "SimSanitizer",
    "SanitizerError",
    "sanitize_enabled_from_env",
]
