"""Runtime simulation sanitizer — the ASan/TSan analogue for the simulator.

Opt-in invariant checking for a running simulation. When enabled (either
``Simulator(sanitize=True)`` or the ``REPRO_SANITIZE=1`` environment
variable), a single :class:`SimSanitizer` instance attaches to the
:class:`~repro.sim.engine.Simulator` and the components constructed
around it hook their mutation points into it:

- **engine** — virtual-clock monotonicity, no event executed or
  scheduled before ``now``, no NaN event times;
- **queues** — byte conservation: every byte accepted by ``offer`` is
  accounted for by a dequeue, an in-queue drop (CoDel head drops), or
  current occupancy; occupancy stays within ``[0, capacity]``;
- **links** — a transmit completion only happens while the link is
  marked busy, and the link never finishes more bytes than its queue
  released;
- **TCP senders** — ``cwnd >= 1`` MSS after every CCA decision,
  scoreboard counters non-negative, ``snd_una <= snd_nxt``, and the
  SACKed/lost/covered :class:`~repro.tcp.rangeset.RangeSet` scoreboards
  structurally consistent with ``sacked ∪ lost ⊆ covered``.

Failures raise :class:`SanitizerError` immediately (fail-fast) with a
diagnostic naming the offending component, the flow where applicable,
and the simulated time — a silently-wrong Mathis fit becomes a loud
crash at the first corrupt event instead.

The checks are O(1) per queue operation and O(fragments) per ACK, so a
sanitized run stays within ~2x of baseline wall time (enforced by the
tier-1 acceptance bar; see README "Static analysis & sanitizer").
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..sim.engine import Simulator
    from ..sim.link import Link
    from ..sim.packet import Packet
    from ..sim.queue import Queue
    from ..tcp.connection import TcpSender

#: Slack for float comparisons on the virtual clock. The engine never
#: produces a regressing clock by construction; this only guards against
#: heap corruption and NaN poisoning, so a tiny epsilon is safe.
_CLOCK_SLACK = 1e-9


def sanitize_enabled_from_env() -> bool:
    """True when ``REPRO_SANITIZE`` requests a sanitized run."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
        "", "0", "false", "no", "off",
    )


class SanitizerError(AssertionError):
    """A simulation invariant was violated.

    Subclasses :class:`AssertionError` so test harnesses and invariant-
    checking idioms treat it like a failed assert, while remaining
    catchable specifically.
    """


class _QueueAccount:
    """Per-queue byte ledger: in = out + dropped-in-queue + occupancy."""

    __slots__ = ("bytes_in", "bytes_out", "bytes_dropped")

    def __init__(self) -> None:
        self.bytes_in = 0
        self.bytes_out = 0
        self.bytes_dropped = 0


class SimSanitizer:
    """Invariant checker attached to one :class:`Simulator`.

    Components discover the active sanitizer through
    ``sim.sanitizer`` (``None`` when sanitizing is off) and call the
    ``on_*``/``check_*`` hooks at their mutation points. All hooks
    raise :class:`SanitizerError` on violation and return nothing.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.checks_performed = 0
        self._queues: Dict[int, _QueueAccount] = {}

    # ------------------------------------------------------------------
    # Failure plumbing
    # ------------------------------------------------------------------

    def _fail(self, component: str, message: str, flow_id: Optional[int] = None) -> None:
        flow = f" flow={flow_id}" if flow_id is not None else ""
        raise SanitizerError(
            f"[repro-sanitize] t={self.sim.now:.9f}{flow} {component}: {message}"
        )

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------

    def on_schedule(self, time: float) -> None:
        """A new event was pushed for absolute ``time``."""
        self.checks_performed += 1
        if math.isnan(time):
            self._fail("engine", "event scheduled at NaN time")
        if time + _CLOCK_SLACK < self.sim.now:
            self._fail(
                "engine",
                f"event scheduled in the past (at={time!r}, now={self.sim.now!r})",
            )

    def on_execute(self, time: float) -> None:
        """The engine is about to advance the clock to ``time``."""
        self.checks_performed += 1
        if math.isnan(time):
            self._fail("engine", "event fires at NaN time")
        if time + _CLOCK_SLACK < self.sim.now:
            self._fail(
                "engine",
                f"clock regression: executing event at {time!r} with now={self.sim.now!r}",
            )

    # ------------------------------------------------------------------
    # Queue hooks (byte conservation)
    # ------------------------------------------------------------------

    def watch_queue(self, queue: "Queue") -> None:
        """Start auditing ``queue``; idempotent."""
        if id(queue) not in self._queues:
            self._queues[id(queue)] = _QueueAccount()
            queue.sanitizer = self

    def _account(self, queue: "Queue") -> _QueueAccount:
        account = self._queues.get(id(queue))
        if account is None:  # queue attached without watch_queue()
            account = _QueueAccount()
            self._queues[id(queue)] = account
        return account

    def _check_queue(self, queue: "Queue", account: _QueueAccount) -> None:
        self.checks_performed += 1
        occupancy = queue.occupancy_bytes
        expected = account.bytes_in - account.bytes_out - account.bytes_dropped
        if occupancy != expected:
            self._fail(
                type(queue).__name__,
                "byte conservation violated: "
                f"occupancy={occupancy} but in-out-dropped="
                f"{account.bytes_in}-{account.bytes_out}-{account.bytes_dropped}"
                f"={expected}",
            )
        if occupancy < 0:
            self._fail(type(queue).__name__, f"negative occupancy {occupancy}")
        if occupancy > queue.capacity_bytes:
            self._fail(
                type(queue).__name__,
                f"occupancy {occupancy} exceeds capacity {queue.capacity_bytes}",
            )

    def on_enqueue(self, queue: "Queue", packet: "Packet") -> None:
        account = self._account(queue)
        account.bytes_in += packet.size
        self._check_queue(queue, account)

    def on_dequeue(self, queue: "Queue", packet: "Packet") -> None:
        account = self._account(queue)
        account.bytes_out += packet.size
        self._check_queue(queue, account)

    def on_queue_drop(self, queue: "Queue", packet: "Packet") -> None:
        """A packet already *inside* the queue was dropped (AQM head drop)."""
        account = self._account(queue)
        account.bytes_dropped += packet.size
        self._check_queue(queue, account)

    def on_reject(self, queue: "Queue", packet: "Packet") -> None:
        """An arrival was refused admission; occupancy must be unchanged."""
        self._check_queue(queue, self._account(queue))

    # ------------------------------------------------------------------
    # Link hooks
    # ------------------------------------------------------------------

    def on_link_finish(self, link: "Link", packet: "Packet") -> None:
        """A transmit completion fired on ``link`` for ``packet``."""
        self.checks_performed += 1
        if not link.busy:
            self._fail(
                "Link",
                f"transmit completion for flow {packet.flow_id} while link idle",
                flow_id=packet.flow_id,
            )
        account = self._queues.get(id(link.queue))
        if account is not None and link.transmitted_bytes > account.bytes_out:
            self._fail(
                "Link",
                f"transmitted {link.transmitted_bytes} bytes but queue only "
                f"released {account.bytes_out}",
            )

    # ------------------------------------------------------------------
    # TCP sender hooks
    # ------------------------------------------------------------------

    def check_sender(self, sender: "TcpSender") -> None:
        """Full scoreboard audit after an ACK or RTO was processed."""
        self.checks_performed += 1
        flow = sender.flow_id
        cwnd = sender.cca.cwnd
        if math.isnan(cwnd) or cwnd < 1.0 - _CLOCK_SLACK:
            self._fail(
                "TcpSender",
                f"cwnd {cwnd!r} below 1 MSS after {type(sender.cca).__name__} decision",
                flow_id=flow,
            )
        if sender.snd_una > sender.snd_nxt:
            self._fail(
                "TcpSender",
                f"snd_una {sender.snd_una} ahead of snd_nxt {sender.snd_nxt}",
                flow_id=flow,
            )
        if sender.sacked_out < 0 or sender.lost_out < 0 or sender.retrans_out < 0:
            self._fail(
                "TcpSender",
                "negative scoreboard counter: "
                f"sacked_out={sender.sacked_out} lost_out={sender.lost_out} "
                f"retrans_out={sender.retrans_out}",
                flow_id=flow,
            )
        for name, rangeset in (
            ("sacked", sender._sacked),
            ("lost", sender._lost),
            ("covered", sender._covered),
        ):
            problem = rangeset.consistency_error()
            if problem is not None:
                self._fail(
                    "TcpSender", f"{name} RangeSet corrupt: {problem}", flow_id=flow
                )
        for lo, hi in sender._sacked:
            if not sender._covered.covers(lo, hi):
                self._fail(
                    "TcpSender",
                    f"sacked range [{lo}, {hi}) not in covered set",
                    flow_id=flow,
                )
        for lo, hi in sender._lost:
            if not sender._covered.covers(lo, hi):
                self._fail(
                    "TcpSender",
                    f"lost range [{lo}, {hi}) not in covered set",
                    flow_id=flow,
                )


def maybe_sanitizer(sim: "Simulator", sanitize: Optional[bool]) -> Optional[SimSanitizer]:
    """Resolve the ``sanitize`` constructor argument against the env toggle."""
    if sanitize is None:
        sanitize = sanitize_enabled_from_env()
    return SimSanitizer(sim) if sanitize else None


__all__ = [
    "SanitizerError",
    "SimSanitizer",
    "maybe_sanitizer",
    "sanitize_enabled_from_env",
]
