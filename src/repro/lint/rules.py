"""Domain-specific AST lint rules for simulation code.

Each rule has a stable code (``RPR001``...) and targets a class of
mistake that silently corrupts at-scale measurements:

========  =============================================================
RPR001    Wall-clock call (``time.time``, ``time.perf_counter``,
          ``datetime.now``, ...) — simulation code must read the
          virtual clock (``sim.now``), never the host clock.
RPR002    Unseeded randomness — module-level ``random.*`` functions use
          the shared global RNG, and a bare ``random.Random()`` seeds
          from the OS; both make runs irreproducible.
RPR003    Float ``==`` / ``!=`` on a simulated-time expression —
          accumulated float error makes exact time comparison a latent
          heisenbug; use an ordering guard or a ``None`` sentinel.
RPR004    Iteration over a ``set``/``dict`` expression whose loop body
          schedules events — set/dict iteration order then feeds event
          ordering (hash-seed dependent for str/object keys).
RPR005    Mutable default argument — shared state across calls.
RPR006    ``schedule``/``schedule_at`` callback arity mismatch — the
          callback cannot accept the supplied ``*args`` and would raise
          ``TypeError`` mid-simulation, possibly hours in.
========  =============================================================

The checker is heuristic by design (no type inference); anything it
cannot resolve it stays silent about, and intentional violations carry
an inline ``# repro-lint: disable=RPRxxx`` with a justification (see
:mod:`repro.lint.runner`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

ALL_CODES = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006")

RULE_SUMMARIES: Dict[str, str] = {
    "RPR001": "wall-clock call in simulation code",
    "RPR002": "unseeded random number generator",
    "RPR003": "float equality on simulated-time expression",
    "RPR004": "unordered set/dict iteration feeds event scheduling",
    "RPR005": "mutable default argument",
    "RPR006": "schedule() callback arity mismatch",
}


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


#: ``module.attr`` suffixes treated as wall-clock reads (RPR001).
_WALL_CLOCK_SUFFIXES = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Module-level ``random.*`` functions that use the global RNG (RPR002).
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
}

#: Identifier shapes that denote simulated-time quantities (RPR003).
_TIME_NAME_RE = re.compile(
    r"(?:^|_)(?:now|time|deadline|delay|sojourn|expiry|rto|timeout)(?:_|$)|_at$|_next$"
)

#: Builtin constructors whose results are unordered or freshly mutable.
_SET_CONSTRUCTORS = {"set", "frozenset"}
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict"}


def _dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name/Attribute expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_time_expr(node: ast.AST) -> bool:
    """Heuristic: does this expression denote a simulated-time value?"""
    ident = _terminal_identifier(node)
    if ident is not None:
        return bool(_TIME_NAME_RE.search(ident))
    if isinstance(node, ast.BinOp):
        return _is_time_expr(node.left) or _is_time_expr(node.right)
    if isinstance(node, ast.Call):
        func_ident = _terminal_identifier(node.func)
        return func_ident is not None and func_ident in ("event_time",)
    return False


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _callback_arity(fn: _FunctionNode, drop_self: bool) -> Tuple[int, Optional[int]]:
    """(min_positional, max_positional or None for *args) of ``fn``."""
    args = fn.args
    positional = list(getattr(args, "posonlyargs", [])) + list(args.args)
    if drop_self and positional:
        positional = positional[1:]
    max_args: Optional[int] = len(positional)
    min_args = len(positional) - len(args.defaults)
    if args.vararg is not None:
        max_args = None
    return max(0, min_args), max_args


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor applying every rule to one module."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        # Enclosing class/function stacks for RPR006 callback resolution.
        self._class_stack: List[ast.ClassDef] = []
        self._scope_stack: List[ast.AST] = []

    # -- plumbing ------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    def check(self, tree: ast.Module) -> List[Finding]:
        self._scope_stack = [tree]
        self.visit(tree)
        return self.findings

    # -- scope tracking ------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        self._check_mutable_defaults(node)
        self._scope_stack.append(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_mutable_defaults(node)
        self.generic_visit(node)

    # -- RPR005: mutable defaults --------------------------------------

    def _check_mutable_defaults(self, node: _FunctionNode) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                           ast.DictComp, ast.SetComp))
            if not mutable and isinstance(default, ast.Call):
                func_ident = _terminal_identifier(default.func)
                mutable = func_ident in _MUTABLE_CONSTRUCTORS
            if mutable:
                self._report(
                    default,
                    "RPR005",
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )

    # -- RPR001 / RPR002 / RPR006: calls -------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            self._check_wall_clock(node, dotted)
            self._check_unseeded_random(node, dotted)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("schedule", "schedule_at")
        ):
            self._check_schedule_arity(node)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, dotted: Tuple[str, ...]) -> None:
        if len(dotted) >= 2 and dotted[-2:] in _WALL_CLOCK_SUFFIXES:
            self._report(
                node,
                "RPR001",
                f"wall-clock call {'.'.join(dotted)}() in simulation code; "
                "use the simulator's virtual clock (sim.now)",
            )

    def _check_unseeded_random(self, node: ast.Call, dotted: Tuple[str, ...]) -> None:
        # Global-RNG module functions: random.random(), np.random.randint(),
        # ... — matches any chain ending ``random.<fn>`` so the numpy
        # global generator is caught too.
        if len(dotted) >= 2 and dotted[-2] == "random" and dotted[-1] in _GLOBAL_RANDOM_FNS:
            self._report(
                node,
                "RPR002",
                f"{'.'.join(dotted)}() uses the process-global RNG; "
                "thread a seeded random.Random instance through instead",
            )
            return
        # Unseeded constructor: random.Random() / Random() with no args.
        if dotted[-1] == "Random" and not node.args and not node.keywords:
            self._report(
                node,
                "RPR002",
                "random.Random() without a seed draws entropy from the OS; "
                "pass an explicit seed",
            )

    def _check_schedule_arity(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            return  # schedule(delay) alone is a TypeError anyway; not ours
        if any(isinstance(a, ast.Starred) for a in node.args):
            return
        callback = node.args[1]
        supplied = len(node.args) - 2
        resolved = self._resolve_callback(callback)
        if resolved is None:
            return
        fn, drop_self = resolved
        # A required keyword-only parameter can never be bound by
        # schedule's positional fan-out.
        required_kwonly = sum(
            1
            for arg, default in zip(fn.args.kwonlyargs, fn.args.kw_defaults)
            if default is None
        )
        min_args, max_args = _callback_arity(fn, drop_self)
        label = getattr(fn, "name", "<lambda>")
        if required_kwonly:
            self._report(
                node,
                "RPR006",
                f"callback {label}() has required keyword-only parameters; "
                "schedule() passes arguments positionally",
            )
            return
        if supplied < min_args or (max_args is not None and supplied > max_args):
            expected = (
                f"{min_args}" if max_args == min_args
                else f"{min_args}..{'*' if max_args is None else max_args}"
            )
            self._report(
                node,
                "RPR006",
                f"callback {label}() takes {expected} positional argument(s) "
                f"but schedule() supplies {supplied}",
            )

    def _resolve_callback(self, node: ast.AST) -> Optional[Tuple[_FunctionNode, bool]]:
        """Find the def for a callback expression, or None if unresolvable.

        Returns ``(function_node, drop_self)``. Only two shapes resolve:
        a bare name visible in an enclosing scope, and ``self.method`` on
        the lexically-enclosing class. Anything else is skipped.
        """
        if isinstance(node, ast.Lambda):
            return node, False
        if isinstance(node, ast.Name):
            for scope in reversed(self._scope_stack):
                body = scope.body if isinstance(scope, (ast.Module, ast.FunctionDef,
                                                        ast.AsyncFunctionDef)) else []
                for stmt in body:
                    if (
                        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == node.id
                    ):
                        return stmt, False
            return None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self._class_stack
        ):
            for stmt in self._class_stack[-1].body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == node.attr
                ):
                    return stmt, True
        return None

    # -- RPR003: float equality on simulated time ----------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_none(lhs) or _is_none(rhs):
                continue
            if _is_time_expr(lhs) or _is_time_expr(rhs):
                self._report(
                    node,
                    "RPR003",
                    "exact float comparison on a simulated-time expression; "
                    "use an ordering guard (<=) or a None sentinel",
                )
                break
        self.generic_visit(node)

    # -- RPR004: unordered iteration feeding scheduling ----------------

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iteration(node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_unordered_iteration(node)
        self.generic_visit(node)

    def _check_unordered_iteration(self, node: Union[ast.For, ast.AsyncFor]) -> None:
        if not self._is_unordered_expr(node.iter):
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("schedule", "schedule_at")
                ):
                    self._report(
                        node,
                        "RPR004",
                        "iterating an unordered set/dict while scheduling events "
                        "makes event order hash-dependent; sort first",
                    )
                    return

    @staticmethod
    def _is_unordered_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func_ident = _terminal_identifier(node.func)
            if func_ident in _SET_CONSTRUCTORS:
                return True
            # dict views: .keys() / .values() / .items()
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("keys", "values", "items")
                and not node.args
            ):
                return True
        return False


def check_module(path: str, tree: ast.Module) -> List[Finding]:
    """Run every rule over one parsed module."""
    return _RuleVisitor(path).check(tree)


__all__ = ["ALL_CODES", "RULE_SUMMARIES", "Finding", "check_module"]
