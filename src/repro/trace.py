"""Result and time-series export.

The paper's analysis pipeline lives off experiment artefacts: per-flow
summaries, queue drop logs, cwnd traces. This module writes those as
CSV/JSON so external tooling (pandas, gnuplot, the paper's own plotting
scripts) can consume them.

- :func:`write_flow_csv` — one row per flow (goodput, loss, halvings…);
- :func:`write_drops_csv` — the bottleneck drop-time series;
- :func:`write_cwnd_csv` — a :class:`~repro.instrumentation.tcpprobe.CwndProbe`
  sample series (tcpprobe's output format, simulator edition);
- :func:`result_to_dict` / :func:`write_result_json` — everything, as
  one JSON document;
- :func:`write_trace_jsonl` / :func:`write_health_json` — structured
  event traces and run-health records (see :mod:`repro.obs.tracing`)
  so degraded runs stay diagnosable after the fact.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from typing import IO, Any, Dict, Iterable, Tuple, Union

from .core.results import ExperimentResult, FlowResult
from .instrumentation.tcpprobe import CwndProbe
from .obs.tracing import health_rows, write_jsonl, write_trace_jsonl

__all__ = [
    "FLOW_FIELDS",
    "write_flow_csv",
    "read_flow_csv",
    "write_drops_csv",
    "write_cwnd_csv",
    "result_to_dict",
    "write_result_json",
    "write_trace_jsonl",
    "write_health_json",
]

PathOrFile = Union[str, IO[str]]

#: The stored FlowResult columns, derived from the dataclass itself so a
#: new field automatically flows into CSV headers and JSON exports (the
#: old hand-maintained tuple was sliced by magic index — ``[:12]`` —
#: and adding a column would have silently corrupted JSON exports).
_FLOW_COLUMNS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(FlowResult)
)
#: Derived per-flow metrics appended after the stored columns.
_DERIVED_COLUMNS: Tuple[str, ...] = ("loss_rate", "halving_rate")

FLOW_FIELDS: Tuple[str, ...] = _FLOW_COLUMNS + _DERIVED_COLUMNS

#: Typed readback schema for :func:`read_flow_csv`. ``measured_rtt`` is
#: optional: an empty cell reads back as ``None``, mirroring the writer.
_INT_FIELDS = frozenset(
    name
    for name in FLOW_FIELDS
    if name
    in (
        "flow_id",
        "delivered_packets",
        "packets_sent",
        "retransmits",
        "halvings",
        "rtos",
        "queue_drops",
        "queue_arrivals",
    )
)
_FLOAT_FIELDS = frozenset(
    ("base_rtt", "goodput_bps", "loss_rate", "halving_rate")
)
_OPTIONAL_FLOAT_FIELDS = frozenset(("measured_rtt",))


def _open(dest: PathOrFile) -> Tuple[IO[str], bool]:
    if isinstance(dest, str):
        return open(dest, "w", newline=""), True
    return dest, False


def write_flow_csv(result: ExperimentResult, dest: PathOrFile) -> None:
    """Write one CSV row per flow with all measured quantities."""
    fh, owned = _open(dest)
    try:
        writer = csv.writer(fh)
        writer.writerow(FLOW_FIELDS)
        for flow in result.flows:
            row = [getattr(flow, field) for field in FLOW_FIELDS]
            writer.writerow(["" if value is None else value for value in row])
    finally:
        if owned:
            fh.close()


def write_drops_csv(result: ExperimentResult, dest: PathOrFile) -> None:
    """Write the bottleneck drop timestamps (one per row)."""
    fh, owned = _open(dest)
    try:
        writer = csv.writer(fh)
        writer.writerow(["drop_time_s"])
        for t in result.drop_times:
            writer.writerow([t])
    finally:
        if owned:
            fh.close()


def write_cwnd_csv(probe: CwndProbe, dest: PathOrFile) -> None:
    """Write a cwnd probe's recorded samples (needs ``record_samples``)."""
    fh, owned = _open(dest)
    try:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "event", "cwnd_packets"])
        for t, kind, cwnd in probe.samples:
            writer.writerow([t, kind, cwnd])
    finally:
        if owned:
            fh.close()


def result_to_dict(result: ExperimentResult, include_drop_times: bool = False) -> Dict[str, Any]:
    """The full result as a JSON-serialisable dictionary."""
    payload = {
        "scenario": dataclasses.asdict(result.scenario),
        "measured_duration": result.measured_duration,
        "utilization": result.utilization,
        "aggregate_goodput_bps": result.aggregate_goodput_bps,
        "aggregate_loss_rate": result.aggregate_loss_rate,
        "total_congestion_events": result.total_congestion_events,
        "queue_drops": result.queue_drops,
        "queue_arrivals": result.queue_arrivals,
        "jfi": result.jfi(),
        "shares": result.shares(),
        "flows": [
            {field: getattr(flow, field) for field in FLOW_FIELDS}
            for flow in result.flows
        ],
    }
    if include_drop_times:
        payload["drop_times"] = list(result.drop_times)
    return payload


def write_result_json(
    result: ExperimentResult, dest: PathOrFile, include_drop_times: bool = False
) -> None:
    """Serialise the full result as a JSON document."""
    fh, owned = _open(dest)
    try:
        json.dump(result_to_dict(result, include_drop_times), fh, indent=2)
        fh.write("\n")
    finally:
        if owned:
            fh.close()


def _coerce_row(row: Dict[str, str]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, raw in row.items():
        value: Any = raw
        if key in _INT_FIELDS:
            value = int(raw)
        elif key in _FLOAT_FIELDS:
            value = float(raw)
        elif key in _OPTIONAL_FLOAT_FIELDS:
            value = None if raw == "" else float(raw)
        out[key] = value
    return out


def read_flow_csv(source: PathOrFile) -> Iterable[Dict[str, Any]]:
    """Read back rows produced by :func:`write_flow_csv`.

    Numeric columns are coerced back to their native types (counters to
    ``int``, rates and RTTs to ``float``); an empty ``measured_rtt``
    cell — written for flows that never completed an RTT sample — reads
    back as ``None``, so a write/read round trip is loss-free.
    """
    if isinstance(source, str):
        with open(source, newline="") as fh:
            yield from [_coerce_row(row) for row in csv.DictReader(fh)]
    else:
        for row in csv.DictReader(source):
            yield _coerce_row(row)


def write_health_json(result: ExperimentResult, dest: PathOrFile) -> None:
    """Write the run's health record and fault timeline as JSONL rows.

    A thin wrapper over :func:`repro.obs.tracing.health_rows` so callers
    that only import :mod:`repro.trace` can still export the degradation
    audit trail next to their CSVs.
    """
    write_jsonl(health_rows(result), dest)
