"""Result and time-series export.

The paper's analysis pipeline lives off experiment artefacts: per-flow
summaries, queue drop logs, cwnd traces. This module writes those as
CSV/JSON so external tooling (pandas, gnuplot, the paper's own plotting
scripts) can consume them.

- :func:`write_flow_csv` — one row per flow (goodput, loss, halvings…);
- :func:`write_drops_csv` — the bottleneck drop-time series;
- :func:`write_cwnd_csv` — a :class:`~repro.instrumentation.tcpprobe.CwndProbe`
  sample series (tcpprobe's output format, simulator edition);
- :func:`result_to_dict` / :func:`write_result_json` — everything, as
  one JSON document.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from typing import IO, Any, Dict, Iterable, Tuple, Union

from .core.results import ExperimentResult
from .instrumentation.tcpprobe import CwndProbe

PathOrFile = Union[str, IO[str]]

FLOW_FIELDS = (
    "flow_id",
    "cca",
    "base_rtt",
    "measured_rtt",
    "goodput_bps",
    "delivered_packets",
    "packets_sent",
    "retransmits",
    "halvings",
    "rtos",
    "queue_drops",
    "queue_arrivals",
    "loss_rate",
    "halving_rate",
)


def _open(dest: PathOrFile) -> Tuple[IO[str], bool]:
    if isinstance(dest, str):
        return open(dest, "w", newline=""), True
    return dest, False


def write_flow_csv(result: ExperimentResult, dest: PathOrFile) -> None:
    """Write one CSV row per flow with all measured quantities."""
    fh, owned = _open(dest)
    try:
        writer = csv.writer(fh)
        writer.writerow(FLOW_FIELDS)
        for flow in result.flows:
            writer.writerow(
                [
                    flow.flow_id,
                    flow.cca,
                    flow.base_rtt,
                    flow.measured_rtt if flow.measured_rtt is not None else "",
                    flow.goodput_bps,
                    flow.delivered_packets,
                    flow.packets_sent,
                    flow.retransmits,
                    flow.halvings,
                    flow.rtos,
                    flow.queue_drops,
                    flow.queue_arrivals,
                    flow.loss_rate,
                    flow.halving_rate,
                ]
            )
    finally:
        if owned:
            fh.close()


def write_drops_csv(result: ExperimentResult, dest: PathOrFile) -> None:
    """Write the bottleneck drop timestamps (one per row)."""
    fh, owned = _open(dest)
    try:
        writer = csv.writer(fh)
        writer.writerow(["drop_time_s"])
        for t in result.drop_times:
            writer.writerow([t])
    finally:
        if owned:
            fh.close()


def write_cwnd_csv(probe: CwndProbe, dest: PathOrFile) -> None:
    """Write a cwnd probe's recorded samples (needs ``record_samples``)."""
    fh, owned = _open(dest)
    try:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "event", "cwnd_packets"])
        for t, kind, cwnd in probe.samples:
            writer.writerow([t, kind, cwnd])
    finally:
        if owned:
            fh.close()


def result_to_dict(result: ExperimentResult, include_drop_times: bool = False) -> Dict[str, Any]:
    """The full result as a JSON-serialisable dictionary."""
    payload = {
        "scenario": dataclasses.asdict(result.scenario),
        "measured_duration": result.measured_duration,
        "utilization": result.utilization,
        "aggregate_goodput_bps": result.aggregate_goodput_bps,
        "aggregate_loss_rate": result.aggregate_loss_rate,
        "total_congestion_events": result.total_congestion_events,
        "queue_drops": result.queue_drops,
        "queue_arrivals": result.queue_arrivals,
        "jfi": result.jfi(),
        "shares": result.shares(),
        "flows": [
            {field: getattr(flow, field) for field in FLOW_FIELDS[:12]}
            | {"loss_rate": flow.loss_rate, "halving_rate": flow.halving_rate}
            for flow in result.flows
        ],
    }
    if include_drop_times:
        payload["drop_times"] = list(result.drop_times)
    return payload


def write_result_json(
    result: ExperimentResult, dest: PathOrFile, include_drop_times: bool = False
) -> None:
    """Serialise the full result as a JSON document."""
    fh, owned = _open(dest)
    try:
        json.dump(result_to_dict(result, include_drop_times), fh, indent=2)
        fh.write("\n")
    finally:
        if owned:
            fh.close()


def read_flow_csv(source: PathOrFile) -> Iterable[dict]:
    """Read back rows produced by :func:`write_flow_csv` as dicts."""
    if isinstance(source, str):
        with open(source, newline="") as fh:
            yield from list(csv.DictReader(fh))
    else:
        yield from csv.DictReader(source)
