"""Bounded-memory metrics primitives for at-scale runs.

5000-flow CoreScale runs produce millions of observable events; keeping
an O(events) sample list per flow (what the pre-observability
``FlowMonitor``/``CwndProbe`` did) exhausts memory long before the
interesting regime. This module provides the four primitives dense
instrumentation needs, each with a hard memory bound:

- :class:`Counter` / :class:`Gauge` — O(1) scalars;
- :class:`Histogram` — fixed bucket boundaries, O(buckets) forever;
- :class:`TimeSeries` — a decimating ring buffer: when the buffer
  fills, every other retained sample is dropped and the accept stride
  doubles, so an arbitrarily long run keeps at most ``capacity``
  uniformly thinned samples. Deterministic (no RNG, no wall clock).

A :class:`MetricsRegistry` names and owns instances so exporters can
walk everything that was recorded (``to_json``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount

    def to_json(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_json(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


#: Default histogram bucket upper bounds: powers of two from 1 up —
#: suited to packet/window counts; pass explicit bounds for times.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0 ** i for i in range(16))


class Histogram:
    """Fixed-bound bucketed distribution with O(buckets) memory.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything above the last edge. Count, sum, min and
    max are tracked exactly; quantiles are answered to bucket precision.
    """

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(bounds)
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if any(nxt <= prev for nxt, prev in zip(ordered[1:], ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left finds the first inclusive upper edge >= value;
        # values above the last edge land in the overflow bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-precision quantile: the upper edge of the bucket that
        contains the q-th sample (the exact max for the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                break
        assert self.max is not None
        return self.max

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class TimeSeries:
    """A bounded ``(time, value)`` series with automatic decimation.

    Appends are O(1) amortised. The series accepts every ``stride``-th
    append; when ``capacity`` retained samples accumulate, every other
    one is dropped and the stride doubles. The result is a uniform
    thinning: memory never exceeds ``capacity`` samples while coverage
    always spans the whole run.

    ``stride`` starts at the configured ``decimation`` (default 1 =
    keep everything until the first compaction), so a caller that knows
    its event rate can pre-thin cheaply.
    """

    def __init__(self, capacity: int = 1024, decimation: int = 1) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        if decimation < 1:
            raise ValueError("decimation must be >= 1")
        self.capacity = capacity
        self.stride = decimation
        self.offered = 0
        self.times: List[float] = []
        self.values: List[Any] = []

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: float, value: Any) -> bool:
        """Offer one sample; returns True if it was retained."""
        index = self.offered
        self.offered += 1
        if index % self.stride:
            return False
        self.times.append(time)
        self.values.append(value)
        if len(self.times) >= self.capacity:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self.stride *= 2
        return True

    def items(self) -> List[Tuple[float, Any]]:
        return list(zip(self.times, self.values))

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "timeseries",
            "offered": self.offered,
            "stride": self.stride,
            "times": list(self.times),
            "values": list(self.values),
        }


class MetricsRegistry:
    """Named home for a run's metrics; get-or-create semantics.

    ``registry.counter("drops")`` returns the same :class:`Counter` on
    every call, so independent subscribers can share instruments without
    coordination. Asking for an existing name with a different kind
    raises — silent type confusion is how metrics go wrong.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, factory: Any) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)  # type: ignore[no-any-return]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)  # type: ignore[no-any-return]

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[no-any-return]
            name, Histogram, lambda: Histogram(bounds)
        )

    def timeseries(
        self, name: str, capacity: int = 1024, decimation: int = 1
    ) -> TimeSeries:
        return self._get_or_create(  # type: ignore[no-any-return]
            name, TimeSeries, lambda: TimeSeries(capacity, decimation)
        )

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Any:
        return self._metrics[name]

    def to_json(self) -> Dict[str, Any]:
        return {name: self._metrics[name].to_json() for name in self.names()}
