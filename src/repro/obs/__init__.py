"""Observability: event bus, metrics, profiler, structured traces.

The measurement layer the paper's analysis rides on (DESIGN.md §10):

- :class:`EventBus` — multi-subscriber typed topics replacing the old
  single-slot ``cwnd_listener``/``drop_listener`` hooks;
- :class:`MetricsRegistry` — counters, gauges, bounded histograms and
  decimating ring-buffer time series (O(1) memory per metric);
- :class:`SimProfiler` — per-handler event counts and wall time,
  guaranteed not to perturb results;
- :class:`TraceRecorder` — bounded structured event capture with JSONL
  export, including run-health/fault timelines for degraded runs.
"""

from __future__ import annotations

from .bus import TOPICS, EventBus
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from .profiler import HandlerProfile, SimProfiler, handler_name
from .tracing import (
    DEFAULT_TOPICS,
    TraceRecorder,
    health_rows,
    read_jsonl,
    write_jsonl,
    write_trace_jsonl,
)

__all__ = [
    "TOPICS",
    "EventBus",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "SimProfiler",
    "HandlerProfile",
    "handler_name",
    "DEFAULT_TOPICS",
    "TraceRecorder",
    "health_rows",
    "write_jsonl",
    "write_trace_jsonl",
    "read_jsonl",
]
