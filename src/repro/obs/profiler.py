"""Simulation profiler: where do the events — and the wall time — go?

The event loop executes millions of callbacks per simulated second;
knowing *which* handlers dominate (ACK processing? pacing timers?
monitor ticks?) is how the PR-3 event budget gets spent wisely. The
:class:`SimProfiler` hooks :meth:`repro.sim.engine.Simulator.run`'s
per-event dispatch and aggregates, per handler (identified by its
qualified name):

- event count, and
- cumulative wall-clock time spent inside the handler.

Determinism contract
--------------------
Profiling must never change simulation *results*. The profiler reads
the host clock (the one thing simulation code is forbidden to do —
hence the scoped lint suppression below), but everything it measures
stays in the profiler: no RNG draws, no event scheduling, no result
fields. ``run_experiment(profiler=...)`` therefore produces a
byte-identical :class:`~repro.core.results.ExperimentResult` to an
unprofiled run — a tier-1 test and the CI obs-smoke job both assert
it.

Surfaced via ``repro profile <args>`` and ``repro run --profile``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class HandlerProfile:
    """Aggregated cost of one event handler."""

    __slots__ = ("name", "count", "wall_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall_seconds = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "wall_seconds": self.wall_seconds,
        }


def handler_name(fn: Callable[..., Any]) -> str:
    """A stable label for an event callback (its qualified name)."""
    name = getattr(fn, "__qualname__", None)
    if name:
        return str(name)
    return type(fn).__name__


class SimProfiler:
    """Per-event-type counters and wall-time accounting for one run.

    Install on a simulator with :meth:`install` (or pass
    ``profiler=`` to ``run_experiment``); the engine then brackets
    every callback with :meth:`clock` reads and reports each execution
    through :meth:`record`.
    """

    #: Host-clock source used to bracket handlers. Wall-clock reads are
    #: banned in simulation code (RPR001) — the profiler is the audited
    #: exception (held as a reference, called only from the engine's
    #: profiling branch), and its measurements never feed back into the
    #: run.
    clock = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        self._handlers: Dict[str, HandlerProfile] = {}
        self.events = 0
        self.wall_seconds = 0.0

    def install(self, sim: Any) -> "SimProfiler":
        """Attach to a simulator (its loop starts reporting here)."""
        sim.profiler = self
        return self

    def record(self, fn: Callable[..., Any], elapsed: float) -> None:
        """Fold one handler execution into the aggregates."""
        name = handler_name(fn)
        profile = self._handlers.get(name)
        if profile is None:
            profile = self._handlers[name] = HandlerProfile(name)
        profile.count += 1
        profile.wall_seconds += elapsed
        self.events += 1
        self.wall_seconds += elapsed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def handlers(self) -> List[HandlerProfile]:
        """All handler profiles, most expensive (by wall time) first;
        ties broken by name so the report order is stable."""
        return sorted(
            self._handlers.values(), key=lambda h: (-h.wall_seconds, h.name)
        )

    def events_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events / self.wall_seconds

    def to_json(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "handlers": [h.to_json() for h in self.handlers()],
        }

    def report(self, top: Optional[int] = None) -> str:
        """A human-readable profile table."""
        handlers = self.handlers()
        shown = handlers if top is None else handlers[:top]
        width = max([len(h.name) for h in shown], default=7)
        lines = [
            f"profile: {self.events} events in {self.wall_seconds:.3f}s wall "
            f"({self.events_per_second() / 1e3:.0f}k ev/s)",
            f"  {'handler':{width}s}  {'count':>10s}  {'wall':>9s}  {'share':>6s}  {'each':>8s}",
        ]
        for h in shown:
            share = h.wall_seconds / self.wall_seconds if self.wall_seconds else 0.0
            each = h.wall_seconds / h.count if h.count else 0.0
            lines.append(
                f"  {h.name:{width}s}  {h.count:10d}  {h.wall_seconds:8.3f}s "
                f" {share:6.1%}  {each * 1e6:6.1f}us"
            )
        if top is not None and len(handlers) > top:
            lines.append(f"  ... and {len(handlers) - top} more handler(s)")
        return "\n".join(lines)
