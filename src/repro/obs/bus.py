"""Multi-subscriber event bus for simulation observability.

The instrumentation hooks on core components (``TcpSender.cwnd_listener``,
``Queue.drop_listener``) were single-slot: attaching a second observer
silently clobbered the first, so a cwnd probe, a stall watchdog and a
metrics sampler could not watch the same sender at once. The
:class:`EventBus` replaces that pattern with typed topics and *ordered*
subscriber lists — observers subscribe to the bus, and the bus installs
exactly one forwarding callback per observed component (through the
components' ``add_*_listener`` chaining hooks, so direct listeners still
coexist).

Topics and payloads (every subscriber receives ``fn(now, *payload)``):

========  ==========================================  =================
topic     payload after ``now``                       source
========  ==========================================  =================
cwnd      ``flow_id, kind, cwnd``                     :meth:`bind_sender`
loss      ``flow_id, cwnd`` (fast-recovery entries)   :meth:`bind_sender`
rto       ``flow_id, cwnd`` (retransmission timeouts) :meth:`bind_sender`
enqueue   ``packet``                                  :meth:`bind_queue`
drop      ``packet``                                  :meth:`bind_queue`
fault     ``description`` (injector audit trail)      :meth:`publish`
========  ==========================================  =================

Design notes
------------
- **Zero-overhead fast path.** Components test their (list-valued)
  listener hooks for emptiness before computing any payload; an
  unobserved sender or queue pays a single truthiness check per event.
  Within the bus, dispatch loops iterate pre-resolved subscriber lists,
  so an idle topic costs one empty-loop setup per event on a *bound*
  component and nothing at all on an unbound one.
- **Per-flow subscriptions.** ``subscribe(topic, fn, flow=fid)``
  delivers only that flow's events. At 5000-flow CoreScale this keeps
  per-flow observers O(1) per event instead of O(flows) filtering.
- **Ordering.** Subscribers fire in subscription order, wildcard
  (``flow=None``) subscribers before per-flow ones — deterministic, and
  part of the run's reproducibility contract.
- Observers must not mutate simulation state; the bus is a read-only
  tap and byte-identical results with and without subscribers attached
  is an invariant the CI obs-smoke job enforces.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

#: The closed set of event topics.
TOPICS: Tuple[str, ...] = ("cwnd", "loss", "rto", "enqueue", "drop", "fault")

#: A bus subscriber: called as ``fn(now, *payload)`` (see module table).
Subscriber = Callable[..., None]


class _SenderLike(Protocol):
    """What :meth:`EventBus.bind_sender` needs from a sender."""

    flow_id: int

    def add_cwnd_listener(
        self, fn: Callable[[float, str, float], None], ack_events: bool = ...
    ) -> Callable[[float, str, float], None]: ...

    def enable_ack_events(self, fn: Callable[[float, str, float], None]) -> None: ...


class _QueueLike(Protocol):
    """What :meth:`EventBus.bind_queue` needs from a queue."""

    def add_enqueue_listener(
        self, fn: Callable[[float, Any], None]
    ) -> Callable[[float, Any], None]: ...

    def add_drop_listener(
        self, fn: Callable[[float, Any], None]
    ) -> Callable[[float, Any], None]: ...


class EventBus:
    """Typed-topic publish/subscribe hub for one simulation run."""

    def __init__(self) -> None:
        # Keyed by (topic, flow): flow=None is the wildcard list. Lists
        # are created once and captured by identity in forwarders, so
        # subscribing after a component is bound still takes effect.
        self._subs: Dict[Tuple[str, Optional[int]], List[Subscriber]] = {}
        # Senders bound via bind_sender, with their installed forwarder.
        # Needed so a cwnd subscription arriving *after* the bind can
        # upgrade the forwarder to per-ACK delivery (see bind_sender).
        self._bound_senders: List[Tuple[_SenderLike, Callable[[float, str, float], None]]] = []

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------

    def _list(self, topic: str, flow: Optional[int] = None) -> List[Subscriber]:
        if topic not in TOPICS:
            known = ", ".join(TOPICS)
            raise ValueError(f"unknown topic {topic!r}; known topics: {known}")
        return self._subs.setdefault((topic, flow), [])

    def subscribe(
        self, topic: str, fn: Subscriber, flow: Optional[int] = None
    ) -> Subscriber:
        """Append ``fn`` to a topic's ordered subscriber list.

        ``flow`` restricts delivery to one flow's events (topics that
        carry a flow id); ``None`` subscribes to every flow. Returns
        ``fn`` so the handle can be kept for :meth:`unsubscribe`.
        """
        self._list(topic, flow).append(fn)
        if topic == "cwnd":
            # Senders bound before any cwnd subscriber existed were
            # installed without per-ACK delivery; upgrade them now so
            # the late-subscription contract still holds.
            for sender, forward in self._bound_senders:
                if flow is None or sender.flow_id == flow:
                    try:
                        sender.enable_ack_events(forward)
                    except ValueError:
                        continue  # forwarder was detached from this sender
        return fn

    def unsubscribe(
        self, topic: str, fn: Subscriber, flow: Optional[int] = None
    ) -> None:
        """Remove a previously subscribed callback (ValueError if absent)."""
        self._list(topic, flow).remove(fn)

    def subscribers(self, topic: str, flow: Optional[int] = None) -> Tuple[Subscriber, ...]:
        """The current subscriber list (a snapshot), in dispatch order."""
        return tuple(self._subs.get((topic, flow), ()))

    def has_subscribers(self, topic: str) -> bool:
        """True if *any* subscription (wildcard or per-flow) targets ``topic``."""
        return any(
            key[0] == topic and subs for key, subs in self._subs.items()
        )

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(self, topic: str, now: float, *payload: Any) -> None:
        """Deliver an event to a topic's wildcard subscribers.

        Sources without a flow identity (the fault injector) publish
        here directly; sender/queue events go through the bound
        forwarders installed by :meth:`bind_sender` / :meth:`bind_queue`.
        """
        for fn in self._list(topic):
            fn(now, *payload)

    # ------------------------------------------------------------------
    # Component binding
    # ------------------------------------------------------------------

    def bind_sender(self, sender: _SenderLike) -> Callable[[float, str, float], None]:
        """Forward one sender's cwnd events onto ``cwnd``/``loss``/``rto``.

        Installs a single chained listener on the sender (coexisting
        with any directly attached listeners) and returns it so callers
        can later ``sender.remove_cwnd_listener`` it.

        The forwarder is installed with per-ACK delivery only when a
        ``cwnd`` subscription (wildcard or for this flow) already
        exists; otherwise the sender's zero-listener fast path skips
        the bus entirely on the per-ACK hot path, and only the rare
        kinds (``loss_event``/``rto``/``recovery_exit``) flow through.
        A ``cwnd`` subscription arriving later upgrades the forwarder
        (see :meth:`subscribe`), preserving the late-subscription
        contract.
        """
        fid = sender.flow_id
        cwnd_all = self._list("cwnd")
        cwnd_one = self._list("cwnd", fid)
        loss_all = self._list("loss")
        loss_one = self._list("loss", fid)
        rto_all = self._list("rto")
        rto_one = self._list("rto", fid)

        def forward(now: float, kind: str, cwnd: float) -> None:
            for fn in cwnd_all:
                fn(now, fid, kind, cwnd)
            for fn in cwnd_one:
                fn(now, fid, kind, cwnd)
            if kind == "loss_event":
                for fn in loss_all:
                    fn(now, fid, cwnd)
                for fn in loss_one:
                    fn(now, fid, cwnd)
            elif kind == "rto":
                for fn in rto_all:
                    fn(now, fid, cwnd)
                for fn in rto_one:
                    fn(now, fid, cwnd)

        wants_acks = bool(cwnd_all or cwnd_one)
        sender.add_cwnd_listener(forward, ack_events=wants_acks)
        self._bound_senders.append((sender, forward))
        return forward

    def bind_queue(
        self, queue: _QueueLike
    ) -> Tuple[Callable[[float, Any], None], Callable[[float, Any], None]]:
        """Forward a queue's arrivals/drops onto ``enqueue``/``drop``.

        Returns the two installed listeners ``(enqueue, drop)``.
        """
        enqueue_subs = self._list("enqueue")
        drop_subs = self._list("drop")

        def forward_enqueue(now: float, packet: Any) -> None:
            for fn in enqueue_subs:
                fn(now, packet)

        def forward_drop(now: float, packet: Any) -> None:
            for fn in drop_subs:
                fn(now, packet)

        queue.add_enqueue_listener(forward_enqueue)
        queue.add_drop_listener(forward_drop)
        return forward_enqueue, forward_drop
