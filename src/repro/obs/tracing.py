"""Structured event traces: JSONL export for post-hoc diagnosis.

When a 5000-flow run degrades — the watchdog truncates it, a fault
schedule bites harder than expected — the summary numbers say *that*
something went wrong but not *when* or *to whom*. The
:class:`TraceRecorder` subscribes to an :class:`~repro.obs.bus.EventBus`
and keeps a structured, bounded record of every published event, then
writes it as JSON Lines (one event object per line) so external tools
(``jq``, pandas) can reconstruct the run's timeline.

Event rows share a common shape::

    {"t": <sim time>, "topic": "cwnd", "flow": 3, "kind": "loss_event", "cwnd": 12.0}
    {"t": <sim time>, "topic": "drop", "flow": 7, "seq": 1412}
    {"t": <sim time>, "topic": "fault", "desc": "link down"}

:func:`health_rows` renders a result's :class:`~repro.core.results.
RunHealth` record (and its fault timeline) in the same row format, so a
single JSONL file can carry the whole story of a degraded run — the
``repro run --trace FILE`` CLI path appends it automatically.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .bus import TOPICS, EventBus

PathOrFile = Union[str, IO[str]]

#: Topics a recorder captures by default. ``loss``/``rto`` are
#: projections of ``cwnd`` events, so recording all three would store
#: every loss twice; the default set is complete without duplication.
DEFAULT_TOPICS: Tuple[str, ...] = ("cwnd", "enqueue", "drop", "fault")


class TraceRecorder:
    """Records bus events as structured rows, with a hard memory cap.

    Parameters
    ----------
    bus:
        The event bus to tap. Subscriptions are installed immediately.
    topics:
        Which topics to record (default: :data:`DEFAULT_TOPICS`).
    max_events:
        Retain at most this many rows; further events are counted in
        ``dropped_events`` but not stored (the cap keeps full tracing
        safe on CoreScale runs). ``None`` means unbounded.
    start_time:
        Events before this simulated time are ignored (warm-up cut).
    """

    def __init__(
        self,
        bus: EventBus,
        topics: Sequence[str] = DEFAULT_TOPICS,
        max_events: Optional[int] = None,
        start_time: float = 0.0,
    ) -> None:
        unknown = [t for t in topics if t not in TOPICS]
        if unknown:
            raise ValueError(f"unknown topics: {unknown}; known: {list(TOPICS)}")
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive")
        self.topics = tuple(topics)
        self.max_events = max_events
        self.start_time = start_time
        self.events: List[Dict[str, Any]] = []
        self.dropped_events = 0
        for topic in self.topics:
            if topic in ("cwnd",):
                bus.subscribe(topic, self._on_cwnd)
            elif topic in ("loss", "rto"):
                bus.subscribe(topic, self._make_flow_cwnd_handler(topic))
            elif topic in ("enqueue", "drop"):
                bus.subscribe(topic, self._make_packet_handler(topic))
            else:  # fault
                bus.subscribe(topic, self._on_fault)

    # ------------------------------------------------------------------
    # Handlers (one per payload shape)
    # ------------------------------------------------------------------

    def _record(self, row: Dict[str, Any]) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(row)

    def _on_cwnd(self, now: float, flow_id: int, kind: str, cwnd: float) -> None:
        if now < self.start_time:
            return
        self._record(
            {"t": now, "topic": "cwnd", "flow": flow_id, "kind": kind, "cwnd": cwnd}
        )

    def _make_flow_cwnd_handler(self, topic: str) -> Any:
        def handler(now: float, flow_id: int, cwnd: float) -> None:
            if now < self.start_time:
                return
            self._record({"t": now, "topic": topic, "flow": flow_id, "cwnd": cwnd})

        return handler

    def _make_packet_handler(self, topic: str) -> Any:
        def handler(now: float, packet: Any) -> None:
            if now < self.start_time:
                return
            self._record(
                {
                    "t": now,
                    "topic": topic,
                    "flow": packet.flow_id,
                    "seq": packet.seq,
                }
            )

        return handler

    def _on_fault(self, now: float, description: str) -> None:
        # Fault events are never warm-up-cut: the whole point of the
        # trace is explaining what the injector did to the run.
        self._record({"t": now, "topic": "fault", "desc": description})

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for row in self.events:
            counts[row["topic"]] = counts.get(row["topic"], 0) + 1
        return {
            "recorded": len(self.events),
            "dropped": self.dropped_events,
            "by_topic": counts,
        }


def health_rows(result: Any) -> List[Dict[str, Any]]:
    """A result's health record and fault timeline as trace rows.

    Returns an empty list for results without a health record, so
    callers can append unconditionally.
    """
    health = getattr(result, "health", None)
    if health is None:
        return []
    rows: List[Dict[str, Any]] = [
        {
            "topic": "health",
            "ok": health.ok,
            "reason": health.reason,
            "truncated_at": health.truncated_at,
            "stalled_flows": list(health.stalled_flows),
        }
    ]
    for t, desc in health.fault_timeline:
        rows.append({"t": t, "topic": "fault", "desc": desc})
    return rows


def _open(dest: PathOrFile) -> Tuple[IO[str], bool]:
    if isinstance(dest, str):
        return open(dest, "w", newline=""), True
    return dest, False


def write_jsonl(rows: Iterable[Dict[str, Any]], dest: PathOrFile) -> int:
    """Write rows as JSON Lines; returns the number of rows written."""
    fh, owned = _open(dest)
    written = 0
    try:
        for row in rows:
            json.dump(row, fh, separators=(",", ":"))
            fh.write("\n")
            written += 1
    finally:
        if owned:
            fh.close()
    return written


def write_trace_jsonl(
    recorder: TraceRecorder, dest: PathOrFile, result: Any = None
) -> int:
    """Write a recorder's events — plus, when ``result`` is given, its
    health/fault rows — as one JSONL document. Returns rows written."""
    rows: List[Dict[str, Any]] = list(recorder.events)
    if result is not None:
        rows.extend(health_rows(result))
    return write_jsonl(rows, dest)


def read_jsonl(source: PathOrFile) -> List[Dict[str, Any]]:
    """Read back a JSONL trace as a list of row dicts."""
    if isinstance(source, str):
        with open(source, newline="") as fh:
            return [json.loads(line) for line in fh if line.strip()]
    return [json.loads(line) for line in source if line.strip()]
