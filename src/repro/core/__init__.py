"""Experiment core: scenarios, runner, results, sweeps."""

from __future__ import annotations

from .experiment import default_event_budget, run_experiment
from .results import ExperimentResult, FlowResult, RunHealth
from .scenarios import (
    CORE_FLOW_COUNTS,
    DEFAULT_CORE_SCALE,
    EDGE_FLOW_COUNTS,
    RTT_SWEEP,
    FlowGroup,
    Scenario,
    competition,
    core_scale,
    edge_scale,
)
from .sweep import run_sweep

__all__ = [
    "Scenario",
    "FlowGroup",
    "edge_scale",
    "core_scale",
    "competition",
    "run_experiment",
    "run_sweep",
    "default_event_budget",
    "ExperimentResult",
    "FlowResult",
    "RunHealth",
    "EDGE_FLOW_COUNTS",
    "CORE_FLOW_COUNTS",
    "RTT_SWEEP",
    "DEFAULT_CORE_SCALE",
]
