"""Scenario definitions: the paper's EdgeScale and CoreScale settings.

A :class:`Scenario` is a declarative, picklable description of one
experiment: bottleneck, buffer, flow groups (CCA x count x RTT),
durations and seed. The presets mirror the paper's §3.1:

- **EdgeScale** — 100 Mbps bottleneck, 2-50 flows, 3 MB buffer;
- **CoreScale** — 10 Gbps bottleneck, 1000-5000 flows, 375 MB buffer
  (~1 BDP at an assumed maximum RTT of 200 ms).

Because packet-level simulation of the full CoreScale point is
impractical in pure Python, :func:`core_scale` takes a ``scale`` divisor
applied to both bandwidth and flow count, preserving the per-flow fair
share and the buffer-per-BDP ratio — the two dimensionless quantities
the paper identifies as the operative variables (see DESIGN.md §3).
``scale=1`` gives the paper's literal parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..faults.schedule import FaultEvent
from ..units import bdp_bytes, gbps, mbps, megabytes

#: Flow-count sweep points from the paper.
EDGE_FLOW_COUNTS = (10, 30, 50)
CORE_FLOW_COUNTS = (1000, 3000, 5000)
#: RTT sweep points from the fairness figures.
RTT_SWEEP = (0.020, 0.100, 0.200)

#: Default scale divisor for CoreScale runs (10 Gbps/25 = 400 Mbps,
#: 1000-5000 flows -> 40-200 flows; per-flow share preserved).
DEFAULT_CORE_SCALE = 25


@dataclass(frozen=True)
class FlowGroup:
    """A set of identical flows: CCA name, flow count, base RTT."""

    cca: str
    count: int
    rtt: float = 0.020

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("flow count must be >= 1")
        if self.rtt <= 0:
            raise ValueError("rtt must be positive")


@dataclass(frozen=True)
class Scenario:
    """A complete, reproducible experiment description."""

    name: str
    bottleneck_bw_bps: float
    buffer_bytes: int
    groups: Tuple[FlowGroup, ...]
    duration: float = 30.0
    warmup: float = 8.0
    stagger_max: float = 5.0
    seed: int = 1
    delayed_ack: bool = True
    use_red_queue: bool = False
    #: ACK-path netem jitter as a fraction of each flow's base RTT.
    #: Breaks the drop-tail phase-locking a deterministic simulator
    #: otherwise exhibits (physical testbeds desynchronise naturally).
    ack_jitter_fraction: float = 0.02
    #: Deterministic fault schedule applied during the run (see
    #: :mod:`repro.faults`). Part of the scenario — and therefore of the
    #: run-store cache key — because faults change the result. An empty
    #: tuple is omitted from the canonical key form so unfaulted
    #: scenarios keep their pre-fault-subsystem cache keys.
    faults: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.bottleneck_bw_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.buffer_bytes <= 0:
            raise ValueError("buffer must be positive")
        if not self.groups:
            raise ValueError("at least one flow group is required")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("require 0 <= warmup < duration")
        if self.stagger_max < 0:
            raise ValueError("stagger_max must be non-negative")
        if not 0.0 <= self.ack_jitter_fraction < 1.0:
            raise ValueError("ack_jitter_fraction must be in [0, 1)")
        for event in self.faults:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"faults must be FaultEvent instances, got {event!r}")
            if event.time >= self.duration:
                raise ValueError(
                    f"fault {event.describe()!r} starts at t={event.time:g}s, "
                    f"beyond the {self.duration:g}s run"
                )

    @property
    def total_flows(self) -> int:
        return sum(g.count for g in self.groups)

    @property
    def buffer_bdp_fraction(self) -> float:
        """Buffer size in units of the 200 ms-BDP the paper sizes against."""
        return self.buffer_bytes / bdp_bytes(self.bottleneck_bw_bps, 0.200)

    def with_overrides(self, **kwargs) -> "Scenario":
        """A copy of this scenario with some fields replaced."""
        return replace(self, **kwargs)


def edge_scale(
    flows: int = 10,
    cca: str = "newreno",
    rtt: float = 0.020,
    duration: float = 30.0,
    warmup: float = 8.0,
    seed: int = 1,
) -> Scenario:
    """The paper's EdgeScale: 100 Mbps, 3 MB drop-tail buffer."""
    return Scenario(
        name=f"edge-{cca}-{flows}f-{int(rtt * 1000)}ms",
        bottleneck_bw_bps=mbps(100),
        buffer_bytes=megabytes(3),
        groups=(FlowGroup(cca, flows, rtt),),
        duration=duration,
        warmup=warmup,
        stagger_max=min(5.0, warmup * 0.6),
        seed=seed,
    )


def core_scale(
    flows: int = 1000,
    cca: str = "newreno",
    rtt: float = 0.020,
    scale: int = DEFAULT_CORE_SCALE,
    duration: float = 30.0,
    warmup: float = 8.0,
    seed: int = 1,
) -> Scenario:
    """The paper's CoreScale: 10 Gbps, 375 MB buffer — divided by ``scale``.

    ``flows`` is the paper's flow count (1000-5000); the scenario runs
    ``flows // scale`` flows on a ``10 Gbps / scale`` link with a
    1-BDP-at-200 ms buffer of the scaled link, keeping per-flow share
    and buffer/BDP identical to the paper's operating point.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if flows % scale:
        raise ValueError(f"flows={flows} not divisible by scale={scale}")
    bw = gbps(10) / scale
    return Scenario(
        name=f"core-{cca}-{flows}f-{int(rtt * 1000)}ms-s{scale}",
        bottleneck_bw_bps=bw,
        buffer_bytes=bdp_bytes(bw, 0.200),
        groups=(FlowGroup(cca, flows // scale, rtt),),
        duration=duration,
        warmup=warmup,
        stagger_max=min(5.0, warmup * 0.6),
        seed=seed,
    )


def competition(
    base: Scenario,
    groups: Tuple[FlowGroup, ...],
    name: str,
) -> Scenario:
    """Replace a scenario's flow groups (for inter-CCA experiments)."""
    return base.with_overrides(groups=groups, name=name)
