"""Experiment runner: the paper's measurement methodology, §3.2.

Given a :class:`~repro.core.scenarios.Scenario`, :func:`run_experiment`:

1. builds the dumbbell with one sender/receiver pair per flow;
2. staggers flow starts uniformly in ``[0, stagger_max]`` (the paper
   staggers over 0-2 minutes);
3. discards everything before ``warmup`` (the paper discards the first
   five minutes) — goodput, drops and cwnd events all start counting at
   the warm-up cut;
4. optionally stops early once aggregate goodput is stable (the paper's
   "<1% change over 20 minutes" rule, applied over a proportional
   window);
5. returns an :class:`~repro.core.results.ExperimentResult` with
   per-flow goodput, loss, halving counts and queue-level drop records.

Robustness
----------
Every run is guarded by an event budget (``max_events``, defaulting to
:func:`default_event_budget`) that catches zero-sim-time livelock, and
may additionally arm a :class:`~repro.faults.watchdog.SimWatchdog`
(``watchdog=``) that catches per-flow delivery stalls. When the
watchdog aborts — or the budget trips with a watchdog armed — the run
returns a *partial* result whose ``health`` record carries the stalled
flows, the fault timeline and the truncation time. Budget exhaustion
without a watchdog raises :class:`~repro.sim.engine.SimulationError`.

Deterministic fault injection (:mod:`repro.faults`) is driven either by
the scenario's own ``faults`` field or an explicit ``fault_schedule=``
override; the injector's RNG derives solely from the scenario seed, so
faulted runs are bit-reproducible and cacheable.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..analysis.convergence import ConvergenceTracker
from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule
from ..faults.watchdog import SimWatchdog, WatchdogConfig
from ..instrumentation.flowmon import FlowMonitor
from ..instrumentation.queuemon import QueueMonitor
from ..instrumentation.tcpprobe import CwndProbe
from ..obs.bus import EventBus
from ..obs.profiler import SimProfiler
from ..sim.engine import SimulationError, Simulator
from ..sim.queue import DropTailQueue, Queue, REDQueue
from ..sim.topology import FlowSpec, build_dumbbell
from ..tcp.cca import CCA_REGISTRY
from ..tcp.cca.base import CongestionControl
from ..tcp.cca.bbr import Bbr
from ..tcp.cca.bbr2 import Bbr2
from ..units import MSS
from .results import ExperimentResult, FlowResult, RunHealth
from .scenarios import Scenario

#: XORed into the scenario seed for the fault injector's RNG, so the
#: fault stream is independent of the flow-setup stream: adding faults
#: never perturbs the draws an unfaulted run would make.
_FAULT_SEED_SALT = 0xFA17


def default_event_budget(scenario: Scenario) -> int:
    """Default ``max_events`` safety valve for one scenario run.

    Sized from first principles with a wide margin: a saturated
    bottleneck forwards ``bw / (8 * MSS)`` packets per second and each
    packet costs a handful of events (enqueue, dequeue, link finish,
    delivery, ACK path, timers), so 200 events per packet-second plus a
    generous per-flow and fixed allowance is orders of magnitude above
    any legitimate run while still finite — a livelocked event loop
    spinning at a frozen clock hits it quickly.
    """
    packets_per_second = scenario.bottleneck_bw_bps / (8.0 * MSS)
    return int(
        200.0 * scenario.duration * packets_per_second
        + 50_000 * scenario.total_flows
        + 1_000_000
    )


def _make_cca(name: str, rng: random.Random) -> CongestionControl:
    """Instantiate a CCA, giving stochastic CCAs a per-flow seeded RNG."""
    try:
        factory = CCA_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(set(CCA_REGISTRY)))
        raise ValueError(f"unknown CCA {name!r}; known: {known}") from None
    if factory in (Bbr, Bbr2):
        return factory(rng=random.Random(rng.getrandbits(32)))
    return factory()


def _make_queue(scenario: Scenario, rng: random.Random) -> Queue:
    if scenario.use_red_queue:
        return REDQueue(scenario.buffer_bytes, rng=random.Random(rng.getrandbits(32)))
    return DropTailQueue(scenario.buffer_bytes)


def run_experiment(
    scenario: Scenario,
    record_drop_times: bool = True,
    convergence_check: bool = False,
    convergence_window_fraction: float = 0.25,
    convergence_tolerance: float = 0.01,
    fault_schedule: Optional[FaultSchedule] = None,
    watchdog: Optional[WatchdogConfig] = None,
    max_events: Optional[int] = None,
    bus: Optional[EventBus] = None,
    profiler: Optional[SimProfiler] = None,
) -> ExperimentResult:
    """Run one scenario to completion and collect all measurements.

    Parameters
    ----------
    record_drop_times:
        Keep the per-drop timestamp list (needed for burstiness
        analysis; costs memory on very lossy runs).
    convergence_check:
        Enable the paper's early-stop rule: once past warm-up, stop when
        aggregate delivered throughput changes by less than
        ``convergence_tolerance`` over ``convergence_window_fraction``
        of the post-warm-up duration.
    fault_schedule:
        Fault timeline to inject; overrides ``scenario.faults``. Prefer
        putting faults on the scenario so they participate in run-store
        cache keys.
    watchdog:
        Arm a :class:`~repro.faults.watchdog.SimWatchdog` with this
        config: flows with no delivery progress for a stall budget are
        recorded in ``result.health``, and once every runnable flow is
        stalled the run aborts into a partial result instead of
        spinning until the event budget.
    max_events:
        Override the :func:`default_event_budget` safety valve.
    bus:
        An :class:`~repro.obs.bus.EventBus` to wire the run's
        instrumentation through. All built-in observers (cwnd probes,
        queue monitor, watchdog, fault injector) ride this bus, so
        callers can subscribe additional consumers — trace recorders,
        metrics samplers — before the run without touching any
        component. A private bus is created when none is given.
    profiler:
        A :class:`~repro.obs.profiler.SimProfiler` to install on the
        simulator. Profiling is observation-only: the returned result
        is byte-identical with or without it.
    """
    rng = random.Random(scenario.seed)
    sim = Simulator()
    if profiler is not None:
        profiler.install(sim)
    if bus is None:
        bus = EventBus()

    specs: List[FlowSpec] = []
    cca_names: List[str] = []
    for group in scenario.groups:
        for _ in range(group.count):
            start = rng.uniform(0.0, scenario.stagger_max) if scenario.stagger_max else 0.0
            specs.append(
                FlowSpec(
                    cca=_make_cca(group.cca, rng),
                    rtt=group.rtt,
                    start_time=start,
                    jitter=scenario.ack_jitter_fraction * group.rtt,
                    jitter_seed=rng.getrandbits(32),
                )
            )
            cca_names.append(group.cca)

    queue = _make_queue(scenario, rng)
    dumbbell = build_dumbbell(
        sim,
        specs,
        bottleneck_bw_bps=scenario.bottleneck_bw_bps,
        buffer_bytes=scenario.buffer_bytes,
        queue=queue,
        delayed_ack=scenario.delayed_ack,
    )

    # All instrumentation observes through the event bus: one forwarder
    # per sender/queue, any number of subscribers behind it.
    for flow in dumbbell.flows:
        bus.bind_sender(flow.sender)
    bus.bind_queue(queue)

    queue_mon = QueueMonitor(
        queue, record_drop_times=record_drop_times, start_time=scenario.warmup,
        bus=bus,
    )
    probes = []
    for flow in dumbbell.flows:
        probe = CwndProbe(start_time=scenario.warmup)
        # Counters-only subscription: results use halvings/rtos, never
        # the per-ACK series, so keep the per-ACK fast path engaged.
        probe.subscribe_counters(bus, flow.flow_id)
        probes.append(probe)
    senders = [flow.sender for flow in dumbbell.flows]
    flow_mon = FlowMonitor(sim, senders)

    schedule = fault_schedule
    if schedule is None and scenario.faults:
        schedule = FaultSchedule(scenario.faults)
    injector: Optional[FaultInjector] = None
    if schedule is not None and schedule.events:
        injector = FaultInjector(
            sim,
            schedule,
            dumbbell,
            rng=random.Random(scenario.seed ^ _FAULT_SEED_SALT),
            bus=bus,
        )
        injector.arm()

    dog: Optional[SimWatchdog] = None
    if watchdog is not None:
        dog = SimWatchdog(
            sim, flow_mon, [spec.start_time for spec in specs], config=watchdog,
            bus=bus,
        )
        dog.arm()

    budget = max_events if max_events is not None else default_event_budget(scenario)
    if budget <= 0:
        raise ValueError("max_events must be positive")

    def _interrupt_reason() -> str:
        """Why the last ``sim.run`` stopped short of its target."""
        if dog is not None and dog.aborted:
            return dog.abort_reason or "stall"
        if sim.events_processed >= budget:
            return "event_budget"
        return ""

    dumbbell.start_all()
    reason = ""
    sim.run(until=scenario.warmup, max_events=budget)
    if sim.now < scenario.warmup:
        reason = _interrupt_reason()

    if not reason:
        flow_mon.open_window()
        if convergence_check:
            measured_span = scenario.duration - scenario.warmup
            window = max(convergence_window_fraction * measured_span, 1e-9)
            tracker = ConvergenceTracker(window, convergence_tolerance)
            tick = max(measured_span / 60.0, 1e-3)
            stop_at = {"time": scenario.duration}

            history: List[tuple] = [(sim.now, sum(s.snd_una for s in senders))]

            def _sample() -> None:
                # Track throughput averaged over the trailing half-window so
                # the tolerance applies to a smoothed rate (the paper's
                # 20-minute metric is similarly smooth), not to per-tick
                # noise from individual loss events.
                delivered = sum(s.snd_una for s in senders)
                now = sim.now
                history.append((now, delivered))
                horizon = now - window / 2.0
                while len(history) > 2 and history[1][0] <= horizon:
                    history.pop(0)
                t0, d0 = history[0]
                rate = (delivered - d0) / (now - t0) if now > t0 else 0.0
                if tracker.observe(now, rate):
                    stop_at["time"] = min(stop_at["time"], now)
                    return
                if now + tick <= scenario.duration:
                    sim.schedule(tick, _sample)

            sim.schedule(tick, _sample)
            # Run in slices so an early convergence verdict ends the run.
            while sim.now < stop_at["time"]:
                sim.run(until=min(sim.now + tick, stop_at["time"]), max_events=budget)
                if sim.now < stop_at["time"]:
                    reason = _interrupt_reason()
                    if reason:
                        break
        else:
            sim.run(until=scenario.duration, max_events=budget)
            if sim.now < scenario.duration:
                reason = _interrupt_reason()

    flow_mon.close_window()

    if reason == "event_budget" and dog is None:
        raise SimulationError(
            f"event budget exhausted at t={sim.now:.3f}s "
            f"({sim.events_processed} events >= {budget}): the run may be "
            "livelocked. Raise the budget with max_events=, or arm a "
            "watchdog (watchdog=WatchdogConfig(...)) to degrade into a "
            "partial result instead of failing."
        )

    # A truncated run may never have opened the measurement window (abort
    # during warm-up) or closed it at zero width; report zero goodput for
    # such windows rather than failing.
    window_open = (
        flow_mon.window_start is not None
        and flow_mon.window_end is not None
        and flow_mon.window_end > flow_mon.window_start
    )
    measured_duration = sim.now - scenario.warmup if window_open else 0.0

    flows: List[FlowResult] = []
    for flow, probe, cca_name in zip(dumbbell.flows, probes, cca_names):
        sender = flow.sender
        flows.append(
            FlowResult(
                flow_id=flow.flow_id,
                cca=cca_name,
                base_rtt=flow.spec.rtt,
                measured_rtt=sender.rtt.srtt,
                goodput_bps=flow_mon.goodput_bps(flow.flow_id) if window_open else 0.0,
                delivered_packets=(
                    flow_mon.delivered_packets(flow.flow_id) if window_open else 0
                ),
                packets_sent=sender.stats.packets_sent,
                retransmits=sender.stats.retransmits,
                halvings=probe.halvings,
                rtos=probe.rtos,
                queue_drops=queue_mon.drops_by_flow.get(flow.flow_id, 0),
                queue_arrivals=queue_mon.arrivals_by_flow.get(flow.flow_id, 0),
            )
        )

    health: Optional[RunHealth] = None
    if injector is not None or dog is not None:
        health = RunHealth(
            ok=not reason,
            reason=reason,
            truncated_at=sim.now if reason else None,
            stalled_flows=sorted(dog.stalled_flows) if dog is not None else [],
            fault_timeline=list(injector.timeline) if injector is not None else [],
        )

    return ExperimentResult(
        scenario=scenario,
        flows=flows,
        measured_duration=measured_duration,
        queue_drops=queue_mon.drops_total,
        queue_arrivals=queue_mon.arrivals_total,
        drop_times=list(queue_mon.drop_times),
        events_processed=sim.events_processed,
        health=health,
    )
