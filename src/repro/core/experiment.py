"""Experiment runner: the paper's measurement methodology, §3.2.

Given a :class:`~repro.core.scenarios.Scenario`, :func:`run_experiment`:

1. builds the dumbbell with one sender/receiver pair per flow;
2. staggers flow starts uniformly in ``[0, stagger_max]`` (the paper
   staggers over 0-2 minutes);
3. discards everything before ``warmup`` (the paper discards the first
   five minutes) — goodput, drops and cwnd events all start counting at
   the warm-up cut;
4. optionally stops early once aggregate goodput is stable (the paper's
   "<1% change over 20 minutes" rule, applied over a proportional
   window);
5. returns an :class:`~repro.core.results.ExperimentResult` with
   per-flow goodput, loss, halving counts and queue-level drop records.
"""

from __future__ import annotations

import random
import time
from typing import List

from ..analysis.convergence import ConvergenceTracker
from ..instrumentation.flowmon import FlowMonitor
from ..instrumentation.queuemon import QueueMonitor
from ..instrumentation.tcpprobe import CwndProbe
from ..sim.engine import Simulator
from ..sim.queue import DropTailQueue, Queue, REDQueue
from ..sim.topology import FlowSpec, build_dumbbell
from ..tcp.cca import CCA_REGISTRY
from ..tcp.cca.base import CongestionControl
from ..tcp.cca.bbr import Bbr
from ..tcp.cca.bbr2 import Bbr2
from .results import ExperimentResult, FlowResult
from .scenarios import Scenario


def _make_cca(name: str, rng: random.Random) -> CongestionControl:
    """Instantiate a CCA, giving stochastic CCAs a per-flow seeded RNG."""
    try:
        factory = CCA_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(set(CCA_REGISTRY)))
        raise ValueError(f"unknown CCA {name!r}; known: {known}") from None
    if factory in (Bbr, Bbr2):
        return factory(rng=random.Random(rng.getrandbits(32)))
    return factory()


def _make_queue(scenario: Scenario, rng: random.Random) -> Queue:
    if scenario.use_red_queue:
        return REDQueue(scenario.buffer_bytes, rng=random.Random(rng.getrandbits(32)))
    return DropTailQueue(scenario.buffer_bytes)


def run_experiment(
    scenario: Scenario,
    record_drop_times: bool = True,
    convergence_check: bool = False,
    convergence_window_fraction: float = 0.25,
    convergence_tolerance: float = 0.01,
) -> ExperimentResult:
    """Run one scenario to completion and collect all measurements.

    Parameters
    ----------
    record_drop_times:
        Keep the per-drop timestamp list (needed for burstiness
        analysis; costs memory on very lossy runs).
    convergence_check:
        Enable the paper's early-stop rule: once past warm-up, stop when
        aggregate delivered throughput changes by less than
        ``convergence_tolerance`` over ``convergence_window_fraction``
        of the post-warm-up duration.
    """
    rng = random.Random(scenario.seed)
    sim = Simulator()

    specs: List[FlowSpec] = []
    cca_names: List[str] = []
    for group in scenario.groups:
        for _ in range(group.count):
            start = rng.uniform(0.0, scenario.stagger_max) if scenario.stagger_max else 0.0
            specs.append(
                FlowSpec(
                    cca=_make_cca(group.cca, rng),
                    rtt=group.rtt,
                    start_time=start,
                    jitter=scenario.ack_jitter_fraction * group.rtt,
                    jitter_seed=rng.getrandbits(32),
                )
            )
            cca_names.append(group.cca)

    queue = _make_queue(scenario, rng)
    dumbbell = build_dumbbell(
        sim,
        specs,
        bottleneck_bw_bps=scenario.bottleneck_bw_bps,
        buffer_bytes=scenario.buffer_bytes,
        queue=queue,
        delayed_ack=scenario.delayed_ack,
    )

    queue_mon = QueueMonitor(
        queue, record_drop_times=record_drop_times, start_time=scenario.warmup
    )
    probes = [
        CwndProbe(flow.sender, start_time=scenario.warmup) for flow in dumbbell.flows
    ]
    senders = [flow.sender for flow in dumbbell.flows]
    flow_mon = FlowMonitor(sim, senders)

    dumbbell.start_all()
    # Intentional host-clock read: measures real runtime for the
    # wall_seconds report; never feeds the simulated clock.
    wall_start = time.perf_counter()  # repro-lint: disable=RPR001
    sim.run(until=scenario.warmup)
    flow_mon.open_window()

    if convergence_check:
        measured_span = scenario.duration - scenario.warmup
        window = max(convergence_window_fraction * measured_span, 1e-9)
        tracker = ConvergenceTracker(window, convergence_tolerance)
        tick = max(measured_span / 60.0, 1e-3)
        stop_at = {"time": scenario.duration}

        history: List[tuple] = [(sim.now, sum(s.snd_una for s in senders))]

        def _sample() -> None:
            # Track throughput averaged over the trailing half-window so
            # the tolerance applies to a smoothed rate (the paper's
            # 20-minute metric is similarly smooth), not to per-tick
            # noise from individual loss events.
            delivered = sum(s.snd_una for s in senders)
            now = sim.now
            history.append((now, delivered))
            horizon = now - window / 2.0
            while len(history) > 2 and history[1][0] <= horizon:
                history.pop(0)
            t0, d0 = history[0]
            rate = (delivered - d0) / (now - t0) if now > t0 else 0.0
            if tracker.observe(now, rate):
                stop_at["time"] = min(stop_at["time"], now)
                return
            if now + tick <= scenario.duration:
                sim.schedule(tick, _sample)

        sim.schedule(tick, _sample)
        # Run in slices so an early convergence verdict ends the run.
        while sim.now < stop_at["time"]:
            sim.run(until=min(sim.now + tick, stop_at["time"]))
    else:
        sim.run(until=scenario.duration)

    flow_mon.close_window()
    # Intentional host-clock read: closes the wall_seconds measurement.
    wall_seconds = time.perf_counter() - wall_start  # repro-lint: disable=RPR001
    measured_duration = sim.now - scenario.warmup

    flows: List[FlowResult] = []
    for flow, probe, cca_name in zip(dumbbell.flows, probes, cca_names):
        sender = flow.sender
        flows.append(
            FlowResult(
                flow_id=flow.flow_id,
                cca=cca_name,
                base_rtt=flow.spec.rtt,
                measured_rtt=sender.rtt.srtt,
                goodput_bps=flow_mon.goodput_bps(flow.flow_id),
                delivered_packets=flow_mon.delivered_packets(flow.flow_id),
                packets_sent=sender.stats.packets_sent,
                retransmits=sender.stats.retransmits,
                halvings=probe.halvings,
                rtos=probe.rtos,
                queue_drops=queue_mon.drops_by_flow.get(flow.flow_id, 0),
                queue_arrivals=queue_mon.arrivals_by_flow.get(flow.flow_id, 0),
            )
        )

    return ExperimentResult(
        scenario=scenario,
        flows=flows,
        measured_duration=measured_duration,
        queue_drops=queue_mon.drops_total,
        queue_arrivals=queue_mon.arrivals_total,
        drop_times=list(queue_mon.drop_times),
        events_processed=sim.events_processed,
        wall_seconds=wall_seconds,
    )
