"""Golden-run corpus: canonical scenarios and byte-exact result hashing.

The hot-path optimization work (DESIGN.md §11) is only safe because the
simulator's results are *byte-identical* before and after: every float,
every counter, every event count. This module defines

- a canonical, lossless serialisation of an
  :class:`~repro.core.results.ExperimentResult` (floats rendered with
  :meth:`float.hex`, keys sorted) and its sha256 digest;
- the six canonical golden scenarios (two EdgeScale points, two
  CoreScale quick points, one faulted run, one BBR/NewReno mix) whose
  digests are committed under ``tests/golden/hashes.json``;
- :func:`run_golden`, which re-runs one scenario and returns the digest
  plus an optional bounded JSONL trace (the compressed traces committed
  under ``tests/golden/traces/`` are produced from the same rows).

``tools/regen_golden.py`` regenerates the committed corpus;
``tests/golden/test_golden_runs.py`` asserts against it and explains
drift (an intentional physics change — regenerate) versus breakage
(event-structure or numeric divergence introduced by a refactor).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from ..faults.schedule import FaultSchedule
from ..obs.bus import EventBus
from ..obs.tracing import TraceRecorder, health_rows
from .experiment import run_experiment
from .results import ExperimentResult
from .scenarios import FlowGroup, Scenario, core_scale, edge_scale

#: Bump when the canonical serialisation itself changes shape (never for
#: physics changes — those regenerate hashes at the same format).
GOLDEN_FORMAT = 1

#: Row cap for golden traces: keeps the committed artifacts small while
#: still pinning the exact event-by-event behaviour of the opening
#: seconds of each run (where slow-start, the first loss epoch and the
#: first recovery all happen).
TRACE_MAX_EVENTS = 5000

#: Scenarios whose (bounded) JSONL traces are committed alongside the
#: result hashes.
TRACED_SCENARIOS = ("golden-edge-10", "golden-core-20")


def _canon(obj: Any) -> Any:
    """Recursively convert a value into a canonical JSON-able form.

    Floats are rendered with :meth:`float.hex` — lossless, so two
    results agree on the canonical form iff they agree bit-for-bit.
    ``bool`` is checked before ``int`` (bools are ints in Python).
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return obj.hex()
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    raise TypeError(f"cannot canonicalise {type(obj).__name__}: {obj!r}")


def canonical_result_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Every result field that must stay byte-identical, canonicalised.

    ``wall_seconds`` is deliberately excluded — it is host-performance
    metadata (always 0.0 on the direct :func:`run_experiment` path, set
    by the run-store scheduler otherwise), not a simulation output.
    """
    return {
        "scenario": _canon(dataclasses.asdict(result.scenario)),
        "flows": [_canon(dataclasses.asdict(f)) for f in result.flows],
        "measured_duration": _canon(result.measured_duration),
        "queue_drops": result.queue_drops,
        "queue_arrivals": result.queue_arrivals,
        "drop_times": _canon(result.drop_times),
        "events_processed": result.events_processed,
        "health": _canon(result.health.to_json()) if result.health else None,
    }


def canonical_result_json(result: ExperimentResult) -> str:
    """The canonical JSON text the golden digest is computed over."""
    return json.dumps(
        canonical_result_dict(result), sort_keys=True, separators=(",", ":")
    )


def result_digest(result: ExperimentResult) -> str:
    """sha256 over the canonical result JSON."""
    return hashlib.sha256(canonical_result_json(result).encode("utf-8")).hexdigest()


def trace_text(rows: List[Dict[str, Any]]) -> str:
    """Trace rows as the exact JSONL text the trace digest covers."""
    return "".join(json.dumps(row, separators=(",", ":")) + "\n" for row in rows)


def trace_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def golden_scenarios() -> Dict[str, Scenario]:
    """The canonical corpus, keyed by scenario name (insertion-ordered).

    Six scenarios chosen to cover every hot path the optimization work
    touches: slow start and AIMD steady state (edge), the paper's
    small-window CoreScale regime at its quick-profile scale divisor
    (core, 20 and 100 flows), fault injection with a health record
    (faulted blackout), and BBR's pacing/rate-sampling machinery
    competing with a loss-based flow (bbr-mix).
    """
    duration, warmup = 5.0, 1.5
    edge10 = edge_scale(
        flows=10, cca="newreno", duration=duration, warmup=warmup, seed=7
    ).with_overrides(name="golden-edge-10")
    edge50 = edge_scale(
        flows=50, cca="cubic", duration=duration, warmup=warmup, seed=7
    ).with_overrides(name="golden-edge-50")
    core20 = core_scale(
        flows=1000, cca="newreno", scale=50, duration=duration, warmup=warmup, seed=21
    ).with_overrides(name="golden-core-20")
    core100 = core_scale(
        flows=5000, cca="cubic", scale=50, duration=duration, warmup=warmup, seed=21
    ).with_overrides(name="golden-core-100")
    faulted = edge_scale(
        flows=10, cca="newreno", duration=duration, warmup=warmup, seed=13
    ).with_overrides(
        name="golden-faulted",
        faults=FaultSchedule.from_spec("blackout", duration).events,
    )
    bbr_mix = edge_scale(
        flows=10, cca="bbr", duration=duration, warmup=warmup, seed=17
    ).with_overrides(
        name="golden-bbr-mix",
        groups=(FlowGroup("bbr", 5, 0.020), FlowGroup("newreno", 5, 0.020)),
    )
    return {
        sc.name: sc for sc in (edge10, edge50, core20, core100, faulted, bbr_mix)
    }


def run_golden(
    scenario: Scenario, with_trace: bool = False
) -> Tuple[ExperimentResult, str, Optional[str]]:
    """Run one golden scenario; returns (result, digest, trace text).

    The trace (when requested) is recorded through a private event bus —
    observation is result-neutral by contract (the differential tests
    and the CI obs-smoke job both enforce it), so traced and bare golden
    runs share one digest.
    """
    bus: Optional[EventBus] = None
    recorder: Optional[TraceRecorder] = None
    if with_trace:
        bus = EventBus()
        recorder = TraceRecorder(
            bus, max_events=TRACE_MAX_EVENTS, start_time=scenario.warmup
        )
    result = run_experiment(scenario, bus=bus)
    text: Optional[str] = None
    if recorder is not None:
        text = trace_text(list(recorder.events) + health_rows(result))
    return result, result_digest(result), text


def drift_report(expected: Dict[str, Any], actual: ExperimentResult) -> str:
    """Explain a golden mismatch: drift (intentional) vs breakage.

    ``expected`` is one scenario's committed entry from ``hashes.json``
    (``result_sha256`` plus the coarse ``events``/``queue_drops``
    fingerprints recorded for exactly this diagnosis).
    """
    lines = ["golden digest mismatch:"]
    exp_events = expected.get("events")
    if exp_events is not None and exp_events != actual.events_processed:
        lines.append(
            f"  - events_processed changed: {exp_events} -> "
            f"{actual.events_processed}. The event *structure* of the run "
            "diverged — packets or timers are being scheduled differently. "
            "For a pure performance refactor this is breakage: the "
            "optimized path must replay the exact same event sequence."
        )
    else:
        lines.append(
            "  - events_processed is unchanged, so the event structure "
            "still matches; a measurement or floating-point result "
            "diverged instead (e.g. reordered float arithmetic, a "
            "changed accumulator, or an observer mutating state)."
        )
    exp_drops = expected.get("queue_drops")
    if exp_drops is not None and exp_drops != actual.queue_drops:
        lines.append(
            f"  - queue_drops changed: {exp_drops} -> {actual.queue_drops} "
            "(loss pattern diverged)."
        )
    lines.append(
        "  If this change to the simulation's behaviour is *intentional* "
        "(new physics, a bug fix that changes results), regenerate the "
        "corpus with `python tools/regen_golden.py` and commit the new "
        "hashes/traces, explaining the drift in the commit message. If "
        "you were optimizing or refactoring, this is a regression — the "
        "run is no longer byte-identical."
    )
    return "\n".join(lines)
