"""Parameter sweeps with optional process parallelism.

The paper's figures are sweeps over flow count and RTT. Scenarios are
plain picklable dataclasses, so independent runs can be farmed out to a
process pool; results come back in input order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

from .experiment import run_experiment
from .results import ExperimentResult
from .scenarios import Scenario


def _run_one(args) -> ExperimentResult:
    scenario, kwargs = args
    return run_experiment(scenario, **kwargs)


def run_sweep(
    scenarios: Sequence[Scenario],
    parallel: Optional[int] = None,
    record_drop_times: bool = True,
    convergence_check: bool = False,
    progress: Optional[Callable[[ExperimentResult], None]] = None,
) -> List[ExperimentResult]:
    """Run every scenario; returns results in the same order.

    Parameters
    ----------
    parallel:
        Number of worker processes. ``None`` chooses
        ``min(len(scenarios), cpu_count)``; ``1`` (or a single scenario)
        runs inline, which is friendlier for debugging and coverage.
    progress:
        Optional callback invoked with each finished result (in input
        order, as results are collected).
    """
    if not scenarios:
        return []
    kwargs = {
        "record_drop_times": record_drop_times,
        "convergence_check": convergence_check,
    }
    if parallel is None:
        parallel = min(len(scenarios), os.cpu_count() or 1)
    results: List[ExperimentResult] = []
    if parallel <= 1 or len(scenarios) == 1:
        for scenario in scenarios:
            result = run_experiment(scenario, **kwargs)
            results.append(result)
            if progress is not None:
                progress(result)
        return results
    jobs = [(s, kwargs) for s in scenarios]
    with ProcessPoolExecutor(max_workers=parallel) as pool:
        for result in pool.map(_run_one, jobs):
            results.append(result)
            if progress is not None:
                progress(result)
    return results
