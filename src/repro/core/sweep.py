"""Parameter sweeps on top of the run-store scheduler.

The paper's figures are sweeps over flow count and RTT. Scenarios are
plain picklable dataclasses, so independent runs are farmed out to a
process pool by :func:`repro.runstore.scheduler.run_jobs`, which adds
deduplication, optional result caching, per-job timeouts and bounded
retry on worker crashes. One failing scenario no longer discards the
other completed results: a :class:`~repro.runstore.scheduler.SweepError`
carries every result that did complete (and, with a store attached,
those results are already persisted on disk).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, cast

from ..runstore.progress import JobEvent, ProgressCallback
from ..runstore.scheduler import DEFAULT_RETRIES, Job, RunOptions, run_jobs
from ..runstore.store import RunStore
from .results import ExperimentResult
from .scenarios import Scenario


def run_sweep(
    scenarios: Sequence[Scenario],
    parallel: Optional[int] = None,
    record_drop_times: bool = True,
    convergence_check: bool = False,
    progress: Optional[Callable[[ExperimentResult], None]] = None,
    store: Optional[RunStore] = None,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    fresh: bool = False,
    on_event: Optional[ProgressCallback] = None,
) -> List[ExperimentResult]:
    """Run every scenario; returns results in the same order.

    Parameters
    ----------
    parallel:
        Number of worker processes. ``None`` chooses
        ``min(len(scenarios), cpu_count)``; ``1`` (or a single scenario)
        runs inline, which is friendlier for debugging and coverage.
    progress:
        Optional callback invoked with each finished result. Inline
        runs report in input order; parallel runs report in completion
        order (the returned list is always in input order).
    store:
        Optional :class:`~repro.runstore.store.RunStore`: previously
        stored results are served without simulating, and fresh results
        are persisted as each scenario completes, so an interrupted
        sweep resumes from what finished.
    timeout:
        Per-scenario wall-clock limit in seconds (enforced in-worker).
    retries:
        Extra attempts after a worker crash or timeout.
    fresh:
        Ignore (and overwrite) stored results.
    on_event:
        Optional low-level progress callback receiving every scheduler
        :class:`~repro.runstore.progress.JobEvent` (hits, retries, ...).

    Raises
    ------
    SweepError
        When any scenario fails terminally. The exception's ``results``
        attribute holds the completed results (``None`` at failed
        positions), so callers can keep partial sweeps.
    """
    if not scenarios:
        return []
    options = RunOptions(
        record_drop_times=record_drop_times,
        convergence_check=convergence_check,
    )

    def _relay(event: JobEvent) -> None:
        if on_event is not None:
            on_event(event)
        if progress is not None and event.kind in ("hit", "done"):
            progress(cast(ExperimentResult, event.payload))

    outcome = run_jobs(
        [Job(scenario, options) for scenario in scenarios],
        store=store,
        workers=parallel,
        timeout=timeout,
        retries=retries,
        fresh=fresh,
        progress=_relay if (progress is not None or on_event is not None) else None,
    )
    return cast(List[ExperimentResult], outcome.results)
