"""Experiment result containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.fairness import jains_fairness_index
from ..analysis.mathis_fit import FlowObservation
from ..analysis.throughput import group_shares
from ..units import MSS
from .scenarios import Scenario


@dataclass
class RunHealth:
    """Run-integrity record attached to faulted / watchdog-guarded runs.

    Schema (see DESIGN.md §9):

    - ``ok`` — ``True`` when the run reached its configured duration;
      ``False`` when it was truncated by the watchdog or event budget.
    - ``reason`` — why a truncated run stopped: ``"stall"`` (every
      runnable flow went a stall budget without delivery progress) or
      ``"event_budget"`` (the ``max_events`` safety valve tripped,
      catching zero-sim-time livelock). Empty for a completed run.
    - ``truncated_at`` — simulated time at truncation (``None`` for a
      completed run). Per-flow measurements cover warm-up → this time.
    - ``stalled_flows`` — flow ids with no delivery progress for a full
      stall budget at the last watchdog check (may be non-empty even
      when ``ok``: a sweep degrades per-flow, not per-job).
    - ``fault_timeline`` — ``(sim_time, description)`` audit trail of
      every fault the injector applied or restored.
    """

    ok: bool = True
    reason: str = ""
    truncated_at: Optional[float] = None
    stalled_flows: List[int] = field(default_factory=list)
    fault_timeline: List[Tuple[float, str]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "reason": self.reason,
            "truncated_at": self.truncated_at,
            "stalled_flows": list(self.stalled_flows),
            "fault_timeline": [[t, d] for t, d in self.fault_timeline],
        }

    def describe(self) -> str:
        """One human-readable line (appended to result summaries)."""
        if self.ok:
            state = "ok"
        else:
            state = f"TRUNCATED at t={self.truncated_at:.2f}s ({self.reason})"
        bits = [f"health: {state}"]
        if self.stalled_flows:
            ids = ",".join(str(f) for f in self.stalled_flows[:8])
            more = "..." if len(self.stalled_flows) > 8 else ""
            bits.append(f"stalled=[{ids}{more}]")
        if self.fault_timeline:
            bits.append(f"faults={len(self.fault_timeline)} event(s)")
        return " ".join(bits)


@dataclass
class FlowResult:
    """Measurements for one flow over the measurement window."""

    flow_id: int
    cca: str
    base_rtt: float
    measured_rtt: Optional[float]
    goodput_bps: float
    delivered_packets: int
    packets_sent: int
    retransmits: int
    halvings: int
    rtos: int
    queue_drops: int
    queue_arrivals: int

    @property
    def congestion_events(self) -> int:
        """Window reductions: fast-recovery entries + RTOs."""
        return self.halvings + self.rtos

    @property
    def loss_rate(self) -> float:
        """Per-flow packet loss rate at the bottleneck queue."""
        offered = self.queue_arrivals + self.queue_drops
        if offered == 0:
            return 0.0
        return self.queue_drops / offered

    @property
    def halving_rate(self) -> float:
        """Congestion events per delivered packet (the Mathis ``p``)."""
        if self.delivered_packets <= 0:
            return 0.0
        return self.congestion_events / self.delivered_packets

    def observation(self) -> FlowObservation:
        """This flow as a Mathis-fit observation."""
        rtt = self.measured_rtt if self.measured_rtt else self.base_rtt
        return FlowObservation(
            goodput_bps=self.goodput_bps,
            rtt_s=rtt,
            loss_rate=self.loss_rate,
            halving_rate=self.halving_rate,
        )


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    scenario: Scenario
    flows: List[FlowResult]
    measured_duration: float
    queue_drops: int
    queue_arrivals: int
    drop_times: List[float] = field(default_factory=list)
    events_processed: int = 0
    wall_seconds: float = 0.0
    # Plain class-level default (not a factory) so instances unpickled
    # from pre-fault-subsystem stores fall back to the class attribute.
    health: Optional[RunHealth] = None

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def aggregate_goodput_bps(self) -> float:
        return sum(f.goodput_bps for f in self.flows)

    @property
    def aggregate_loss_rate(self) -> float:
        """Queue-level loss rate: drops / packets offered."""
        offered = self.queue_arrivals + self.queue_drops
        if offered == 0:
            return 0.0
        return self.queue_drops / offered

    @property
    def total_congestion_events(self) -> int:
        return sum(f.congestion_events for f in self.flows)

    @property
    def utilization(self) -> float:
        """Goodput as a fraction of payload capacity."""
        payload_capacity = self.scenario.bottleneck_bw_bps * (MSS / 1500.0)
        return self.aggregate_goodput_bps / payload_capacity

    def goodputs(self) -> Dict[int, float]:
        """Per-flow goodput keyed by flow id."""
        return {f.flow_id: f.goodput_bps for f in self.flows}

    def flows_of(self, cca: str) -> List[FlowResult]:
        """All flows running the named CCA."""
        return [f for f in self.flows if f.cca == cca]

    def jfi(self, cca: Optional[str] = None) -> float:
        """Jain's Fairness Index over all flows, or over one CCA group."""
        flows = self.flows_of(cca) if cca else self.flows
        if not flows:
            raise ValueError(f"no flows for cca={cca!r}")
        return jains_fairness_index([f.goodput_bps for f in flows])

    def shares(self) -> Dict[str, float]:
        """Fraction of total goodput per CCA group (Figs 5-8)."""
        return group_shares(self.goodputs(), {f.flow_id: f.cca for f in self.flows})

    def observations(self) -> List[FlowObservation]:
        """Mathis-fit observations for every flow."""
        return [f.observation() for f in self.flows]

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"scenario={self.scenario.name} flows={len(self.flows)} "
            f"duration={self.measured_duration:.1f}s "
            f"util={self.utilization:.2%} loss={self.aggregate_loss_rate:.4%}",
        ]
        for name, share in sorted(self.shares().items()):
            lines.append(f"  {name}: share={share:.2%} jfi={self.jfi(name):.3f}")
        health = getattr(self, "health", None)
        if health is not None:
            lines.append(f"  {health.describe()}")
        return "\n".join(lines)
