"""Experiment result containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.fairness import jains_fairness_index
from ..analysis.mathis_fit import FlowObservation
from ..analysis.throughput import group_shares
from ..units import MSS
from .scenarios import Scenario


@dataclass
class FlowResult:
    """Measurements for one flow over the measurement window."""

    flow_id: int
    cca: str
    base_rtt: float
    measured_rtt: Optional[float]
    goodput_bps: float
    delivered_packets: int
    packets_sent: int
    retransmits: int
    halvings: int
    rtos: int
    queue_drops: int
    queue_arrivals: int

    @property
    def congestion_events(self) -> int:
        """Window reductions: fast-recovery entries + RTOs."""
        return self.halvings + self.rtos

    @property
    def loss_rate(self) -> float:
        """Per-flow packet loss rate at the bottleneck queue."""
        offered = self.queue_arrivals + self.queue_drops
        if offered == 0:
            return 0.0
        return self.queue_drops / offered

    @property
    def halving_rate(self) -> float:
        """Congestion events per delivered packet (the Mathis ``p``)."""
        if self.delivered_packets <= 0:
            return 0.0
        return self.congestion_events / self.delivered_packets

    def observation(self) -> FlowObservation:
        """This flow as a Mathis-fit observation."""
        rtt = self.measured_rtt if self.measured_rtt else self.base_rtt
        return FlowObservation(
            goodput_bps=self.goodput_bps,
            rtt_s=rtt,
            loss_rate=self.loss_rate,
            halving_rate=self.halving_rate,
        )


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    scenario: Scenario
    flows: List[FlowResult]
    measured_duration: float
    queue_drops: int
    queue_arrivals: int
    drop_times: List[float] = field(default_factory=list)
    events_processed: int = 0
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def aggregate_goodput_bps(self) -> float:
        return sum(f.goodput_bps for f in self.flows)

    @property
    def aggregate_loss_rate(self) -> float:
        """Queue-level loss rate: drops / packets offered."""
        offered = self.queue_arrivals + self.queue_drops
        if offered == 0:
            return 0.0
        return self.queue_drops / offered

    @property
    def total_congestion_events(self) -> int:
        return sum(f.congestion_events for f in self.flows)

    @property
    def utilization(self) -> float:
        """Goodput as a fraction of payload capacity."""
        payload_capacity = self.scenario.bottleneck_bw_bps * (MSS / 1500.0)
        return self.aggregate_goodput_bps / payload_capacity

    def goodputs(self) -> Dict[int, float]:
        """Per-flow goodput keyed by flow id."""
        return {f.flow_id: f.goodput_bps for f in self.flows}

    def flows_of(self, cca: str) -> List[FlowResult]:
        """All flows running the named CCA."""
        return [f for f in self.flows if f.cca == cca]

    def jfi(self, cca: Optional[str] = None) -> float:
        """Jain's Fairness Index over all flows, or over one CCA group."""
        flows = self.flows_of(cca) if cca else self.flows
        if not flows:
            raise ValueError(f"no flows for cca={cca!r}")
        return jains_fairness_index([f.goodput_bps for f in flows])

    def shares(self) -> Dict[str, float]:
        """Fraction of total goodput per CCA group (Figs 5-8)."""
        return group_shares(self.goodputs(), {f.flow_id: f.cca for f in self.flows})

    def observations(self) -> List[FlowObservation]:
        """Mathis-fit observations for every flow."""
        return [f.observation() for f in self.flows]

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"scenario={self.scenario.name} flows={len(self.flows)} "
            f"duration={self.measured_duration:.1f}s "
            f"util={self.utilization:.2%} loss={self.aggregate_loss_rate:.4%}",
        ]
        for name, share in sorted(self.shares().items()):
            lines.append(f"  {name}: share={share:.2%} jfi={self.jfi(name):.3f}")
        return "\n".join(lines)
