"""Dynamic workloads: flow arrivals, departures, and completion times.

The paper's §3.2 fixes its workload to long-running flows and lists
"arrival and departures of new flows" among the dynamics it deliberately
controls away. This module provides that missing axis as an extension:
finite-size flows arriving as a Poisson process, with per-flow
completion times (FCT) measured — letting users study how the paper's
fairness conclusions translate to a churning flow population.

Implementation note: arrivals are materialised up front (the arrival
process does not depend on network state), so the existing dumbbell
builder and sender completion machinery do all the work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sim.engine import Simulator
from ..sim.topology import FlowSpec, build_dumbbell
from ..tcp.cca import CCA_REGISTRY
from ..units import DATA_PACKET_BYTES
from .scenarios import FlowGroup


def poisson_arrivals(
    rate_per_s: float, duration: float, rng: random.Random
) -> List[float]:
    """Arrival times of a Poisson process over ``[0, duration)``."""
    if rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    times: List[float] = []
    t = rng.expovariate(rate_per_s)
    while t < duration:
        times.append(t)
        t += rng.expovariate(rate_per_s)
    return times


@dataclass
class DynamicWorkload:
    """A churning-flow workload description.

    ``flow_size_packets`` is the mean of a geometric size distribution
    (heavy-tailed enough to exercise short/long flow interaction while
    staying simple); ``cca_mix`` assigns CCAs round-robin by weight.
    """

    bottleneck_bw_bps: float
    buffer_bytes: int
    arrival_rate_per_s: float
    flow_size_packets: int = 200
    cca_mix: Sequence[FlowGroup] = (FlowGroup("newreno", 1),)
    rtt: float = 0.020
    duration: float = 30.0
    seed: int = 1

    def offered_load(self) -> float:
        """Offered load as a fraction of bottleneck capacity."""
        bits_per_flow = self.flow_size_packets * DATA_PACKET_BYTES * 8
        return self.arrival_rate_per_s * bits_per_flow / self.bottleneck_bw_bps


@dataclass
class DynamicFlowResult:
    flow_id: int
    cca: str
    size_packets: int
    start_time: float
    completion_time: Optional[float]  # None if still running at the end

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time, or ``None`` if unfinished."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time


@dataclass
class DynamicResult:
    workload: DynamicWorkload
    flows: List[DynamicFlowResult] = field(default_factory=list)

    def completed(self) -> List[DynamicFlowResult]:
        return [f for f in self.flows if f.completion_time is not None]

    def fcts(self) -> List[float]:
        return [f.fct for f in self.completed()]

    def completion_fraction(self) -> float:
        if not self.flows:
            return 1.0
        return len(self.completed()) / len(self.flows)

    def fcts_by_cca(self) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {}
        for f in self.completed():
            out.setdefault(f.cca, []).append(f.fct)
        return out


def run_dynamic_workload(workload: DynamicWorkload) -> DynamicResult:
    """Simulate the workload and return per-flow completion times."""
    rng = random.Random(workload.seed)
    arrivals = poisson_arrivals(
        workload.arrival_rate_per_s, workload.duration, rng
    )
    if not arrivals:
        return DynamicResult(workload)
    # Round-robin CCA assignment weighted by the mix counts.
    cca_cycle: List[str] = []
    for group in workload.cca_mix:
        cca_cycle.extend([group.cca] * group.count)
    if not cca_cycle:
        raise ValueError("cca_mix must name at least one CCA")
    for name in cca_cycle:
        if name.lower() not in CCA_REGISTRY:
            raise ValueError(f"unknown CCA {name!r}")

    sim = Simulator()
    specs: List[FlowSpec] = []
    sizes: List[int] = []
    ccas: List[str] = []
    for i, start in enumerate(arrivals):
        size = max(1, int(rng.expovariate(1.0 / workload.flow_size_packets)))
        cca_name = cca_cycle[i % len(cca_cycle)]
        from .experiment import _make_cca  # shared factory (seeded RNGs)

        specs.append(
            FlowSpec(
                cca=_make_cca(cca_name, rng),
                rtt=workload.rtt,
                start_time=start,
                total_packets=size,
                jitter=0.02 * workload.rtt,
                jitter_seed=rng.getrandbits(32),
            )
        )
        sizes.append(size)
        ccas.append(cca_name)

    dumbbell = build_dumbbell(
        sim,
        specs,
        bottleneck_bw_bps=workload.bottleneck_bw_bps,
        buffer_bytes=workload.buffer_bytes,
    )
    completion_times: Dict[int, float] = {}
    for flow in dumbbell.flows:
        flow.sender.completion_listener = (
            lambda sender, _sim=sim: completion_times.__setitem__(
                sender.flow_id, _sim.now
            )
        )
    dumbbell.start_all()
    sim.run(until=workload.duration)

    result = DynamicResult(workload)
    for flow, size, cca_name in zip(dumbbell.flows, sizes, ccas):
        result.flows.append(
            DynamicFlowResult(
                flow_id=flow.flow_id,
                cca=cca_name,
                size_packets=size,
                start_time=flow.spec.start_time,
                completion_time=completion_times.get(flow.flow_id),
            )
        )
    return result
