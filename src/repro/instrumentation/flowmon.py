"""Per-flow throughput accounting.

The paper reports per-flow throughput with the first five minutes of
every experiment discarded. :class:`FlowMonitor` implements that
measurement: it snapshots each sender's cumulative delivered count at a
warm-up cut and computes goodput over the measured window. It can also
record an interval time series for convergence detection (the paper's
"metric changes by less than 1% over 20 minutes" stop rule).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from ..tcp.connection import TcpSender
from ..units import MSS


class FlowMonitor:
    """Measures per-flow goodput over a configurable window.

    Goodput counts cumulatively ACKed packets (application bytes at
    ``payload_bytes`` each), i.e. retransmissions do not inflate it.
    """

    def __init__(
        self,
        sim: Simulator,
        senders: Sequence[TcpSender],
        payload_bytes: int = MSS,
        sample_interval: Optional[float] = None,
        max_samples: Optional[int] = None,
    ) -> None:
        """``max_samples`` bounds the recorded series: when set, the
        retained samples are decimated (every other one dropped, the
        sampling stride doubled) whenever the cap is reached, so memory
        stays O(max_samples) over arbitrarily long runs while coverage
        still spans the whole run — 5000-flow CoreScale runs need this."""
        self.sim = sim
        self.senders = list(senders)
        self.payload_bytes = payload_bytes
        self.window_start: Optional[float] = None
        self.window_end: Optional[float] = None
        self._start_delivered: Dict[int, int] = {}
        self._end_delivered: Dict[int, int] = {}
        self.sample_interval = sample_interval
        self.sample_times: List[float] = []
        self.samples: List[List[int]] = []  # snd_una snapshots per tick
        self.max_samples = max_samples
        self._sample_stride = 1
        self._ticks = 0
        self._sampling_stopped = False
        if max_samples is not None and max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        if sample_interval is not None:
            if sample_interval <= 0:
                raise ValueError("sample_interval must be positive")
            sim.schedule(sample_interval, self._tick)

    def _tick(self) -> None:
        # Stop once the measurement window has closed or every finite
        # flow has completed: an immortal tick would otherwise keep the
        # event heap alive forever, burning the run's max_events budget
        # and growing `samples` without bound.
        if self._sampling_stopped or self.window_end is not None:
            self._sampling_stopped = True
            return
        tick_index = self._ticks
        self._ticks += 1
        if tick_index % self._sample_stride == 0:
            self.sample_times.append(self.sim.now)
            self.samples.append([s.snd_una for s in self.senders])
            if self.max_samples is not None and len(self.samples) >= self.max_samples:
                self.sample_times = self.sample_times[::2]
                self.samples = self.samples[::2]
                self._sample_stride *= 2
        if self.senders and all(s.completed for s in self.senders):
            self._sampling_stopped = True
            return
        self.sim.schedule(self.sample_interval, self._tick)

    def stop_sampling(self) -> None:
        """Stop the periodic series (any pending tick becomes a no-op)."""
        self._sampling_stopped = True

    def progress_marks(self) -> Dict[int, Tuple[int, int]]:
        """Per-flow ``(delivered, acks_received)`` counters, keyed by id.

        The stall signature :class:`repro.faults.watchdog.SimWatchdog`
        samples: both counters frozen means no delivery progress — unlike
        ``packets_sent``, which keeps growing while a sender retransmits
        into a dead link.
        """
        return {
            s.flow_id: (s.delivered_packets, s.stats.acks_received)
            for s in self.senders
        }

    def open_window(self) -> None:
        """Start the measurement window (call at the end of warm-up)."""
        self.window_start = self.sim.now
        self._start_delivered = {s.flow_id: s.snd_una for s in self.senders}

    def close_window(self) -> None:
        """End the measurement window (call at experiment end)."""
        self.window_end = self.sim.now
        self._end_delivered = {s.flow_id: s.snd_una for s in self.senders}

    def _require_window(self) -> float:
        if self.window_start is None or self.window_end is None:
            raise RuntimeError("measurement window not opened/closed")
        duration = self.window_end - self.window_start
        if duration <= 0:
            raise RuntimeError("measurement window has zero duration")
        return duration

    def delivered_packets(self, flow_id: int) -> int:
        """Packets cumulatively ACKed inside the window for one flow."""
        self._require_window()
        return self._end_delivered[flow_id] - self._start_delivered[flow_id]

    def goodput_bps(self, flow_id: int) -> float:
        """Application goodput of one flow in bits/second."""
        duration = self._require_window()
        return self.delivered_packets(flow_id) * self.payload_bytes * 8.0 / duration

    def goodputs(self) -> Dict[int, float]:
        """Goodput of every flow, keyed by flow id."""
        return {s.flow_id: self.goodput_bps(s.flow_id) for s in self.senders}

    def aggregate_goodput_bps(self) -> float:
        """Sum of all flows' goodput."""
        return sum(self.goodputs().values())
