"""Measurement instrumentation: tcpprobe, queue drop logging, flow goodput."""

from __future__ import annotations

from .flowmon import FlowMonitor
from .queuemon import OccupancySampler, QueueMonitor
from .tcpprobe import CwndProbe

__all__ = ["CwndProbe", "QueueMonitor", "OccupancySampler", "FlowMonitor"]
