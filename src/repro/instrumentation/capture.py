"""In-path packet capture (tcpdump, simulator edition).

A :class:`PacketCapture` splices transparently into any path — it is a
zero-delay element that records ``(time, flow_id, seq/ack, kind)`` for
every packet passing through and forwards it unchanged. Useful for
debugging CCA behaviour and for sequence-number/time plots.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..sim.engine import Simulator
from ..sim.link import Sink
from ..sim.packet import Packet


class CaptureRecord(NamedTuple):
    time: float
    flow_id: int
    kind: str  # "data" or "ack"
    seq: int   # packet number (data) or cumulative ack (ack)
    size: int


class PacketCapture:
    """Records packets flowing through one point of the topology."""

    def __init__(
        self,
        sim: Simulator,
        sink: Optional[Sink] = None,
        flow_filter: Optional[int] = None,
        max_records: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.sink = sink
        self.flow_filter = flow_filter
        self.max_records = max_records
        self.records: List[CaptureRecord] = []
        self.forwarded = 0
        self.truncated = False

    def send(self, packet: Packet) -> None:
        if self.sink is None:
            raise RuntimeError("PacketCapture has no sink attached")
        if self.flow_filter is None or packet.flow_id == self.flow_filter:
            if self.max_records is None or len(self.records) < self.max_records:
                self.records.append(
                    CaptureRecord(
                        self.sim.now,
                        packet.flow_id,
                        "ack" if packet.is_ack else "data",
                        packet.ack_seq if packet.is_ack else packet.seq,
                        packet.size,
                    )
                )
            else:
                self.truncated = True
        self.forwarded += 1
        self.sink.send(packet)

    def for_flow(self, flow_id: int) -> List[CaptureRecord]:
        """Records for one flow."""
        return [r for r in self.records if r.flow_id == flow_id]

    def data_records(self) -> List[CaptureRecord]:
        return [r for r in self.records if r.kind == "data"]

    def splice_before(self, element_attr_owner, attr: str = "path") -> None:
        """Insert this capture in front of ``owner.<attr>``.

        Example: ``capture.splice_before(sender)`` records everything the
        sender transmits.
        """
        downstream = getattr(element_attr_owner, attr)
        if downstream is None:
            raise RuntimeError(f"{attr} is not wired yet")
        self.sink = downstream
        setattr(element_attr_owner, attr, self)
