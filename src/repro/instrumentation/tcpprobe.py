"""tcpprobe-style congestion window instrumentation.

The paper measures the CWND halving rate with the Linux ``tcpprobe``
module. :class:`CwndProbe` is the simulator equivalent: it observes a
:class:`~repro.tcp.connection.TcpSender`'s cwnd events — either chained
directly onto the sender (:meth:`CwndProbe.attach`) or through an
:class:`~repro.obs.bus.EventBus` subscription
(:meth:`CwndProbe.subscribe`) — and records every window event,
counting multiplicative decreases exactly (one per fast-recovery entry,
one per RTO) rather than inferring them from sampled cwnd values as
tcpprobe post-processing must. Any number of other observers (stall
watchdog, metrics samplers, trace recorders) can watch the same sender
concurrently.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..obs.bus import EventBus
from ..tcp.connection import TcpSender

#: (time, kind, cwnd) tuples; kind in {"ack", "loss_event", "rto", "recovery_exit"}.
CwndEvent = Tuple[float, str, float]


class CwndProbe:
    """Records cwnd events for one sender.

    Parameters
    ----------
    record_samples:
        Keep the full per-ACK cwnd time series (memory heavy at scale;
        the halving counters are always kept).
    start_time:
        Events before this time are not counted (the paper discards the
        warm-up period).
    """

    def __init__(
        self,
        sender: Optional[TcpSender] = None,
        record_samples: bool = False,
        start_time: float = 0.0,
    ) -> None:
        self.record_samples = record_samples
        self.start_time = start_time
        self.halvings = 0
        self.rtos = 0
        self.recovery_exits = 0
        self.samples: List[CwndEvent] = []
        self.last_cwnd: float = 0.0
        self._attached_sender: Optional[TcpSender] = None
        self._bus_handle: Optional[Callable[..., None]] = None
        if sender is not None:
            self.attach(sender)

    def attach(self, sender: TcpSender) -> None:
        """Chain this probe onto ``sender``.

        The probe coexists with every other listener on the sender;
        attaching never displaces an existing observer (the old
        single-slot semantics silently did).
        """
        if self._attached_sender is not None:
            raise RuntimeError("probe already attached; detach() it first")
        sender.add_cwnd_listener(self.on_event)
        self._attached_sender = sender

    def detach(self) -> None:
        """Remove this probe from the sender it is attached to."""
        if self._attached_sender is None:
            raise RuntimeError("probe is not attached")
        self._attached_sender.remove_cwnd_listener(self.on_event)
        self._attached_sender = None

    def subscribe(self, bus: EventBus, flow: int) -> None:
        """Observe one flow's cwnd events through an event bus.

        The per-flow subscription keeps dispatch O(1) per event no
        matter how many flows (and probes) share the bus.
        """
        if self._bus_handle is not None:
            raise RuntimeError("probe already subscribed to a bus")

        def on_bus_event(now: float, flow_id: int, kind: str, cwnd: float) -> None:
            self.on_event(now, kind, cwnd)

        self._bus_handle = bus.subscribe("cwnd", on_bus_event, flow=flow)

    def subscribe_counters(self, bus: EventBus, flow: int) -> None:
        """Observe only the rare window-reduction events through the bus.

        Subscribes to the ``loss`` and ``rto`` topics instead of the
        full ``cwnd`` stream, so the sender's per-ACK zero-listener
        fast path stays engaged: the probe costs nothing per ACK and a
        handful of calls per congestion event. The halving counters
        (:attr:`halvings`, :attr:`rtos`, :attr:`congestion_events`) are
        identical to a full subscription; ``recovery_exits``,
        ``last_cwnd`` and the sample series are *not* maintained — use
        :meth:`subscribe` when those are needed.
        """
        if self.record_samples:
            raise RuntimeError(
                "subscribe_counters() skips per-ACK events, so the sample "
                "series would be silently incomplete; use subscribe()"
            )
        if self._bus_handle is not None:
            raise RuntimeError("probe already subscribed to a bus")

        def on_loss(now: float, flow_id: int, cwnd: float) -> None:
            self.on_event(now, "loss_event", cwnd)

        def on_rto(now: float, flow_id: int, cwnd: float) -> None:
            self.on_event(now, "rto", cwnd)

        bus.subscribe("loss", on_loss, flow=flow)
        bus.subscribe("rto", on_rto, flow=flow)
        self._bus_handle = on_loss

    def on_event(self, now: float, kind: str, cwnd: float) -> None:
        self.last_cwnd = cwnd
        if now < self.start_time:
            return
        if kind == "loss_event":
            self.halvings += 1
        elif kind == "rto":
            self.rtos += 1
        elif kind == "recovery_exit":
            self.recovery_exits += 1
        if self.record_samples:
            self.samples.append((now, kind, cwnd))

    @property
    def congestion_events(self) -> int:
        """Window-reduction events: fast-recovery entries plus RTOs.

        This is the paper's "CWND halving" count — each loss event
        reduces the window once no matter how many packets the burst
        dropped.
        """
        return self.halvings + self.rtos

    def reset(self) -> None:
        """Zero all counters and drop recorded samples."""
        self.halvings = 0
        self.rtos = 0
        self.recovery_exits = 0
        self.samples.clear()
