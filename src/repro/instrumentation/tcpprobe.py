"""tcpprobe-style congestion window instrumentation.

The paper measures the CWND halving rate with the Linux ``tcpprobe``
module. :class:`CwndProbe` is the simulator equivalent: it attaches to a
:class:`~repro.tcp.connection.TcpSender`'s ``cwnd_listener`` hook and
records every window event, counting multiplicative decreases exactly
(one per fast-recovery entry, one per RTO) rather than inferring them
from sampled cwnd values as tcpprobe post-processing must.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..tcp.connection import TcpSender

#: (time, kind, cwnd) tuples; kind in {"ack", "loss_event", "rto", "recovery_exit"}.
CwndEvent = Tuple[float, str, float]


class CwndProbe:
    """Records cwnd events for one sender.

    Parameters
    ----------
    record_samples:
        Keep the full per-ACK cwnd time series (memory heavy at scale;
        the halving counters are always kept).
    start_time:
        Events before this time are not counted (the paper discards the
        warm-up period).
    """

    def __init__(
        self,
        sender: Optional[TcpSender] = None,
        record_samples: bool = False,
        start_time: float = 0.0,
    ) -> None:
        self.record_samples = record_samples
        self.start_time = start_time
        self.halvings = 0
        self.rtos = 0
        self.recovery_exits = 0
        self.samples: List[CwndEvent] = []
        self.last_cwnd: float = 0.0
        if sender is not None:
            self.attach(sender)

    def attach(self, sender: TcpSender) -> None:
        """Install this probe on ``sender`` (replaces any existing probe)."""
        sender.cwnd_listener = self.on_event

    def on_event(self, now: float, kind: str, cwnd: float) -> None:
        self.last_cwnd = cwnd
        if now < self.start_time:
            return
        if kind == "loss_event":
            self.halvings += 1
        elif kind == "rto":
            self.rtos += 1
        elif kind == "recovery_exit":
            self.recovery_exits += 1
        if self.record_samples:
            self.samples.append((now, kind, cwnd))

    @property
    def congestion_events(self) -> int:
        """Window-reduction events: fast-recovery entries plus RTOs.

        This is the paper's "CWND halving" count — each loss event
        reduces the window once no matter how many packets the burst
        dropped.
        """
        return self.halvings + self.rtos

    def reset(self) -> None:
        """Zero all counters and drop recorded samples."""
        self.halvings = 0
        self.rtos = 0
        self.recovery_exits = 0
        self.samples.clear()
