"""Bottleneck queue instrumentation.

The paper computes the packet loss rate "by logging packet drops at the
bottleneck queue in the software switch". :class:`QueueMonitor` is that
logger: it hooks a queue's drop/enqueue listeners, attributes drops to
flows, keeps drop timestamps (needed for the Goh–Barabási burstiness
analysis of Finding 3), and can sample occupancy.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from ..obs.bus import EventBus
from ..sim.engine import Simulator
from ..sim.packet import Packet
from ..sim.queue import Queue


class QueueMonitor:
    """Counts and timestamps arrivals and drops at a bottleneck queue.

    Observes either through direct (chained) queue listeners — the
    default — or, when ``bus`` is given, through ``enqueue``/``drop``
    subscriptions on an :class:`~repro.obs.bus.EventBus` the queue has
    been bound to; either way the monitor coexists with any number of
    other observers.
    """

    def __init__(
        self,
        queue: Queue,
        record_drop_times: bool = True,
        start_time: float = 0.0,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.queue = queue
        self.record_drop_times = record_drop_times
        self.start_time = start_time
        self.drops_total = 0
        self.arrivals_total = 0
        self.drops_by_flow: Dict[int, int] = defaultdict(int)
        self.arrivals_by_flow: Dict[int, int] = defaultdict(int)
        self.drop_times: List[float] = []
        if bus is not None:
            bus.subscribe("drop", self._on_drop)
            bus.subscribe("enqueue", self._on_enqueue)
        else:
            queue.add_drop_listener(self._on_drop)
            queue.add_enqueue_listener(self._on_enqueue)

    def _on_drop(self, now: float, packet: Packet) -> None:
        if now < self.start_time:
            return
        self.drops_total += 1
        self.drops_by_flow[packet.flow_id] += 1
        if self.record_drop_times:
            self.drop_times.append(now)

    def _on_enqueue(self, now: float, packet: Packet) -> None:
        if now < self.start_time:
            return
        self.arrivals_total += 1
        self.arrivals_by_flow[packet.flow_id] += 1

    @property
    def offered_total(self) -> int:
        """Packets offered to the queue (accepted + dropped)."""
        return self.arrivals_total + self.drops_total

    def loss_rate(self) -> float:
        """Aggregate packet loss rate: drops / packets offered."""
        offered = self.offered_total
        if offered == 0:
            return 0.0
        return self.drops_total / offered

    def flow_loss_rate(self, flow_id: int) -> float:
        """Per-flow loss rate: flow drops / flow packets offered."""
        offered = self.arrivals_by_flow.get(flow_id, 0) + self.drops_by_flow.get(flow_id, 0)
        if offered == 0:
            return 0.0
        return self.drops_by_flow.get(flow_id, 0) / offered

    def reset(self, at: Optional[float] = None) -> None:
        """Zero all counters; optionally also move the start cut to ``at``."""
        if at is not None:
            self.start_time = at
        self.drops_total = 0
        self.arrivals_total = 0
        self.drops_by_flow.clear()
        self.arrivals_by_flow.clear()
        self.drop_times.clear()


class OccupancySampler:
    """Periodically samples queue occupancy (bytes) for utilisation plots."""

    def __init__(self, sim: Simulator, queue: Queue, interval: float = 0.1) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.queue = queue
        self.interval = interval
        self.times: List[float] = []
        self.samples: List[int] = []
        self._stopped = False
        sim.schedule(interval, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.times.append(self.sim.now)
        self.samples.append(self.queue.occupancy_bytes)
        self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop sampling (the pending event becomes a no-op)."""
        self._stopped = True

    def mean_occupancy(self) -> float:
        """Average sampled occupancy in bytes."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)
