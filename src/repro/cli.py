"""Command-line interface.

Run single experiments or sweeps from the shell::

    repro run --setting core --flows 3000 --cca bbr --scale 50 --duration 60
    repro run --setting edge --flows 30 --cca newreno --store benchmarks/_cache
    repro run --setting edge --flows 10 --faults blackout
    repro compete --setting core --flows 1000 --ccas bbr cubic --scale 50
    repro profile --setting edge --flows 30 --cca cubic --top 10
    repro bench --quick --out BENCH_engine.json
    repro models --rtt 0.02 --p 0.001
    repro faults ls
    repro cache ls
    repro cache gc --dry-run

Output is a human-readable experiment summary plus optional JSON
(``--json``) for scripting. ``--store DIR`` routes an experiment
through the content-addressed run store (``repro.runstore``): a warm
key is served from disk instead of re-simulating, and fresh results
are persisted atomically. ``repro cache`` inspects and maintains the
same store; its default location is ``$REPRO_STORE`` or
``benchmarks/_cache``.
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from .analysis.mathis_fit import fit_mathis
from .bench import main as _cmd_bench
from .core.experiment import run_experiment
from .core.results import ExperimentResult
from .core.scenarios import FlowGroup, Scenario, core_scale, edge_scale
from .faults import PRESETS, FaultSchedule, WatchdogConfig
from .lint import ALL_CODES, RULE_SUMMARIES
from .lint.runner import main as lint_main
from .models.cubic_model import cubic_throughput
from .models.mathis import mathis_throughput
from .models.padhye import padhye_throughput
from .obs import EventBus, SimProfiler, TraceRecorder, write_trace_jsonl
from .runstore import (
    CACHE_VERSION,
    Job,
    RunOptions,
    RunStore,
    SweepStats,
    migrate_legacy,
    print_progress,
    run_jobs,
)
from .units import MSS

#: Where ``repro cache`` (and ``--store`` without a value) looks by default.
DEFAULT_STORE = os.environ.get("REPRO_STORE") or os.path.join("benchmarks", "_cache")


def _base_scenario(args: argparse.Namespace) -> Scenario:
    if args.setting == "edge":
        scenario = edge_scale(
            flows=args.flows,
            cca=args.cca,
            rtt=args.rtt,
            duration=args.duration,
            warmup=args.warmup,
            seed=args.seed,
        )
    else:
        scenario = core_scale(
            flows=args.flows,
            cca=args.cca,
            rtt=args.rtt,
            scale=args.scale,
            duration=args.duration,
            warmup=args.warmup,
            seed=args.seed,
        )
    if getattr(args, "faults", None):
        try:
            schedule = FaultSchedule.from_spec(args.faults, scenario.duration)
            scenario = scenario.with_overrides(faults=schedule.events)
        except ValueError as exc:
            print(f"--faults: {exc}", file=sys.stderr)
            raise SystemExit(2) from exc
    return scenario


def _watchdog_config(args: argparse.Namespace) -> Optional[WatchdogConfig]:
    """Watchdog for ``repro run``: explicit budget wins; any faulted run
    gets the default config so it degrades instead of hanging."""
    if getattr(args, "stall_budget", None) is not None:
        return WatchdogConfig(stall_budget=args.stall_budget)
    if getattr(args, "faults", None):
        return WatchdogConfig()
    return None


def _result_json(result: ExperimentResult) -> Dict[str, Any]:
    return {
        "scenario": dataclasses.asdict(result.scenario),
        "measured_duration": result.measured_duration,
        "utilization": result.utilization,
        "aggregate_loss_rate": result.aggregate_loss_rate,
        "jfi": result.jfi(),
        "shares": result.shares(),
        "flows": [
            {
                "flow_id": f.flow_id,
                "cca": f.cca,
                "goodput_bps": f.goodput_bps,
                "loss_rate": f.loss_rate,
                "halving_rate": f.halving_rate,
                "rtos": f.rtos,
            }
            for f in result.flows
        ],
        "health": result.health.to_json() if result.health is not None else None,
    }


def _emit(
    result: ExperimentResult,
    args: argparse.Namespace,
    stats: Optional[SweepStats] = None,
) -> None:
    print(result.summary())
    if stats is not None:
        print(f"store: {stats.summary()}")
    if args.mathis:
        for interp in ("loss", "halving"):
            try:
                fit = fit_mathis(result.observations(), interp, MSS)
            except ValueError:
                print(f"mathis[{interp}]: no usable observations")
                continue
            print(
                f"mathis[{interp}]: C={fit.constant:.3f} "
                f"median_error={fit.median_error:.1%}"
            )
    if args.json:
        payload = _result_json(result)
        if stats is not None:
            payload["stats"] = stats.to_json()
        json.dump(payload, sys.stdout, indent=2)
        print()


def _run_one(
    scenario: Scenario, args: argparse.Namespace
) -> Tuple[ExperimentResult, Optional[SweepStats], Optional[SimProfiler]]:
    """Run a scenario directly, or through the store when ``--store``.

    ``--profile`` and ``--trace`` attach in-process observers (a
    :class:`SimProfiler` / a bus-fed :class:`TraceRecorder`), so they
    only work on the direct path: with ``--store`` the simulation runs
    in a worker process the parent's observers cannot see into.
    """
    watchdog = _watchdog_config(args)
    max_events = getattr(args, "max_events", None)
    profile = bool(getattr(args, "profile", False))
    trace_path = getattr(args, "trace", None)
    if args.store and (profile or trace_path):
        print("--profile/--trace require a direct run (drop --store)",
              file=sys.stderr)
        raise SystemExit(2)
    if not args.store:
        profiler = SimProfiler() if profile else None
        bus = recorder = None
        if trace_path:
            bus = EventBus()
            recorder = TraceRecorder(bus, start_time=scenario.warmup)
        result = run_experiment(
            scenario,
            convergence_check=args.converge,
            watchdog=watchdog,
            max_events=max_events,
            bus=bus,
            profiler=profiler,
        )
        if recorder is not None:
            write_trace_jsonl(recorder, trace_path, result=result)
        return result, None, profiler
    options = RunOptions(
        convergence_check=args.converge,
        watchdog=watchdog,
        max_events=max_events,
    )
    outcome = run_jobs(
        [Job(scenario, options)],
        store=RunStore(args.store),
        workers=1,
        timeout=args.timeout,
        fresh=args.fresh,
        progress=print_progress if args.progress else None,
    )
    return outcome.results[0], outcome.stats, None


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _base_scenario(args)
    result, stats, profiler = _run_one(scenario, args)
    _emit(result, args, stats)
    if profiler is not None:
        print(profiler.report())
    return 0


def _cmd_compete(args: argparse.Namespace) -> int:
    if len(args.ccas) < 2:
        print("compete needs at least two --ccas", file=sys.stderr)
        return 2
    base = _base_scenario(args)
    share = base.total_flows // len(args.ccas)
    if share < 1:
        print("not enough flows for the requested CCA mix", file=sys.stderr)
        return 2
    groups = tuple(FlowGroup(cca, share, args.rtt) for cca in args.ccas)
    scenario = base.with_overrides(
        groups=groups, name=f"compete-{'-'.join(args.ccas)}"
    )
    result, stats, profiler = _run_one(scenario, args)
    _emit(result, args, stats)
    if profiler is not None:
        print(profiler.report())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one scenario under the simulator profiler and print the
    per-handler event counts and wall-time table. Profiling is
    observation-only: the result is byte-identical to an unprofiled run."""
    if args.store:
        print("profile always runs directly; drop --store", file=sys.stderr)
        return 2
    args.profile = True
    scenario = _base_scenario(args)
    result, _, profiler = _run_one(scenario, args)
    _emit(result, args, None)
    assert profiler is not None
    print(profiler.report(top=args.top))
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    rows = [
        ("mathis (C=0.94)", mathis_throughput(MSS, args.rtt, args.p)),
        ("padhye/PFTK", padhye_throughput(MSS, args.rtt, args.p)),
        ("cubic", cubic_throughput(MSS, args.rtt, args.p)),
    ]
    print(f"model predictions for RTT={args.rtt * 1000:.0f}ms p={args.p}:")
    for name, rate in rows:
        print(f"  {name:18s} {rate / 1e6:10.3f} Mbps")
    if args.json:
        json.dump({name: rate for name, rate in rows}, sys.stdout, indent=2)
        print()
    return 0


def _fmt_size(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{size}B"  # pragma: no cover - unreachable


def _fmt_when(created: float) -> str:
    if created <= 0:
        return "-"
    return datetime.datetime.fromtimestamp(created).strftime("%Y-%m-%d %H:%M")


def _cmd_cache_ls(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    entries = store.ls()
    if args.json:
        json.dump([e.to_json() for e in entries], sys.stdout, indent=2)
        print()
        return 0
    if not entries:
        print(f"store {args.store}: empty")
        return 0
    print(f"store {args.store}: {len(entries)} entries (cache v{CACHE_VERSION})")
    for e in entries:
        flag = "" if e.version == CACHE_VERSION else f"  [stale v{e.version}]"
        print(
            f"{e.key[:12]}  {_fmt_size(e.size):>9s}  wall={e.wall_seconds:7.2f}s  "
            f"{_fmt_when(e.created)}  {e.name}{flag}"
        )
    return 0


def _cmd_cache_info(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    matches = store.resolve(args.key)
    if not matches:
        print(f"no entry matches key prefix {args.key!r}", file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(
            f"key prefix {args.key!r} is ambiguous ({len(matches)} matches)",
            file=sys.stderr,
        )
        return 2
    key = matches[0]
    meta = store.meta(key)
    if meta is None:
        print(f"entry {key} is corrupt (dropped)", file=sys.stderr)
        return 1
    if args.json:
        json.dump(meta, sys.stdout, indent=2)
        print()
        return 0
    for field_name in ("key", "name", "version", "size", "wall_seconds", "events"):
        print(f"{field_name:14s} {meta.get(field_name, '-')}")
    print(f"{'created':14s} {_fmt_when(float(meta.get('created', 0.0)))}")
    payload = store.get(key)
    summary = getattr(payload, "summary", None)
    if callable(summary):
        print(summary())
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    report = store.gc(dry_run=args.dry_run, all_versions=args.all_versions)
    if args.json:
        json.dump(report.to_json(), sys.stdout, indent=2)
        print()
        return 0
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"gc {args.store}: {verb} {len(report.removed)} object(s) "
        f"({_fmt_size(report.bytes_freed)}), kept {report.kept}"
    )
    for path in report.removed:
        print(f"  - {os.path.basename(path)}")
    return 0


def _cmd_cache_migrate(args: argparse.Namespace) -> int:
    store = RunStore(args.store)
    report = migrate_legacy(
        store,
        legacy_dir=args.legacy_dir,
        legacy_version=args.legacy_version,
        prune=args.prune,
    )
    if args.json:
        json.dump(report.to_json(), sys.stdout, indent=2)
        print()
        return 0
    print(
        f"migrate {args.store}: {len(report.migrated)} migrated, "
        f"{len(report.stale)} stale, {len(report.corrupt)} corrupt, "
        f"{len(report.pruned)} pruned"
    )
    return 0


def _cmd_faults_ls(args: argparse.Namespace) -> int:
    duration = args.duration
    if args.json:
        payload = [
            {
                "name": preset.name,
                "summary": preset.summary,
                "schedule": preset.describe(duration),
            }
            for preset in PRESETS.values()
        ]
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(f"fault presets (schedules shown for a {duration:g}s run):")
    for preset in PRESETS.values():
        print(f"  {preset.name:12s} {preset.summary}")
        print(f"  {'':12s} {preset.describe(duration)}")
    print('combine presets with raw tokens: --faults "blackout,rtt@20+1=4"')
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code in ALL_CODES:
            print(f"{code}  {RULE_SUMMARIES[code]}")
        return 0
    return lint_main(args.paths, select=args.select or ())


def _add_experiment_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--setting", choices=("edge", "core"), default="core")
    p.add_argument("--flows", type=int, default=1000,
                   help="paper flow count (edge: actual count)")
    p.add_argument("--cca", default="newreno")
    p.add_argument("--rtt", type=float, default=0.020, help="base RTT in seconds")
    p.add_argument("--scale", type=int, default=50,
                   help="core-scale divisor (1 = the paper's full 10 Gbps)")
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--warmup", type=float, default=8.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--converge", action="store_true",
                   help="enable the paper's early-stop convergence rule")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="inject faults: comma-separated presets and/or "
                        "kind@time[+duration][=value] tokens "
                        "(see 'repro faults ls')")
    p.add_argument("--stall-budget", type=float, default=None, metavar="SECONDS",
                   help="arm the stall watchdog with this per-flow budget "
                        "in simulated seconds (implied, at its default, "
                        "by --faults)")
    p.add_argument("--max-events", type=int, default=None, metavar="N",
                   help="override the event-budget safety valve")
    p.add_argument("--mathis", action="store_true",
                   help="fit the Mathis constant from the run")
    p.add_argument("--profile", action="store_true",
                   help="profile the simulator (per-handler event counts "
                        "and wall time; results stay byte-identical)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="export a structured JSONL event trace "
                        "(cwnd/enqueue/drop/fault rows plus the run "
                        "health record) to FILE")
    p.add_argument("--json", action="store_true", help="emit JSON after the summary")
    p.add_argument("--store", nargs="?", const=DEFAULT_STORE, default=None,
                   metavar="DIR",
                   help="serve/persist the result via the run store at DIR "
                        f"(DIR defaults to {DEFAULT_STORE} when the flag is bare)")
    p.add_argument("--fresh", action="store_true",
                   help="with --store: ignore a stored result and re-simulate")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="with --store: per-run wall-clock limit")
    p.add_argument("--progress", action="store_true",
                   help="with --store: print per-job scheduler events")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="At-scale TCP throughput-model and fairness measurement harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one intra-CCA experiment")
    _add_experiment_args(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_compete = sub.add_parser("compete", help="run an inter-CCA competition")
    _add_experiment_args(p_compete)
    p_compete.add_argument("--ccas", nargs="+", default=["bbr", "newreno"])
    p_compete.set_defaults(fn=_cmd_compete)

    p_profile = sub.add_parser(
        "profile",
        help="run one experiment under the simulator profiler",
        description="Like 'repro run', but always profiles the event "
        "loop and prints the per-handler count/wall-time table. "
        "Profiling is observation-only, so the printed result is "
        "byte-identical to an unprofiled run of the same scenario.",
    )
    _add_experiment_args(p_profile)
    p_profile.add_argument("--top", type=int, default=None, metavar="N",
                           help="only show the N most expensive handlers")
    p_profile.set_defaults(fn=_cmd_profile)

    p_faults = sub.add_parser(
        "faults",
        help="inspect the fault-injection presets",
        description="Deterministic fault schedules for chaos runs "
        "(repro.faults); presets feed 'repro run --faults <name>'.",
    )
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)
    p_faults_ls = faults_sub.add_parser("ls", help="list named fault presets")
    p_faults_ls.add_argument("--duration", type=float, default=30.0,
                             help="scenario duration the example schedules "
                                  "are scaled to")
    p_faults_ls.add_argument("--json", action="store_true", help="emit JSON")
    p_faults_ls.set_defaults(fn=_cmd_faults_ls)

    p_bench = sub.add_parser(
        "bench",
        help="measure engine throughput (events/sec) on canonical workloads",
        description="Runs the fixed benchmark set from repro.bench and "
        "optionally writes BENCH_engine.json and/or gates against a "
        "committed baseline (CI's perf-smoke job). Benchmarking is "
        "observation-only: the simulated results themselves are pinned "
        "by the golden-run suite, not by this command.",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="shorter scenarios, one repeat (CI profile)")
    p_bench.add_argument("--repeats", type=int, default=None, metavar="N",
                         help="timing repeats per scenario, best-of "
                              "(default: 1 with --quick, else 2)")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="write the BENCH_engine.json document to FILE")
    p_bench.add_argument("--baseline", default=None, metavar="FILE",
                         help="compare against a committed bench JSON and "
                              "exit non-zero on regression")
    p_bench.add_argument("--fail-threshold", type=float, default=0.25,
                         metavar="R",
                         help="with --baseline: allowed fractional events/sec "
                              "regression before failing (default: 0.25)")
    p_bench.set_defaults(fn=_cmd_bench)

    p_models = sub.add_parser("models", help="print analytic model predictions")
    p_models.add_argument("--rtt", type=float, default=0.020)
    p_models.add_argument("--p", type=float, default=0.001)
    p_models.add_argument("--json", action="store_true")
    p_models.set_defaults(fn=_cmd_models)

    p_cache = sub.add_parser(
        "cache",
        help="inspect and maintain the content-addressed result store",
        description="Operations on a repro run store (see repro.runstore). "
        "The store location comes from --store, $REPRO_STORE, or "
        "benchmarks/_cache in that order.",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    def _add_store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                       help=f"store root (default: {DEFAULT_STORE})")
        p.add_argument("--json", action="store_true", help="emit JSON")

    p_ls = cache_sub.add_parser("ls", help="list stored results")
    _add_store_arg(p_ls)
    p_ls.set_defaults(fn=_cmd_cache_ls)

    p_info = cache_sub.add_parser("info", help="show one entry's metadata")
    p_info.add_argument("key", help="full key or unambiguous prefix")
    _add_store_arg(p_info)
    p_info.set_defaults(fn=_cmd_cache_info)

    p_gc = cache_sub.add_parser(
        "gc", help="delete temp leftovers, corrupt objects and stale versions"
    )
    _add_store_arg(p_gc)
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be removed without removing")
    p_gc.add_argument("--all-versions", action="store_true",
                      help="keep entries from older CACHE_VERSIONs")
    p_gc.set_defaults(fn=_cmd_cache_gc)

    p_migrate = cache_sub.add_parser(
        "migrate", help="import legacy md5-keyed pickles into the store"
    )
    _add_store_arg(p_migrate)
    p_migrate.add_argument("--legacy-dir", default=None, metavar="DIR",
                           help="directory holding <md5>.pkl files "
                                "(default: the store root)")
    p_migrate.add_argument("--legacy-version", type=int, default=CACHE_VERSION - 1,
                           help="CACHE_VERSION the legacy keys were minted with")
    p_migrate.add_argument("--prune", action="store_true",
                           help="delete the legacy files after processing")
    p_migrate.set_defaults(fn=_cmd_cache_migrate)

    p_lint = sub.add_parser(
        "lint",
        help="run the simulator-aware static analysis pass",
        description="AST lint rules for simulation code (RPR001..RPR006); "
        "exits non-zero when any unsuppressed finding remains.",
    )
    p_lint.add_argument("paths", nargs="*", default=["src", "benchmarks"],
                        help="files or directories to lint (default: src benchmarks)")
    p_lint.add_argument("--select", nargs="+", metavar="RPRxxx",
                        help="only report these rule codes")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print every rule code and exit")
    p_lint.set_defaults(fn=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
