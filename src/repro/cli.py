"""Command-line interface.

Run single experiments or sweeps from the shell::

    repro run --setting core --flows 3000 --cca bbr --scale 50 --duration 60
    repro run --setting edge --flows 30 --cca newreno
    repro compete --setting core --flows 1000 --ccas bbr cubic --scale 50
    repro models --rtt 0.02 --p 0.001

Output is a human-readable experiment summary plus optional JSON
(``--json``) for scripting.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Dict, List, Optional

from .analysis.mathis_fit import fit_mathis
from .core.experiment import run_experiment
from .core.results import ExperimentResult
from .core.scenarios import FlowGroup, Scenario, core_scale, edge_scale
from .lint import ALL_CODES, RULE_SUMMARIES
from .lint.runner import main as lint_main
from .models.cubic_model import cubic_throughput
from .models.mathis import mathis_throughput
from .models.padhye import padhye_throughput
from .units import MSS


def _base_scenario(args: argparse.Namespace) -> Scenario:
    if args.setting == "edge":
        return edge_scale(
            flows=args.flows,
            cca=args.cca,
            rtt=args.rtt,
            duration=args.duration,
            warmup=args.warmup,
            seed=args.seed,
        )
    return core_scale(
        flows=args.flows,
        cca=args.cca,
        rtt=args.rtt,
        scale=args.scale,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
    )


def _result_json(result: ExperimentResult) -> Dict[str, Any]:
    return {
        "scenario": dataclasses.asdict(result.scenario),
        "measured_duration": result.measured_duration,
        "utilization": result.utilization,
        "aggregate_loss_rate": result.aggregate_loss_rate,
        "jfi": result.jfi(),
        "shares": result.shares(),
        "flows": [
            {
                "flow_id": f.flow_id,
                "cca": f.cca,
                "goodput_bps": f.goodput_bps,
                "loss_rate": f.loss_rate,
                "halving_rate": f.halving_rate,
                "rtos": f.rtos,
            }
            for f in result.flows
        ],
    }


def _emit(result: ExperimentResult, args: argparse.Namespace) -> None:
    print(result.summary())
    if args.mathis:
        for interp in ("loss", "halving"):
            try:
                fit = fit_mathis(result.observations(), interp, MSS)
            except ValueError:
                print(f"mathis[{interp}]: no usable observations")
                continue
            print(
                f"mathis[{interp}]: C={fit.constant:.3f} "
                f"median_error={fit.median_error:.1%}"
            )
    if args.json:
        json.dump(_result_json(result), sys.stdout, indent=2)
        print()


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _base_scenario(args)
    result = run_experiment(scenario, convergence_check=args.converge)
    _emit(result, args)
    return 0


def _cmd_compete(args: argparse.Namespace) -> int:
    if len(args.ccas) < 2:
        print("compete needs at least two --ccas", file=sys.stderr)
        return 2
    base = _base_scenario(args)
    share = base.total_flows // len(args.ccas)
    if share < 1:
        print("not enough flows for the requested CCA mix", file=sys.stderr)
        return 2
    groups = tuple(FlowGroup(cca, share, args.rtt) for cca in args.ccas)
    scenario = base.with_overrides(
        groups=groups, name=f"compete-{'-'.join(args.ccas)}"
    )
    result = run_experiment(scenario, convergence_check=args.converge)
    _emit(result, args)
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    rows = [
        ("mathis (C=0.94)", mathis_throughput(MSS, args.rtt, args.p)),
        ("padhye/PFTK", padhye_throughput(MSS, args.rtt, args.p)),
        ("cubic", cubic_throughput(MSS, args.rtt, args.p)),
    ]
    print(f"model predictions for RTT={args.rtt * 1000:.0f}ms p={args.p}:")
    for name, rate in rows:
        print(f"  {name:18s} {rate / 1e6:10.3f} Mbps")
    if args.json:
        json.dump({name: rate for name, rate in rows}, sys.stdout, indent=2)
        print()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code in ALL_CODES:
            print(f"{code}  {RULE_SUMMARIES[code]}")
        return 0
    return lint_main(args.paths, select=args.select or ())


def _add_experiment_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--setting", choices=("edge", "core"), default="core")
    p.add_argument("--flows", type=int, default=1000,
                   help="paper flow count (edge: actual count)")
    p.add_argument("--cca", default="newreno")
    p.add_argument("--rtt", type=float, default=0.020, help="base RTT in seconds")
    p.add_argument("--scale", type=int, default=50,
                   help="core-scale divisor (1 = the paper's full 10 Gbps)")
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--warmup", type=float, default=8.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--converge", action="store_true",
                   help="enable the paper's early-stop convergence rule")
    p.add_argument("--mathis", action="store_true",
                   help="fit the Mathis constant from the run")
    p.add_argument("--json", action="store_true", help="emit JSON after the summary")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="At-scale TCP throughput-model and fairness measurement harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one intra-CCA experiment")
    _add_experiment_args(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_compete = sub.add_parser("compete", help="run an inter-CCA competition")
    _add_experiment_args(p_compete)
    p_compete.add_argument("--ccas", nargs="+", default=["bbr", "newreno"])
    p_compete.set_defaults(fn=_cmd_compete)

    p_models = sub.add_parser("models", help="print analytic model predictions")
    p_models.add_argument("--rtt", type=float, default=0.020)
    p_models.add_argument("--p", type=float, default=0.001)
    p_models.add_argument("--json", action="store_true")
    p_models.set_defaults(fn=_cmd_models)

    p_lint = sub.add_parser(
        "lint",
        help="run the simulator-aware static analysis pass",
        description="AST lint rules for simulation code (RPR001..RPR006); "
        "exits non-zero when any unsuppressed finding remains.",
    )
    p_lint.add_argument("paths", nargs="*", default=["src", "benchmarks"],
                        help="files or directories to lint (default: src benchmarks)")
    p_lint.add_argument("--select", nargs="+", metavar="RPRxxx",
                        help="only report these rule codes")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print every rule code and exit")
    p_lint.set_defaults(fn=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
