#!/usr/bin/env python
"""Regenerate the golden-run corpus (tests/golden/).

Re-runs every canonical golden scenario, rewrites
``tests/golden/hashes.json`` and the committed compressed traces, and
prints what changed relative to the previous corpus. Run this ONLY when
a simulation-behaviour change is intentional; a pure performance
refactor must leave every hash untouched (that is the point of the
corpus).

Usage::

    PYTHONPATH=src python tools/regen_golden.py [--check]

``--check`` regenerates nothing: it re-runs the scenarios and exits
non-zero if any digest differs from the committed corpus (same
comparison the tier-1 golden tests make, usable standalone in CI).
"""

from __future__ import annotations

import argparse
import gzip
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.goldens import (  # noqa: E402  (path bootstrap above)
    GOLDEN_FORMAT,
    TRACED_SCENARIOS,
    drift_report,
    golden_scenarios,
    run_golden,
    trace_digest,
)

GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "golden")
HASHES_PATH = os.path.join(GOLDEN_DIR, "hashes.json")
TRACES_DIR = os.path.join(GOLDEN_DIR, "traces")


def load_corpus() -> dict:
    if not os.path.exists(HASHES_PATH):
        return {"format": GOLDEN_FORMAT, "scenarios": {}}
    with open(HASHES_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify the committed corpus instead of rewriting it")
    args = parser.parse_args(argv)

    previous = load_corpus().get("scenarios", {})
    corpus: dict = {"format": GOLDEN_FORMAT, "scenarios": {}}
    failures = 0

    for name, scenario in golden_scenarios().items():
        traced = name in TRACED_SCENARIOS
        result, digest, text = run_golden(scenario, with_trace=traced)
        entry = {
            "result_sha256": digest,
            "events": result.events_processed,
            "queue_drops": result.queue_drops,
            "flows": len(result.flows),
            "measured_duration": result.measured_duration,
        }
        if text is not None:
            entry["trace_sha256"] = trace_digest(text)
        corpus["scenarios"][name] = entry

        old = previous.get(name)
        if old is None:
            status = "NEW"
        elif old.get("result_sha256") == digest:
            status = "unchanged"
        else:
            status = "CHANGED"
            failures += 1
            if args.check:
                print(drift_report(old, result))
        print(f"{name:20s} {digest[:16]}  events={result.events_processed:>8d}  {status}")

        if text is not None and not args.check:
            os.makedirs(TRACES_DIR, exist_ok=True)
            path = os.path.join(TRACES_DIR, f"{name}.jsonl.gz")
            # mtime=0 keeps the gzip bytes themselves reproducible, so
            # regenerating an unchanged trace never churns the diff.
            with gzip.GzipFile(path, "wb", mtime=0) as fh:
                fh.write(text.encode("utf-8"))

    if args.check:
        if failures:
            print(f"{failures} scenario(s) diverged from the committed corpus")
            return 1
        print("all golden digests match the committed corpus")
        return 0

    os.makedirs(GOLDEN_DIR, exist_ok=True)
    with open(HASHES_PATH, "w", encoding="utf-8") as fh:
        json.dump(corpus, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {HASHES_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
