"""Tests for the Ware et al. BBR-vs-loss-based share model."""

import pytest

from repro.models.ware_bbr import (
    EMPIRICAL_NEUTRAL_SHARE,
    predict_bbr_share,
    probe_sample_share,
    share_is_flow_count_invariant,
)


def test_neutral_band_returns_empirical_share():
    assert predict_bbr_share(1.0) == EMPIRICAL_NEUTRAL_SHARE
    assert predict_bbr_share(0.8) == EMPIRICAL_NEUTRAL_SHARE


def test_small_buffers_let_bbr_saturate():
    assert predict_bbr_share(0.1) == pytest.approx(1.0)
    assert predict_bbr_share(0.5) == pytest.approx(1.0)


def test_huge_buffers_starve_bbr():
    assert predict_bbr_share(5.0) < 0.05


def test_share_bounded():
    for q in (0.0, 0.3, 0.6, 1.0, 2.0, 10.0):
        assert 0.0 <= predict_bbr_share(q) <= 1.0


def test_model_is_flow_count_invariant():
    # The model's defining property, which the paper validates at scale.
    assert share_is_flow_count_invariant()


def test_probe_sample_share_components():
    # Window-limited regime: cwnd_gain*b/(1+q) binds for deep buffers.
    assert probe_sample_share(0.4, 1.0) == pytest.approx(0.4)
    # Pacing-limited regime: probe_gain*b binds for shallow buffers.
    assert probe_sample_share(0.4, 0.1) == pytest.approx(0.5)


def test_validation():
    with pytest.raises(ValueError):
        predict_bbr_share(-0.1)
    with pytest.raises(ValueError):
        probe_sample_share(-1.0, 1.0)
