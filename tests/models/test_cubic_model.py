"""Tests for the CUBIC response-function model."""

import pytest

from repro.models.cubic_model import (
    cubic_constant,
    cubic_reno_crossover_p,
    cubic_throughput,
)
from repro.models.mathis import mathis_throughput


def test_leading_constant_value():
    # (0.4 * 3.7 / 1.2)^(1/4) ~= 1.054 for RFC 8312 parameters.
    assert cubic_constant() == pytest.approx(1.054, rel=0.01)


def test_p_power_three_quarters():
    t1 = cubic_throughput(1448, 0.1, 0.001)
    t2 = cubic_throughput(1448, 0.1, 0.016)  # 16x the loss
    assert t1 / t2 == pytest.approx(16 ** 0.75, rel=1e-6)


def test_weak_rtt_dependence():
    t1 = cubic_throughput(1448, 0.02, 0.001)
    t2 = cubic_throughput(1448, 0.32, 0.001)  # 16x the RTT
    assert t1 / t2 == pytest.approx(16 ** 0.25, rel=1e-6)


def test_crossover_separates_regimes():
    """Below the crossover loss rate CUBIC beats Reno; above it the
    TCP-friendly region (Reno behaviour) governs."""
    import math

    rtt = 0.1
    p_star = cubic_reno_crossover_p(rtt)
    reno_c = math.sqrt(3.0 / 2.0)
    below = p_star / 10
    above = min(p_star * 10, 0.9)
    assert cubic_throughput(1448, rtt, below) > mathis_throughput(
        1448, rtt, below, c=reno_c
    )
    assert cubic_throughput(1448, rtt, above) < mathis_throughput(
        1448, rtt, above, c=reno_c
    )


def test_crossover_increases_with_rtt():
    # Longer RTTs expand CUBIC's advantage region.
    assert cubic_reno_crossover_p(0.2) > cubic_reno_crossover_p(0.02)


def test_validation():
    with pytest.raises(ValueError):
        cubic_throughput(1448, 0.0, 0.01)
    with pytest.raises(ValueError):
        cubic_throughput(1448, 0.1, 0.0)
    with pytest.raises(ValueError):
        cubic_constant(c=0.0)
    with pytest.raises(ValueError):
        cubic_reno_crossover_p(0.0)
