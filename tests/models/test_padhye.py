"""Tests for the PFTK (Padhye) throughput model."""

import pytest

from repro.models.mathis import mathis_throughput
from repro.models.padhye import padhye_throughput


def test_approaches_mathis_at_low_loss():
    """With negligible timeout probability the PFTK model reduces to the
    Mathis square-root law with C = sqrt(3/(2b))."""
    import math

    p = 1e-6
    b = 2
    pftk = padhye_throughput(1448, 0.1, p, rto_s=0.2, b=b)
    mathis = mathis_throughput(1448, 0.1, p, c=math.sqrt(3.0 / (2.0 * b)))
    assert pftk == pytest.approx(mathis, rel=0.01)


def test_timeouts_reduce_throughput_at_high_loss():
    low = padhye_throughput(1448, 0.1, 0.001)
    high = padhye_throughput(1448, 0.1, 0.1)
    assert high < low / 5


def test_window_cap():
    uncapped = padhye_throughput(1448, 0.1, 1e-5)
    capped = padhye_throughput(1448, 0.1, 1e-5, max_window_packets=10)
    assert capped == pytest.approx(10 / 0.1 * 1448 * 8)
    assert capped < uncapped


def test_monotone_in_p():
    ps = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.2]
    rates = [padhye_throughput(1448, 0.05, p) for p in ps]
    assert rates == sorted(rates, reverse=True)


def test_monotone_in_rtt():
    assert padhye_throughput(1448, 0.02, 0.01) > padhye_throughput(1448, 0.2, 0.01)


def test_validation():
    with pytest.raises(ValueError):
        padhye_throughput(1448, 0.0, 0.01)
    with pytest.raises(ValueError):
        padhye_throughput(1448, 0.1, 0.0)
    with pytest.raises(ValueError):
        padhye_throughput(1448, 0.1, 0.01, b=0)
    with pytest.raises(ValueError):
        padhye_throughput(1448, 0.1, 0.01, max_window_packets=0)
