"""Tests for the Mathis throughput model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.mathis import MATHIS_C_DELAYED_SACK, derive_constant, mathis_throughput


def test_known_value():
    # MSS=1448B, RTT=100ms, p=0.01, C=1: T = 1448*8/(0.1*0.1) bps.
    assert mathis_throughput(1448, 0.1, 0.01, c=1.0) == pytest.approx(1448 * 8 / 0.01)


def test_default_constant_is_mathis_094():
    assert MATHIS_C_DELAYED_SACK == 0.94


def test_inverse_sqrt_p_scaling():
    t1 = mathis_throughput(1448, 0.05, 0.01)
    t2 = mathis_throughput(1448, 0.05, 0.04)
    assert t1 / t2 == pytest.approx(2.0)


def test_inverse_rtt_scaling():
    t1 = mathis_throughput(1448, 0.02, 0.01)
    t2 = mathis_throughput(1448, 0.04, 0.01)
    assert t1 / t2 == pytest.approx(2.0)


def test_validation():
    with pytest.raises(ValueError):
        mathis_throughput(1448, 0.0, 0.01)
    with pytest.raises(ValueError):
        mathis_throughput(1448, 0.1, 0.0)
    with pytest.raises(ValueError):
        mathis_throughput(1448, 0.1, 1.5)


class TestDeriveConstant:
    def test_perfect_data_recovers_constant(self):
        rtts = [0.02, 0.05, 0.1]
        ps = [0.001, 0.004, 0.01]
        ts = [mathis_throughput(1448, r, p, c=1.3) for r, p in zip(rtts, ps)]
        assert derive_constant(ts, rtts, ps, 1448) == pytest.approx(1.3)

    def test_zero_p_observations_skipped(self):
        c = derive_constant(
            [mathis_throughput(1448, 0.02, 0.01, 2.0), 5e6],
            [0.02, 0.02],
            [0.01, 0.0],
            1448,
        )
        assert c == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            derive_constant([], [], [], 1448)

    def test_all_zero_p_raises(self):
        with pytest.raises(ValueError):
            derive_constant([1e6], [0.02], [0.0], 1448)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            derive_constant([1e6], [0.02, 0.03], [0.01], 1448)

    @given(st.floats(0.1, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_least_squares_is_exact_on_model_data(self, c):
        rtts = [0.01 * (i + 1) for i in range(8)]
        ps = [0.002 * (i + 1) for i in range(8)]
        ts = [mathis_throughput(1448, r, p, c) for r, p in zip(rtts, ps)]
        assert math.isclose(derive_constant(ts, rtts, ps, 1448), c, rel_tol=1e-9)
