"""Tests for unit conversion helpers."""

import pytest

from repro import units


def test_rate_conversions():
    assert units.kbps(5) == 5_000
    assert units.mbps(100) == 100_000_000
    assert units.gbps(10) == 10_000_000_000
    assert units.to_mbps(units.mbps(42)) == 42


def test_size_conversions():
    assert units.kilobytes(3) == 3_000
    assert units.megabytes(3) == 3_000_000


def test_time_conversions():
    assert units.ms(20) == 0.020
    assert units.us(500) == pytest.approx(0.0005)
    assert units.to_ms(0.1) == 100.0


def test_bdp():
    # 100 Mbps * 200 ms = 2.5 MB.
    assert units.bdp_bytes(units.mbps(100), 0.2) == 2_500_000
    assert units.bdp_packets(units.mbps(100), 0.2) == pytest.approx(2_500_000 / 1500)


def test_bdp_validation():
    with pytest.raises(ValueError):
        units.bdp_bytes(-1, 0.1)
    with pytest.raises(ValueError):
        units.bdp_packets(units.mbps(1), 0.1, packet_bytes=0)


def test_transmission_time():
    assert units.transmission_time(1500, units.mbps(12)) == pytest.approx(0.001)
    with pytest.raises(ValueError):
        units.transmission_time(1500, 0)


def test_paper_constants():
    assert units.MSS == 1448
    assert units.DATA_PACKET_BYTES == 1500
    assert units.ACK_PACKET_BYTES == 40
