"""Tests for scenario definitions and presets."""

import pickle

import pytest

from repro.core.scenarios import FlowGroup, Scenario, competition, core_scale, edge_scale
from repro.units import bdp_bytes, gbps, mbps, megabytes


class TestFlowGroup:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowGroup("bbr", 0)
        with pytest.raises(ValueError):
            FlowGroup("bbr", 1, rtt=0.0)

    def test_frozen(self):
        g = FlowGroup("bbr", 1)
        with pytest.raises(Exception):
            g.count = 2


class TestScenario:
    def base(self, **kw):
        defaults = dict(
            name="t",
            bottleneck_bw_bps=mbps(10),
            buffer_bytes=100_000,
            groups=(FlowGroup("newreno", 2),),
        )
        defaults.update(kw)
        return Scenario(**defaults)

    def test_total_flows(self):
        sc = self.base(groups=(FlowGroup("bbr", 3), FlowGroup("cubic", 4)))
        assert sc.total_flows == 7

    def test_buffer_bdp_fraction(self):
        sc = self.base(buffer_bytes=bdp_bytes(mbps(10), 0.2))
        assert sc.buffer_bdp_fraction == pytest.approx(1.0)

    def test_with_overrides(self):
        sc = self.base()
        sc2 = sc.with_overrides(seed=99)
        assert sc2.seed == 99 and sc.seed == 1
        assert sc2.name == sc.name

    def test_validation(self):
        with pytest.raises(ValueError):
            self.base(bottleneck_bw_bps=0)
        with pytest.raises(ValueError):
            self.base(buffer_bytes=0)
        with pytest.raises(ValueError):
            self.base(groups=())
        with pytest.raises(ValueError):
            self.base(warmup=40.0, duration=30.0)
        with pytest.raises(ValueError):
            self.base(stagger_max=-1.0)
        with pytest.raises(ValueError):
            self.base(ack_jitter_fraction=1.0)

    def test_picklable(self):
        sc = self.base()
        assert pickle.loads(pickle.dumps(sc)) == sc


class TestPresets:
    def test_edge_scale_matches_paper(self):
        sc = edge_scale(flows=30)
        assert sc.bottleneck_bw_bps == mbps(100)
        assert sc.buffer_bytes == megabytes(3)
        assert sc.total_flows == 30
        assert sc.groups[0].cca == "newreno"

    def test_core_scale_full_matches_paper(self):
        sc = core_scale(flows=5000, scale=1)
        assert sc.bottleneck_bw_bps == gbps(10)
        assert sc.total_flows == 5000
        # 1 BDP at 200 ms of 10 Gbps = 250 MB (the paper rounds to 375 MB
        # for its hardware; we use the exact rule-of-thumb value).
        assert sc.buffer_bytes == bdp_bytes(gbps(10), 0.2)

    def test_core_scale_scaling_preserves_per_flow_share(self):
        full = core_scale(flows=5000, scale=1)
        scaled = core_scale(flows=5000, scale=50)
        assert scaled.total_flows == 100
        per_flow_full = full.bottleneck_bw_bps / full.total_flows
        per_flow_scaled = scaled.bottleneck_bw_bps / scaled.total_flows
        assert per_flow_full == pytest.approx(per_flow_scaled)
        assert full.buffer_bdp_fraction == pytest.approx(scaled.buffer_bdp_fraction)

    def test_core_scale_validation(self):
        with pytest.raises(ValueError):
            core_scale(flows=1000, scale=0)
        with pytest.raises(ValueError):
            core_scale(flows=1001, scale=50)

    def test_competition_replaces_groups(self):
        base = core_scale(flows=1000, scale=50)
        sc = competition(
            base, (FlowGroup("bbr", 10), FlowGroup("cubic", 10)), name="mix"
        )
        assert sc.name == "mix"
        assert sc.total_flows == 20
        assert sc.bottleneck_bw_bps == base.bottleneck_bw_bps
