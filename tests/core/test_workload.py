"""Tests for dynamic (arriving/departing) workloads."""

import random

import pytest

from repro.core.scenarios import FlowGroup
from repro.core.workload import (
    DynamicWorkload,
    poisson_arrivals,
    run_dynamic_workload,
)
from repro.units import mbps


class TestPoissonArrivals:
    def test_rate_approximation(self):
        rng = random.Random(1)
        times = poisson_arrivals(50.0, 100.0, rng)
        assert 4000 < len(times) < 6000
        assert all(0 <= t < 100.0 for t in times)
        assert times == sorted(times)

    def test_validation(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0, rng)


def make_workload(**kw):
    defaults = dict(
        bottleneck_bw_bps=mbps(20),
        buffer_bytes=100_000,
        arrival_rate_per_s=3.0,
        flow_size_packets=100,
        rtt=0.02,
        duration=15.0,
        seed=4,
    )
    defaults.update(kw)
    return DynamicWorkload(**defaults)


class TestOfferedLoad:
    def test_computation(self):
        w = make_workload(arrival_rate_per_s=10.0, flow_size_packets=100)
        # 10 flows/s * 100 pkts * 1500 B * 8 = 12 Mbps offered on 20 Mbps.
        assert w.offered_load() == pytest.approx(0.6)


class TestRunDynamic:
    def test_underloaded_flows_complete(self):
        result = run_dynamic_workload(make_workload())
        assert result.flows, "arrivals expected"
        # Offered load ~18%: nearly everything that arrived early enough
        # should finish inside the run.
        early = [f for f in result.flows if f.start_time < 10.0]
        done = [f for f in early if f.completion_time is not None]
        assert len(done) / len(early) > 0.8
        for f in done:
            assert f.fct is not None and f.fct > 0
            assert f.completion_time >= f.start_time

    def test_deterministic(self):
        a = run_dynamic_workload(make_workload())
        b = run_dynamic_workload(make_workload())
        assert [f.completion_time for f in a.flows] == [
            f.completion_time for f in b.flows
        ]

    def test_cca_mix_round_robin(self):
        w = make_workload(
            cca_mix=(FlowGroup("newreno", 1), FlowGroup("cubic", 1)),
            duration=10.0,
        )
        result = run_dynamic_workload(w)
        ccas = {f.cca for f in result.flows}
        assert ccas == {"newreno", "cubic"}
        by_cca = result.fcts_by_cca()
        assert set(by_cca) <= {"newreno", "cubic"}

    def test_unknown_cca_rejected(self):
        w = make_workload(cca_mix=(FlowGroup("bogus", 1),))
        with pytest.raises(ValueError):
            run_dynamic_workload(w)

    def test_short_flows_finish_faster_than_long(self):
        result = run_dynamic_workload(make_workload(duration=20.0))
        done = result.completed()
        short = [f.fct for f in done if f.size_packets <= 20]
        long = [f.fct for f in done if f.size_packets >= 300]
        if short and long:
            assert min(short) < max(long)

    def test_completion_fraction_bounds(self):
        result = run_dynamic_workload(make_workload(duration=8.0))
        assert 0.0 <= result.completion_fraction() <= 1.0
