"""Tests for result containers and their derived metrics."""

import pytest

from repro.core.results import ExperimentResult, FlowResult
from repro.core.scenarios import FlowGroup, Scenario
from repro.units import mbps


def flow(flow_id=0, cca="newreno", goodput=1e6, **kw):
    defaults = dict(
        flow_id=flow_id,
        cca=cca,
        base_rtt=0.02,
        measured_rtt=0.05,
        goodput_bps=goodput,
        delivered_packets=1000,
        packets_sent=1010,
        retransmits=10,
        halvings=4,
        rtos=1,
        queue_drops=10,
        queue_arrivals=990,
    )
    defaults.update(kw)
    return FlowResult(**defaults)


def result(flows):
    sc = Scenario(
        name="t",
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=100_000,
        groups=(FlowGroup("newreno", max(1, len(flows))),),
    )
    return ExperimentResult(
        scenario=sc,
        flows=flows,
        measured_duration=10.0,
        queue_drops=sum(f.queue_drops for f in flows),
        queue_arrivals=sum(f.queue_arrivals for f in flows),
    )


class TestFlowResult:
    def test_congestion_events(self):
        assert flow().congestion_events == 5

    def test_loss_rate(self):
        f = flow()
        assert f.loss_rate == pytest.approx(10 / 1000)

    def test_loss_rate_no_traffic(self):
        f = flow(queue_drops=0, queue_arrivals=0)
        assert f.loss_rate == 0.0

    def test_halving_rate(self):
        assert flow().halving_rate == pytest.approx(5 / 1000)
        assert flow(delivered_packets=0).halving_rate == 0.0

    def test_observation_uses_measured_rtt(self):
        obs = flow().observation()
        assert obs.rtt_s == 0.05
        assert obs.loss_rate == pytest.approx(0.01)
        assert obs.halving_rate == pytest.approx(0.005)

    def test_observation_falls_back_to_base_rtt(self):
        obs = flow(measured_rtt=None).observation()
        assert obs.rtt_s == 0.02


class TestExperimentResult:
    def test_aggregates(self):
        r = result([flow(0, goodput=2e6), flow(1, goodput=6e6)])
        assert r.aggregate_goodput_bps == 8e6
        assert r.aggregate_loss_rate == pytest.approx(20 / 2000)
        assert r.total_congestion_events == 10

    def test_jfi_whole_and_per_group(self):
        r = result(
            [
                flow(0, cca="bbr", goodput=9e6),
                flow(1, cca="cubic", goodput=1e6),
                flow(2, cca="cubic", goodput=1e6),
            ]
        )
        assert r.jfi("cubic") == pytest.approx(1.0)
        assert r.jfi() < 0.7
        with pytest.raises(ValueError):
            r.jfi("vegas")

    def test_shares(self):
        r = result([flow(0, cca="bbr", goodput=3e6), flow(1, cca="cubic", goodput=1e6)])
        shares = r.shares()
        assert shares["bbr"] == pytest.approx(0.75)
        assert shares["cubic"] == pytest.approx(0.25)

    def test_utilization(self):
        r = result([flow(0, goodput=mbps(10) * (1448 / 1500))])
        assert r.utilization == pytest.approx(1.0)

    def test_flows_of(self):
        r = result([flow(0, cca="bbr"), flow(1, cca="cubic")])
        assert [f.flow_id for f in r.flows_of("bbr")] == [0]

    def test_observations_length(self):
        r = result([flow(0), flow(1)])
        assert len(r.observations()) == 2

    def test_summary_mentions_groups(self):
        r = result([flow(0, cca="bbr"), flow(1, cca="cubic")])
        text = r.summary()
        assert "bbr" in text and "cubic" in text
        assert "util" in text
