"""Tests for the experiment runner (small, fast scenarios)."""

import pytest

from repro.core.experiment import run_experiment
from repro.core.scenarios import FlowGroup, Scenario
from repro.units import mbps


def tiny_scenario(**kw):
    defaults = dict(
        name="tiny",
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=100_000,
        groups=(FlowGroup("newreno", 2, 0.02),),
        duration=4.0,
        warmup=1.0,
        stagger_max=0.5,
        seed=7,
    )
    defaults.update(kw)
    return Scenario(**defaults)


def test_runs_and_measures(sim=None):
    result = run_experiment(tiny_scenario())
    assert result.measured_duration == pytest.approx(3.0)
    assert len(result.flows) == 2
    assert result.aggregate_goodput_bps > mbps(8)
    assert 0.9 < result.utilization < 1.1


def test_deterministic_given_seed():
    a = run_experiment(tiny_scenario())
    b = run_experiment(tiny_scenario())
    assert [f.goodput_bps for f in a.flows] == [f.goodput_bps for f in b.flows]
    assert a.queue_drops == b.queue_drops


def test_seed_changes_outcome():
    a = run_experiment(tiny_scenario(seed=1))
    b = run_experiment(tiny_scenario(seed=2))
    assert [f.goodput_bps for f in a.flows] != [f.goodput_bps for f in b.flows]


def test_flow_results_carry_cca_names():
    sc = tiny_scenario(
        groups=(FlowGroup("newreno", 1, 0.02), FlowGroup("cubic", 1, 0.02))
    )
    result = run_experiment(sc)
    assert sorted(f.cca for f in result.flows) == ["cubic", "newreno"]


def test_mixed_rtts_measured():
    sc = tiny_scenario(
        groups=(FlowGroup("newreno", 1, 0.01), FlowGroup("newreno", 1, 0.08)),
        duration=5.0,
    )
    result = run_experiment(sc)
    rtts = sorted(f.measured_rtt for f in result.flows)
    assert rtts[0] < rtts[1]


def test_drop_times_recording_toggle():
    sc = tiny_scenario(buffer_bytes=20_000)  # small buffer -> drops
    with_times = run_experiment(sc, record_drop_times=True)
    without = run_experiment(sc, record_drop_times=False)
    assert with_times.queue_drops > 0
    assert len(with_times.drop_times) == with_times.queue_drops
    assert without.drop_times == []
    assert without.queue_drops == with_times.queue_drops


def test_warmup_excluded_from_counters():
    """All warm-up drops/arrivals are excluded from the measured window."""
    sc = tiny_scenario(buffer_bytes=20_000, warmup=2.0, duration=5.0)
    result = run_experiment(sc)
    assert all(t >= 2.0 for t in result.drop_times)


def test_convergence_check_stops_early():
    sc = tiny_scenario(duration=20.0, warmup=1.0)
    # AIMD sawtooth keeps a small link's rate fluctuating a few percent,
    # so use a 5% band (the paper's 1% is for 20-minute windows).
    eager = run_experiment(sc, convergence_check=True, convergence_tolerance=0.05)
    assert eager.measured_duration < 19.0
    assert eager.aggregate_goodput_bps > mbps(8)


def test_convergence_check_runs_full_when_unstable():
    sc = tiny_scenario(duration=6.0, warmup=1.0)
    result = run_experiment(
        sc, convergence_check=True, convergence_tolerance=1e-9
    )
    assert result.measured_duration == pytest.approx(5.0)


def test_unknown_cca_rejected():
    sc = tiny_scenario(groups=(FlowGroup("warpdrive", 1),))
    with pytest.raises(ValueError):
        run_experiment(sc)


def test_red_queue_option():
    sc = tiny_scenario(use_red_queue=True, duration=3.0)
    result = run_experiment(sc)
    assert result.aggregate_goodput_bps > 0


def test_bbr_flows_get_distinct_rngs():
    sc = tiny_scenario(groups=(FlowGroup("bbr", 2, 0.02),), duration=5.0)
    result = run_experiment(sc)
    assert all(f.goodput_bps > 0 for f in result.flows)
