"""Tests for the sweep runner."""

from repro.core.scenarios import FlowGroup, Scenario
from repro.core.sweep import run_sweep
from repro.units import mbps


def scenarios(n):
    return [
        Scenario(
            name=f"s{i}",
            bottleneck_bw_bps=mbps(10),
            buffer_bytes=100_000,
            groups=(FlowGroup("newreno", 1, 0.02),),
            duration=2.0,
            warmup=0.5,
            stagger_max=0.0,
            seed=i,
        )
        for i in range(n)
    ]


def test_empty_sweep():
    assert run_sweep([]) == []


def test_inline_sweep_preserves_order():
    scs = scenarios(3)
    results = run_sweep(scs, parallel=1)
    assert [r.scenario.name for r in results] == ["s0", "s1", "s2"]
    assert all(r.aggregate_goodput_bps > 0 for r in results)


def test_progress_callback():
    seen = []
    run_sweep(scenarios(2), parallel=1, progress=lambda r: seen.append(r.scenario.name))
    assert seen == ["s0", "s1"]


def test_parallel_pool_matches_inline():
    scs = scenarios(2)
    inline = run_sweep(scs, parallel=1)
    pooled = run_sweep(scs, parallel=2)
    assert [r.queue_drops for r in inline] == [r.queue_drops for r in pooled]
    assert [
        [f.goodput_bps for f in r.flows] for r in inline
    ] == [[f.goodput_bps for f in r.flows] for r in pooled]
