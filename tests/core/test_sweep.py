"""Tests for the sweep runner."""

from repro.core.scenarios import FlowGroup, Scenario
from repro.core.sweep import run_sweep
from repro.units import mbps


def scenarios(n):
    return [
        Scenario(
            name=f"s{i}",
            bottleneck_bw_bps=mbps(10),
            buffer_bytes=100_000,
            groups=(FlowGroup("newreno", 1, 0.02),),
            duration=2.0,
            warmup=0.5,
            stagger_max=0.0,
            seed=i,
        )
        for i in range(n)
    ]


def test_empty_sweep():
    assert run_sweep([]) == []


def test_inline_sweep_preserves_order():
    scs = scenarios(3)
    results = run_sweep(scs, parallel=1)
    assert [r.scenario.name for r in results] == ["s0", "s1", "s2"]
    assert all(r.aggregate_goodput_bps > 0 for r in results)


def test_progress_callback():
    seen = []
    run_sweep(scenarios(2), parallel=1, progress=lambda r: seen.append(r.scenario.name))
    assert seen == ["s0", "s1"]


def test_parallel_pool_matches_inline():
    scs = scenarios(2)
    inline = run_sweep(scs, parallel=1)
    pooled = run_sweep(scs, parallel=2)
    assert [r.queue_drops for r in inline] == [r.queue_drops for r in pooled]
    assert [
        [f.goodput_bps for f in r.flows] for r in inline
    ] == [[f.goodput_bps for f in r.flows] for r in pooled]


def test_parallel_failure_preserves_completed_results():
    import pytest

    from repro.runstore import SweepError

    good = scenarios(2)
    bad = Scenario(
        name="bad",
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=100_000,
        groups=(FlowGroup("no-such-cca", 1, 0.02),),
        duration=2.0,
        warmup=0.5,
        stagger_max=0.0,
        seed=0,
    )
    with pytest.raises(SweepError) as excinfo:
        run_sweep([good[0], bad, good[1]], parallel=2)
    err = excinfo.value
    # One deterministic failure, never retried; the other results survive.
    assert [f.name for f in err.failures] == ["bad"]
    assert err.failures[0].kind == "error"
    assert "unknown CCA" in err.failures[0].error
    assert err.results[0] is not None and err.results[2] is not None
    assert err.results[1] is None


def test_sweep_with_store_reuses_results(tmp_path):
    from repro.runstore import RunStore

    store = RunStore(str(tmp_path / "store"))
    scs = scenarios(2)
    first = run_sweep(scs, parallel=1, store=store)

    events = []
    second = run_sweep(scs, parallel=1, store=store, on_event=events.append)
    assert [e.kind for e in events] == ["hit", "hit"]
    assert [r.queue_drops for r in first] == [r.queue_drops for r in second]

    # Old-style progress callbacks still receive ExperimentResult objects.
    seen = []
    run_sweep(scs, parallel=1, store=store, progress=lambda r: seen.append(r.scenario.name))
    assert seen == ["s0", "s1"]
