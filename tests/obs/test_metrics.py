"""Tests for the bounded-memory metrics primitives."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)


def test_counter_monotonic():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.to_json() == {"type": "counter", "value": 5}


def test_gauge_last_write_wins():
    g = Gauge()
    g.set(3.5)
    g.set(-1.0)
    assert g.value == -1.0


def test_histogram_bucketing_is_inclusive_on_upper_edges():
    h = Histogram(bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 2.0, 3.0, 4.0, 100.0):
        h.observe(value)
    # buckets: <=1, <=2, <=4, overflow
    assert h.counts == [2, 1, 2, 1]
    assert h.count == 6
    assert h.min == 0.5
    assert h.max == 100.0
    assert h.mean == pytest.approx(110.5 / 6)


def test_histogram_quantiles_bucket_precision():
    h = Histogram(bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 0.6, 0.7, 3.0):
        h.observe(value)
    assert h.quantile(0.5) == 1.0   # upper edge of the containing bucket
    assert h.quantile(1.0) == 4.0
    h.observe(50.0)
    assert h.quantile(1.0) == 50.0  # overflow bucket answers with the max
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=())
    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 1.0))


def test_timeseries_keeps_everything_below_capacity():
    ts = TimeSeries(capacity=100)
    for i in range(50):
        ts.append(i * 0.1, i)
    assert len(ts) == 50
    assert ts.items()[0] == (0.0, 0)


def test_timeseries_decimates_and_stays_bounded():
    ts = TimeSeries(capacity=16)
    for i in range(10_000):
        ts.append(float(i), i)
    assert len(ts) <= 16
    assert ts.offered == 10_000
    # Coverage spans the whole series, uniformly thinned.
    assert ts.times[0] == 0.0
    assert ts.times[-1] >= 10_000 - ts.stride
    assert ts.times == sorted(ts.times)


def test_timeseries_initial_decimation():
    ts = TimeSeries(capacity=1024, decimation=10)
    for i in range(100):
        ts.append(float(i), i)
    assert ts.times == [float(i) for i in range(0, 100, 10)]


def test_timeseries_validation():
    with pytest.raises(ValueError):
        TimeSeries(capacity=1)
    with pytest.raises(ValueError):
        TimeSeries(decimation=0)


def test_registry_get_or_create_shares_instances():
    reg = MetricsRegistry()
    assert reg.counter("drops") is reg.counter("drops")
    reg.counter("drops").inc()
    assert reg["drops"].value == 1
    assert "drops" in reg
    assert reg.names() == ["drops"]


def test_registry_rejects_kind_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_registry_to_json_walks_everything():
    reg = MetricsRegistry()
    reg.counter("a").inc(2)
    reg.gauge("b").set(1.5)
    reg.histogram("c").observe(3.0)
    reg.timeseries("d").append(0.1, 7)
    dump = reg.to_json()
    assert set(dump) == {"a", "b", "c", "d"}
    assert dump["a"] == {"type": "counter", "value": 2}
    assert dump["d"]["times"] == [0.1]
