"""Tests for the simulator profiler, including its determinism contract."""

import pickle

from repro.core.experiment import run_experiment
from repro.core.scenarios import FlowGroup, Scenario
from repro.obs.profiler import SimProfiler, handler_name
from repro.sim.engine import Simulator
from repro.units import mbps


def tiny_scenario(**kw):
    defaults = dict(
        name="tiny-profiled",
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=100_000,
        groups=(FlowGroup("newreno", 2, 0.02),),
        duration=4.0,
        warmup=1.0,
        stagger_max=0.5,
        seed=7,
    )
    defaults.update(kw)
    return Scenario(**defaults)


def test_handler_name_prefers_qualname():
    def local_handler():
        pass

    assert "local_handler" in handler_name(local_handler)

    class Nameless:
        pass

    # Instances carry no __qualname__; the label falls back to the type.
    assert handler_name(Nameless()) == "Nameless"


def test_profiler_counts_engine_events():
    sim = Simulator()
    profiler = SimProfiler().install(sim)
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 5:
            sim.schedule(0.1, tick)

    sim.schedule(0.1, tick)
    sim.run()
    assert len(ticks) == 5
    assert profiler.events == 5
    (profile,) = profiler.handlers()
    assert profile.count == 5
    assert "tick" in profile.name
    assert profile.wall_seconds >= 0.0
    assert profiler.to_json()["events"] == 5


def test_profiler_step_path_also_records():
    sim = Simulator()
    profiler = SimProfiler().install(sim)
    sim.schedule(0.1, lambda: None)
    assert sim.step()
    assert profiler.events == 1


def test_report_renders_and_truncates():
    sim = Simulator()
    profiler = SimProfiler().install(sim)

    def a():
        pass

    def b():
        pass

    sim.schedule(0.1, a)
    sim.schedule(0.2, b)
    sim.run()
    report = profiler.report(top=1)
    assert "profile: 2 events" in report
    assert "1 more handler" in report
    full = profiler.report()
    assert "a" in full and "b" in full


def test_profiled_run_is_byte_identical():
    # The acceptance bar for the whole observability layer: profiling
    # is observation-only, so the pickled ExperimentResult must match
    # an unprofiled run bit for bit.
    plain = run_experiment(tiny_scenario())
    profiler = SimProfiler()
    profiled = run_experiment(tiny_scenario(), profiler=profiler)
    assert profiler.events > 0
    assert pickle.dumps(plain) == pickle.dumps(profiled)
