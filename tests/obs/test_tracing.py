"""Tests for structured JSONL trace export."""

import io

import pytest

from repro.core.results import RunHealth
from repro.obs.bus import EventBus
from repro.obs.tracing import (
    TraceRecorder,
    health_rows,
    read_jsonl,
    write_jsonl,
    write_trace_jsonl,
)
from repro.sim.packet import Packet
from repro.sim.queue import DropTailQueue
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


class _Result:
    def __init__(self, health):
        self.health = health


def test_rejects_unknown_topics_and_bad_cap():
    bus = EventBus()
    with pytest.raises(ValueError):
        TraceRecorder(bus, topics=("cwnd", "nope"))
    with pytest.raises(ValueError):
        TraceRecorder(bus, max_events=0)


def test_records_cwnd_rows_with_warmup_cut(sim):
    bus = EventBus()
    recorder = TraceRecorder(bus, topics=("cwnd",), start_time=0.05)
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=40)
    bus.bind_sender(sender)
    sender.start()
    sim.run(until=5.0)
    assert recorder.events
    assert all(row["t"] >= 0.05 for row in recorder.events)
    row = recorder.events[0]
    assert row["topic"] == "cwnd"
    assert row["flow"] == 0
    assert row["kind"] in ("ack", "loss_event", "rto")
    assert recorder.summary()["by_topic"]["cwnd"] == len(recorder.events)


def test_records_queue_and_fault_rows():
    bus = EventBus()
    recorder = TraceRecorder(bus)
    queue = DropTailQueue(2000)
    bus.bind_queue(queue)
    for seq in range(3):
        queue.offer(0.1, Packet(flow_id=4, seq=seq, size=1000))
    bus.publish("fault", 0.2, "link down")
    topics = [row["topic"] for row in recorder.events]
    assert topics == ["enqueue", "enqueue", "drop", "fault"]
    assert recorder.events[2]["flow"] == 4
    assert recorder.events[3]["desc"] == "link down"


def test_fault_rows_are_never_warmup_cut():
    bus = EventBus()
    recorder = TraceRecorder(bus, start_time=10.0)
    bus.publish("fault", 0.5, "early fault")
    assert recorder.events == [{"t": 0.5, "topic": "fault", "desc": "early fault"}]


def test_max_events_caps_memory():
    bus = EventBus()
    recorder = TraceRecorder(bus, topics=("fault",), max_events=2)
    for i in range(5):
        bus.publish("fault", float(i), f"f{i}")
    assert len(recorder.events) == 2
    assert recorder.dropped_events == 3
    assert recorder.summary()["dropped"] == 3


def test_jsonl_round_trip():
    rows = [{"t": 1.0, "topic": "fault", "desc": "x"}, {"t": 2.0, "topic": "cwnd"}]
    buf = io.StringIO()
    assert write_jsonl(rows, buf) == 2
    buf.seek(0)
    assert read_jsonl(buf) == rows


def test_write_trace_jsonl_appends_health(tmp_path):
    bus = EventBus()
    recorder = TraceRecorder(bus, topics=("fault",))
    bus.publish("fault", 1.0, "link down")
    health = RunHealth(
        ok=False,
        reason="stall",
        truncated_at=9.0,
        stalled_flows=[1, 2],
        fault_timeline=[(1.0, "link down")],
    )
    dest = str(tmp_path / "trace.jsonl")
    written = write_trace_jsonl(recorder, dest, result=_Result(health))
    rows = read_jsonl(dest)
    assert written == len(rows) == 3  # fault event + health row + timeline row
    health_row = rows[1]
    assert health_row["topic"] == "health"
    assert health_row["reason"] == "stall"
    assert health_row["stalled_flows"] == [1, 2]
    assert rows[2] == {"t": 1.0, "topic": "fault", "desc": "link down"}


def test_health_rows_empty_without_health():
    assert health_rows(_Result(None)) == []
