"""Tests for the multi-subscriber event bus."""

import pytest

from repro.obs.bus import TOPICS, EventBus
from repro.sim.packet import Packet
from repro.sim.queue import DropTailQueue
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


def test_unknown_topic_rejected():
    bus = EventBus()
    with pytest.raises(ValueError):
        bus.subscribe("nope", lambda now: None)
    with pytest.raises(ValueError):
        bus.publish("nope", 0.0)


def test_publish_reaches_subscribers_in_order():
    bus = EventBus()
    seen = []
    bus.subscribe("fault", lambda now, desc: seen.append(("a", now, desc)))
    bus.subscribe("fault", lambda now, desc: seen.append(("b", now, desc)))
    bus.publish("fault", 1.5, "link down")
    assert seen == [("a", 1.5, "link down"), ("b", 1.5, "link down")]


def test_unsubscribe_and_introspection():
    bus = EventBus()

    def handler(now, desc):
        pass

    assert not bus.has_subscribers("fault")
    bus.subscribe("fault", handler)
    assert bus.has_subscribers("fault")
    assert bus.subscribers("fault") == (handler,)
    bus.unsubscribe("fault", handler)
    assert not bus.has_subscribers("fault")
    with pytest.raises(ValueError):
        bus.unsubscribe("fault", handler)


def test_bind_sender_fans_out_cwnd_events(sim):
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=20)
    bus = EventBus()
    bus.bind_sender(sender)
    all_events, mine, others = [], [], []
    bus.subscribe("cwnd", lambda now, fid, kind, cwnd: all_events.append(kind))
    bus.subscribe("cwnd", lambda now, fid, kind, cwnd: mine.append(kind), flow=0)
    bus.subscribe("cwnd", lambda now, fid, kind, cwnd: others.append(kind), flow=9)
    sender.start()
    sim.run(until=5.0)
    assert sender.completed
    assert all_events == mine  # wildcard and per-flow see the same stream
    assert "ack" in all_events
    assert others == []  # per-flow filtering really filters


def test_bind_sender_projects_loss_and_rto_topics(sim):
    # Drop one early packet so fast recovery produces a loss_event.
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=60, drop_indices=(10,))
    bus = EventBus()
    bus.bind_sender(sender)
    kinds, losses = [], []
    bus.subscribe("cwnd", lambda now, fid, kind, cwnd: kinds.append(kind))
    bus.subscribe("loss", lambda now, fid, cwnd: losses.append((fid, cwnd)))
    sender.start()
    sim.run(until=10.0)
    assert kinds.count("loss_event") == len(losses)
    assert len(losses) >= 1
    assert all(fid == 0 for fid, _ in losses)


def test_late_subscription_still_delivers(sim):
    # Subscribing after bind_sender() must work: forwarders capture the
    # subscriber lists by identity, not by snapshot.
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=500)
    bus = EventBus()
    bus.bind_sender(sender)
    seen = []
    sender.start()
    sim.run(until=0.03)
    assert not sender.completed
    bus.subscribe("cwnd", lambda now, fid, kind, cwnd: seen.append(kind))
    sim.run(until=5.0)
    assert sender.completed
    assert seen  # events after the late subscription were delivered


def test_bind_queue_forwards_enqueue_and_drop():
    queue = DropTailQueue(3000)
    bus = EventBus()
    bus.bind_queue(queue)
    enqueued, dropped = [], []
    bus.subscribe("enqueue", lambda now, pkt: enqueued.append(pkt.seq))
    bus.subscribe("drop", lambda now, pkt: dropped.append(pkt.seq))
    for seq in range(4):
        queue.offer(0.5, Packet(flow_id=0, seq=seq, size=1000))
    assert enqueued == [0, 1, 2]
    assert dropped == [3]


def test_all_topics_are_subscribable():
    bus = EventBus()
    for topic in TOPICS:
        bus.subscribe(topic, lambda now, *payload: None)
        assert bus.has_subscribers(topic)
