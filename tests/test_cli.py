"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_models_command(capsys):
    code, out = run_cli(capsys, "models", "--rtt", "0.02", "--p", "0.001")
    assert code == 0
    assert "mathis" in out and "cubic" in out and "Mbps" in out


def test_models_json(capsys):
    code, out = run_cli(capsys, "models", "--json")
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    assert "cubic" in payload


def test_run_edge_small(capsys):
    code, out = run_cli(
        capsys,
        "run", "--setting", "edge", "--flows", "2", "--duration", "3",
        "--warmup", "1", "--mathis",
    )
    assert code == 0
    assert "util" in out
    assert "mathis[" in out


def test_run_core_scaled_json(capsys):
    code, out = run_cli(
        capsys,
        "run", "--setting", "core", "--flows", "1000", "--scale", "500",
        "--duration", "3", "--warmup", "1", "--json",
    )
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    assert payload["scenario"]["groups"][0]["count"] == 2
    assert len(payload["flows"]) == 2


def test_compete_command(capsys):
    code, out = run_cli(
        capsys,
        "compete", "--setting", "edge", "--flows", "4",
        "--ccas", "cubic", "newreno", "--duration", "3", "--warmup", "1",
    )
    assert code == 0
    assert "cubic" in out and "newreno" in out


def test_compete_needs_two_ccas(capsys):
    code = main(["compete", "--ccas", "bbr", "--duration", "2", "--warmup", "1"])
    assert code == 2


def test_compete_needs_enough_flows():
    code = main(
        ["compete", "--setting", "edge", "--flows", "1",
         "--ccas", "bbr", "cubic", "--duration", "2", "--warmup", "1"]
    )
    assert code == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lint_list_rules(capsys):
    code, out = run_cli(capsys, "lint", "--list-rules")
    assert code == 0
    assert "RPR001" in out and "RPR006" in out


def test_lint_flags_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    code, out = run_cli(capsys, "lint", str(bad))
    assert code == 1
    assert "RPR001" in out


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("def f(sim):\n    return sim.now\n")
    code, out = run_cli(capsys, "lint", str(good))
    assert code == 0
    assert "clean" in out


def test_lint_select_filters_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f(log=[]):\n    return time.time()\n")
    code, out = run_cli(capsys, "lint", str(bad), "--select", "RPR005")
    assert code == 1
    assert "RPR005" in out and "RPR001" not in out


def test_lint_unknown_select_code_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    code = main(["lint", str(bad), "--select", "RPR123"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule code" in err


def test_lint_missing_path_is_usage_error(tmp_path, capsys):
    code = main(["lint", str(tmp_path / "no_such_dir")])
    err = capsys.readouterr().err
    assert code == 2
    assert "no such file or directory" in err

def test_faults_ls(capsys):
    code, out = run_cli(capsys, "faults", "ls")
    assert code == 0
    for name in ("blackout", "flap", "rtt-spike", "burst-loss"):
        assert name in out


def test_faults_ls_json(capsys):
    code, out = run_cli(capsys, "faults", "ls", "--json", "--duration", "12")
    assert code == 0
    payload = json.loads(out[out.index("["):])
    assert {entry["name"] for entry in payload} == {
        "blackout", "flap", "rtt-spike", "burst-loss",
    }
    for entry in payload:
        assert entry["schedule"]  # every preset expands to >=1 event


def test_run_with_faults_reports_health(capsys):
    code, out = run_cli(
        capsys,
        "run", "--setting", "edge", "--flows", "2", "--duration", "6",
        "--warmup", "1", "--faults", "down@2+1", "--json",
    )
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    health = payload["health"]
    assert health["ok"] is True
    assert [entry for _, entry in health["fault_timeline"]] == [
        "link down", "link up",
    ]
    assert payload["scenario"]["faults"]


def test_run_without_faults_has_null_health(capsys):
    code, out = run_cli(
        capsys,
        "run", "--setting", "edge", "--flows", "2", "--duration", "3",
        "--warmup", "1", "--json",
    )
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    assert payload["health"] is None


def test_run_faults_with_stall_budget_truncates_dead_run(capsys):
    code, out = run_cli(
        capsys,
        "run", "--setting", "edge", "--flows", "2", "--duration", "60",
        "--warmup", "1", "--faults", "down@2", "--stall-budget", "6",
        "--json",
    )
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    health = payload["health"]
    assert health["ok"] is False
    assert health["reason"] == "stall"
    assert health["stalled_flows"] == [0, 1]
    assert health["truncated_at"] < 60.0


def test_run_bad_fault_spec_is_usage_error(capsys):
    with pytest.raises(SystemExit):
        main([
            "run", "--setting", "edge", "--flows", "2", "--duration", "3",
            "--warmup", "1", "--faults", "asteroid@1",
        ])


def test_run_with_profile_prints_report(capsys):
    code, out = run_cli(
        capsys,
        "run", "--setting", "edge", "--flows", "2", "--duration", "3",
        "--warmup", "1", "--profile",
    )
    assert code == 0
    assert "profile:" in out
    assert "handler" in out


def test_profile_subcommand(capsys):
    code, out = run_cli(
        capsys,
        "profile", "--setting", "edge", "--flows", "2", "--duration", "3",
        "--warmup", "1", "--top", "3",
    )
    assert code == 0
    assert "profile:" in out
    assert "ev/s" in out


def test_run_with_trace_writes_jsonl(tmp_path, capsys):
    from repro.obs.tracing import read_jsonl

    dest = str(tmp_path / "trace.jsonl")
    code, _ = run_cli(
        capsys,
        "run", "--setting", "edge", "--flows", "2", "--duration", "3",
        "--warmup", "1", "--trace", dest,
    )
    assert code == 0
    rows = read_jsonl(dest)
    assert rows
    topics = {row["topic"] for row in rows}
    assert "cwnd" in topics
    # Warm-up cut applies to the trace.
    assert all(row["t"] >= 1.0 for row in rows if "t" in row)


def test_profile_and_trace_reject_store(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "run", "--setting", "edge", "--flows", "2", "--duration", "2",
            "--warmup", "1", "--profile", "--store", str(tmp_path / "s"),
        ])
    code = main([
        "profile", "--setting", "edge", "--flows", "2", "--duration", "2",
        "--warmup", "1", "--store", str(tmp_path / "s"),
    ])
    assert code == 2
