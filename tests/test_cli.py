"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_models_command(capsys):
    code, out = run_cli(capsys, "models", "--rtt", "0.02", "--p", "0.001")
    assert code == 0
    assert "mathis" in out and "cubic" in out and "Mbps" in out


def test_models_json(capsys):
    code, out = run_cli(capsys, "models", "--json")
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    assert "cubic" in payload


def test_run_edge_small(capsys):
    code, out = run_cli(
        capsys,
        "run", "--setting", "edge", "--flows", "2", "--duration", "3",
        "--warmup", "1", "--mathis",
    )
    assert code == 0
    assert "util" in out
    assert "mathis[" in out


def test_run_core_scaled_json(capsys):
    code, out = run_cli(
        capsys,
        "run", "--setting", "core", "--flows", "1000", "--scale", "500",
        "--duration", "3", "--warmup", "1", "--json",
    )
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    assert payload["scenario"]["groups"][0]["count"] == 2
    assert len(payload["flows"]) == 2


def test_compete_command(capsys):
    code, out = run_cli(
        capsys,
        "compete", "--setting", "edge", "--flows", "4",
        "--ccas", "cubic", "newreno", "--duration", "3", "--warmup", "1",
    )
    assert code == 0
    assert "cubic" in out and "newreno" in out


def test_compete_needs_two_ccas(capsys):
    code = main(["compete", "--ccas", "bbr", "--duration", "2", "--warmup", "1"])
    assert code == 2


def test_compete_needs_enough_flows():
    code = main(
        ["compete", "--setting", "edge", "--flows", "1",
         "--ccas", "bbr", "cubic", "--duration", "2", "--warmup", "1"]
    )
    assert code == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
