"""Unit and property-based tests for RangeSet."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.rangeset import RangeSet

ranges_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 20)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    max_size=20,
)


def as_set(rs: RangeSet) -> set:
    out = set()
    for start, end in rs.ranges():
        out.update(range(start, end))
    return out


class TestBasics:
    def test_empty(self):
        rs = RangeSet()
        assert not rs
        assert len(rs) == 0
        assert rs.ranges() == []
        assert 5 not in rs

    def test_add_single_range(self):
        rs = RangeSet()
        rs.add(3, 7)
        assert rs.ranges() == [(3, 7)]
        assert len(rs) == 4
        assert 3 in rs and 6 in rs and 7 not in rs and 2 not in rs

    def test_add_point(self):
        rs = RangeSet()
        rs.add_point(5)
        assert rs.ranges() == [(5, 6)]

    def test_merge_overlapping(self):
        rs = RangeSet([(1, 5), (3, 9)])
        assert rs.ranges() == [(1, 9)]

    def test_merge_adjacent(self):
        rs = RangeSet([(1, 5), (5, 8)])
        assert rs.ranges() == [(1, 8)]

    def test_disjoint_kept_separate(self):
        rs = RangeSet([(1, 3), (5, 8)])
        assert rs.ranges() == [(1, 3), (5, 8)]
        assert rs.range_count() == 2

    def test_bridge_merges_three(self):
        rs = RangeSet([(1, 3), (7, 9)])
        rs.add(3, 7)
        assert rs.ranges() == [(1, 9)]

    def test_empty_range_ignored(self):
        rs = RangeSet()
        rs.add(4, 4)
        assert not rs

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            RangeSet().add(5, 3)

    def test_equality(self):
        assert RangeSet([(1, 3)]) == RangeSet([(1, 2), (2, 3)])
        assert RangeSet([(1, 3)]) != RangeSet([(1, 4)])


class TestQueries:
    def test_covers(self):
        rs = RangeSet([(2, 8)])
        assert rs.covers(2, 8)
        assert rs.covers(3, 5)
        assert not rs.covers(1, 3)
        assert not rs.covers(7, 9)
        assert rs.covers(5, 5)  # empty range trivially covered

    def test_covers_does_not_span_gaps(self):
        rs = RangeSet([(1, 3), (4, 6)])
        assert not rs.covers(1, 6)

    def test_min_max(self):
        rs = RangeSet([(4, 6), (10, 12)])
        assert rs.min_value() == 4
        assert rs.max_value() == 11

    def test_min_max_empty_raise(self):
        with pytest.raises(ValueError):
            RangeSet().max_value()
        with pytest.raises(ValueError):
            RangeSet().min_value()

    def test_contiguous_end_from(self):
        rs = RangeSet([(2, 5), (7, 9)])
        assert rs.contiguous_end_from(2) == 5
        assert rs.contiguous_end_from(3) == 5
        assert rs.contiguous_end_from(5) == 5  # not covered
        assert rs.contiguous_end_from(7) == 9

    def test_count_above(self):
        rs = RangeSet([(2, 5), (8, 10)])  # {2,3,4,8,9}
        assert rs.count_above(0) == 5
        assert rs.count_above(2) == 4
        assert rs.count_above(4) == 2
        assert rs.count_above(9) == 0

    def test_count_below(self):
        rs = RangeSet([(2, 5), (8, 10)])
        assert rs.count_below(2) == 0
        assert rs.count_below(5) == 3
        assert rs.count_below(9) == 4
        assert rs.count_below(100) == 5

    def test_nth_from_top(self):
        rs = RangeSet([(2, 5), (8, 10)])  # {2,3,4,8,9}
        assert rs.nth_from_top(1) == 9
        assert rs.nth_from_top(2) == 8
        assert rs.nth_from_top(3) == 4
        assert rs.nth_from_top(5) == 2
        assert rs.nth_from_top(6) is None
        with pytest.raises(ValueError):
            rs.nth_from_top(0)

    def test_holes_between(self):
        rs = RangeSet([(2, 4), (6, 8)])
        assert rs.holes_between(0, 10) == [(0, 2), (4, 6), (8, 10)]
        assert rs.holes_between(2, 8) == [(4, 6)]
        assert rs.holes_between(2, 4) == []
        assert rs.holes_between(5, 5) == []

    def test_holes_between_empty_set(self):
        assert RangeSet().holes_between(3, 6) == [(3, 6)]


class TestRemoveBelow:
    def test_removes_whole_ranges(self):
        rs = RangeSet([(1, 3), (5, 7)])
        rs.remove_below(4)
        assert rs.ranges() == [(5, 7)]

    def test_truncates_straddling_range(self):
        rs = RangeSet([(1, 10)])
        rs.remove_below(4)
        assert rs.ranges() == [(4, 10)]

    def test_noop_below_min(self):
        rs = RangeSet([(5, 7)])
        rs.remove_below(2)
        assert rs.ranges() == [(5, 7)]


class TestProperties:
    @given(ranges_strategy)
    @settings(max_examples=200, deadline=None)
    def test_matches_python_set_model(self, ranges):
        rs = RangeSet()
        model = set()
        for start, end in ranges:
            rs.add(start, end)
            model.update(range(start, end))
        assert as_set(rs) == model
        assert len(rs) == len(model)

    @given(ranges_strategy, st.integers(0, 250))
    @settings(max_examples=200, deadline=None)
    def test_membership_matches_model(self, ranges, probe):
        rs = RangeSet(ranges)
        model = set()
        for start, end in ranges:
            model.update(range(start, end))
        assert (probe in rs) == (probe in model)

    @given(ranges_strategy)
    @settings(max_examples=200, deadline=None)
    def test_ranges_are_sorted_disjoint_nonadjacent(self, ranges):
        rs = RangeSet(ranges)
        out = rs.ranges()
        for (s1, e1), (s2, e2) in zip(out, out[1:]):
            assert e1 < s2, "ranges must stay disjoint and non-adjacent"
        for s, e in out:
            assert s < e

    @given(ranges_strategy, st.integers(0, 250))
    @settings(max_examples=100, deadline=None)
    def test_count_above_matches_model(self, ranges, value):
        rs = RangeSet(ranges)
        model = as_set(rs)
        assert rs.count_above(value) == sum(1 for v in model if v > value)

    @given(ranges_strategy, st.integers(0, 250))
    @settings(max_examples=100, deadline=None)
    def test_remove_below_matches_model(self, ranges, cutoff):
        rs = RangeSet(ranges)
        model = as_set(rs)
        rs.remove_below(cutoff)
        assert as_set(rs) == {v for v in model if v >= cutoff}

    @given(ranges_strategy, st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_nth_from_top_matches_model(self, ranges, n):
        rs = RangeSet(ranges)
        model = sorted(as_set(rs), reverse=True)
        expected = model[n - 1] if len(model) >= n else None
        assert rs.nth_from_top(n) == expected

    @given(ranges_strategy, st.integers(0, 250), st.integers(0, 250))
    @settings(max_examples=100, deadline=None)
    def test_holes_complement_covered(self, ranges, a, b):
        lo, hi = min(a, b), max(a, b)
        rs = RangeSet(ranges)
        model = as_set(rs)
        holes = set()
        for s, e in rs.holes_between(lo, hi):
            holes.update(range(s, e))
        assert holes == {v for v in range(lo, hi) if v not in model}
