"""Property-based end-to-end TCP invariants.

Hypothesis drives random loss patterns through a finite transfer and
checks the invariants any correct reliable transport must satisfy:
eventual completion, exact delivery, conserved scoreboard counters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.tcp.cca.cubic import Cubic
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe

TRANSFER = 80

drop_sets = st.sets(st.integers(0, TRANSFER + 20), max_size=12)


@given(drop_sets, st.sampled_from(["rack", "dupthresh"]))
@settings(max_examples=40, deadline=None)
def test_transfer_completes_under_any_loss_pattern(drops, marking):
    sim = Simulator()
    sender, receiver, _ = make_pipe(
        sim,
        NewReno(),
        total_packets=TRANSFER,
        drop_indices=drops,
        loss_marking=marking,
    )
    sender.start()
    sim.run(until=120.0)
    assert sender.completed, f"stalled with drops={sorted(drops)}"
    assert receiver.rcv_nxt == TRANSFER
    assert sender.snd_una == TRANSFER
    # Scoreboard fully drained.
    assert sender.in_flight == 0
    assert sender.sacked_out == 0
    assert sender.lost_out == 0
    assert sender.retrans_out == 0
    # Work conservation: transmissions = unique packets + retransmits.
    assert sender.stats.packets_sent == TRANSFER + sender.stats.retransmits
    # Retransmissions are necessary only for actual drops (each drop
    # costs at least one retransmission, possibly more if the
    # retransmission itself was dropped).
    effective_drops = len([d for d in drops if d < sender.stats.packets_sent])
    assert sender.stats.retransmits >= min(1, effective_drops) * bool(effective_drops)


@given(drop_sets)
@settings(max_examples=25, deadline=None)
def test_cubic_transfer_completes_too(drops):
    sim = Simulator()
    sender, receiver, _ = make_pipe(
        sim, Cubic(), total_packets=TRANSFER, drop_indices=drops
    )
    sender.start()
    sim.run(until=120.0)
    assert sender.completed
    assert receiver.rcv_nxt == TRANSFER


@given(st.integers(1, 60), st.integers(0, 59))
@settings(max_examples=30, deadline=None)
def test_single_drop_anywhere_recovers(size, drop_at):
    sim = Simulator()
    sender, receiver, _ = make_pipe(
        sim, NewReno(), total_packets=size, drop_indices={drop_at}
    )
    sender.start()
    sim.run(until=60.0)
    assert sender.completed
    assert receiver.rcv_nxt == size
    if drop_at < size:
        assert sender.stats.retransmits >= 1
