"""Tests for delivery-rate estimation (the BBR measurement substrate)."""

import pytest

from repro.tcp.connection import PacketMeta
from repro.tcp.rate_sample import DeliveryRateEstimator


def send(est, now, in_flight):
    meta = PacketMeta()
    est.on_packet_sent(meta, now, in_flight)
    meta.sent_time = now
    return meta


def test_send_stamps_connection_state():
    est = DeliveryRateEstimator()
    meta = send(est, 1.0, 0)
    assert meta.delivered == 0
    assert meta.delivered_time == 1.0  # idle restart resets to now
    assert meta.first_sent_time == 1.0
    assert meta.is_app_limited is False


def test_steady_rate_measured_exactly():
    """Steady state: one packet sent and one delivered every 10 ms with
    an RTT of 100 ms -> delivery rate = 100 packets/second."""
    est = DeliveryRateEstimator()
    metas = {}
    rate = None
    for tick in range(40):
        now = 0.01 * tick
        if tick >= 10:
            rs = est.start_sample(in_flight=10)
            est.on_packet_delivered(rs, metas[tick - 10], now)
            rs = est.finish_sample(rs, min_rtt_hint=None)
            if rs.delivery_rate is not None:
                rate = rs.delivery_rate
        metas[tick] = send(est, now, in_flight=10 if tick else 0)
    assert rate == pytest.approx(100.0, rel=0.05)


def test_double_delivery_ignored():
    est = DeliveryRateEstimator()
    meta = send(est, 0.0, 0)
    rs = est.start_sample(1)
    est.on_packet_delivered(rs, meta, 0.1)
    assert est.delivered == 1
    est.on_packet_delivered(rs, meta, 0.2)  # SACK then cumACK of same pkt
    assert est.delivered == 1


def test_sample_invalid_without_deliveries():
    est = DeliveryRateEstimator()
    rs = est.start_sample(0)
    rs = est.finish_sample(rs, min_rtt_hint=None)
    assert rs.delivery_rate is None
    assert rs.delivered == 0


def test_interval_below_min_rtt_rejected():
    # A burst sent over 0.5 ms whose ACKs arrive compressed within
    # 0.4 ms: both elapsed terms sit far below the 50 ms min RTT, so the
    # (over-optimistic) sample must be discarded (draft §3.3).
    est = DeliveryRateEstimator()
    est.delivered = 5
    est.delivered_time = 0.9998
    est.first_sent_time = 0.9995
    meta = PacketMeta()
    meta.sent_time = 1.0
    meta.first_sent_time = 0.9995
    meta.delivered = 5
    meta.delivered_time = 0.9998
    rs = est.start_sample(1)
    est.on_packet_delivered(rs, meta, 1.0002)
    rs = est.finish_sample(rs, min_rtt_hint=0.050)
    assert rs.delivery_rate is None
    # The same geometry with no min-RTT floor is accepted.
    est2 = DeliveryRateEstimator()
    est2.delivered = 5
    est2.delivered_time = 0.9998
    est2.first_sent_time = 0.9995
    meta2 = PacketMeta()
    meta2.sent_time = 1.0
    meta2.first_sent_time = 0.9995
    meta2.delivered = 5
    meta2.delivered_time = 0.9998
    rs2 = est2.start_sample(1)
    est2.on_packet_delivered(rs2, meta2, 1.0002)
    rs2 = est2.finish_sample(rs2, min_rtt_hint=None)
    assert rs2.delivery_rate is not None


def test_app_limited_marking_and_clearing():
    est = DeliveryRateEstimator()
    est.mark_app_limited(in_flight=2)
    assert est.app_limited_until == 2
    meta = send(est, 0.0, 0)
    assert meta.is_app_limited
    # Deliver three packets to pass the app-limited marker.
    for i in range(3):
        m = send(est, 0.01 * i, 1)
        rs = est.start_sample(1)
        est.on_packet_delivered(rs, m, 0.1 + 0.01 * i)
    assert est.app_limited_until == 0


def test_prior_in_flight_recorded():
    est = DeliveryRateEstimator()
    rs = est.start_sample(in_flight=42)
    assert rs.prior_in_flight == 42


def test_idle_restart_resets_first_sent_time():
    est = DeliveryRateEstimator()
    m1 = send(est, 0.0, 0)
    rs = est.start_sample(1)
    est.on_packet_delivered(rs, m1, 1.0)
    est.finish_sample(rs, None)
    # Long idle, then a new packet with nothing in flight.
    m2 = send(est, 10.0, 0)
    assert m2.first_sent_time == 10.0
    rs2 = est.start_sample(1)
    est.on_packet_delivered(rs2, m2, 10.1)
    rs2 = est.finish_sample(rs2, None)
    # The idle gap must not depress the rate sample: interval ~0.1 s.
    assert rs2.delivery_rate == pytest.approx(10.0, rel=0.1)
