"""Tests for the RFC 6298 RTT estimator."""

import pytest

from repro.tcp.rtt import RttEstimator


def test_initial_rto():
    est = RttEstimator(initial_rto=1.0)
    assert est.rto == 1.0
    assert est.srtt is None


def test_first_sample_initialises_srtt_and_rttvar():
    est = RttEstimator()
    est.on_measurement(0.100)
    assert est.srtt == pytest.approx(0.100)
    assert est.rttvar == pytest.approx(0.050)
    # RTO = SRTT + 4*RTTVAR = 0.3, above the 0.2 floor.
    assert est.rto == pytest.approx(0.300)


def test_smoothing_follows_rfc_constants():
    est = RttEstimator()
    est.on_measurement(0.100)
    est.on_measurement(0.200)
    # rttvar = 3/4*0.05 + 1/4*|0.1-0.2| = 0.0625
    assert est.rttvar == pytest.approx(0.0625)
    # srtt = 7/8*0.1 + 1/8*0.2 = 0.1125
    assert est.srtt == pytest.approx(0.1125)


def test_min_rto_floor():
    est = RttEstimator(min_rto=0.2)
    for _ in range(20):
        est.on_measurement(0.010)  # tiny, stable RTT
    assert est.rto == pytest.approx(0.2)


def test_max_rto_ceiling():
    est = RttEstimator(max_rto=5.0)
    est.on_measurement(10.0)
    assert est.rto == 5.0


def test_min_rtt_tracks_smallest():
    est = RttEstimator()
    for sample in (0.05, 0.03, 0.08, 0.04):
        est.on_measurement(sample)
    assert est.min_rtt == pytest.approx(0.03)
    assert est.latest_rtt == pytest.approx(0.04)


def test_backoff_doubles_rto():
    est = RttEstimator()
    est.on_measurement(0.1)
    base = est.rto
    est.on_timeout()
    assert est.rto == pytest.approx(min(2 * base, est.max_rto))
    est.on_timeout()
    assert est.rto == pytest.approx(min(4 * base, est.max_rto))


def test_backoff_capped():
    # Backoff multiplier caps at 64x (RFC 6298 allows a cap); the
    # absolute max_rto is a second ceiling.
    est = RttEstimator(max_rto=60.0)
    est.on_measurement(0.1)
    for _ in range(20):
        est.on_timeout()
    assert est.rto == pytest.approx(min(0.3 * 64, 60.0))
    low_cap = RttEstimator(max_rto=5.0)
    low_cap.on_measurement(0.1)
    for _ in range(20):
        low_cap.on_timeout()
    assert low_cap.rto == 5.0


def test_sample_clears_backoff():
    est = RttEstimator()
    est.on_measurement(0.1)
    est.on_timeout()
    est.on_measurement(0.1)
    # Second identical sample shrinks rttvar: 0.75*0.05 = 0.0375,
    # so RTO = 0.1 + 4*0.0375 = 0.25 with backoff cleared.
    assert est.rto == pytest.approx(0.25)


def test_reset_backoff():
    est = RttEstimator()
    est.on_measurement(0.1)
    est.on_timeout()
    est.reset_backoff()
    assert est.rto == pytest.approx(0.3)


def test_invalid_sample_rejected():
    est = RttEstimator()
    with pytest.raises(ValueError):
        est.on_measurement(0.0)
    with pytest.raises(ValueError):
        est.on_measurement(-1.0)


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        RttEstimator(min_rto=0.0)
    with pytest.raises(ValueError):
        RttEstimator(min_rto=2.0, max_rto=1.0)
