"""Tests for the TCP receiver: reassembly, SACK generation, delayed ACKs."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.tcp.connection import TcpReceiver


class AckCollector:
    def __init__(self):
        self.acks = []

    def send(self, packet):
        self.acks.append(packet)


def make_receiver(sim, delayed_ack=False, **kwargs):
    collector = AckCollector()
    receiver = TcpReceiver(sim, 0, reverse_path=collector, delayed_ack=delayed_ack, **kwargs)
    return receiver, collector


def data(seq):
    return Packet.data(0, seq)


def test_in_order_data_advances_rcv_nxt(sim):
    receiver, collector = make_receiver(sim)
    for seq in range(5):
        receiver.send(data(seq))
    assert receiver.rcv_nxt == 5
    assert collector.acks[-1].ack_seq == 5


def test_out_of_order_generates_dup_ack_with_sack(sim):
    receiver, collector = make_receiver(sim)
    receiver.send(data(0))
    receiver.send(data(2))  # hole at 1
    ack = collector.acks[-1]
    assert ack.ack_seq == 1
    assert (2, 3) in ack.sack_blocks


def test_hole_fill_advances_across_buffered_data(sim):
    receiver, collector = make_receiver(sim)
    receiver.send(data(0))
    receiver.send(data(2))
    receiver.send(data(3))
    receiver.send(data(1))  # fills the hole
    assert receiver.rcv_nxt == 4
    assert collector.acks[-1].ack_seq == 4
    assert collector.acks[-1].sack_blocks == ()


def test_duplicate_data_counted_and_acked(sim):
    receiver, collector = make_receiver(sim)
    receiver.send(data(0))
    receiver.send(data(0))
    assert receiver.duplicate_packets == 1
    assert collector.acks[-1].ack_seq == 1


def test_duplicate_ooo_data_counted(sim):
    receiver, _ = make_receiver(sim)
    receiver.send(data(5))
    receiver.send(data(5))
    assert receiver.duplicate_packets == 1


def test_sack_blocks_capped(sim):
    receiver, collector = make_receiver(sim, max_sack_blocks=3)
    # Create four separate holes: 1,3,5,7 received; 0,2,4,6 missing.
    for seq in (1, 3, 5, 7):
        receiver.send(data(seq))
    ack = collector.acks[-1]
    assert len(ack.sack_blocks) == 3


def test_sack_block_for_triggering_segment_first(sim):
    receiver, collector = make_receiver(sim)
    receiver.send(data(5))
    receiver.send(data(9))
    ack = collector.acks[-1]
    assert ack.sack_blocks[0] == (9, 10)


def test_receiver_rejects_ack_packet(sim):
    receiver, _ = make_receiver(sim)
    with pytest.raises(ValueError):
        receiver.send(Packet.ack(0, 1))


class TestDelayedAck:
    def test_every_second_segment_acked(self, sim):
        receiver, collector = make_receiver(sim, delayed_ack=True)
        receiver.send(data(0))
        assert len(collector.acks) == 0  # first segment held
        receiver.send(data(1))
        assert len(collector.acks) == 1
        assert collector.acks[0].ack_seq == 2

    def test_delack_timer_flushes_lone_segment(self, sim):
        receiver, collector = make_receiver(sim, delayed_ack=True)
        receiver.send(data(0))
        sim.run(until=0.1)
        assert len(collector.acks) == 1
        assert collector.acks[0].ack_seq == 1

    def test_delack_timeout_value(self, sim):
        receiver, collector = make_receiver(sim, delayed_ack=True)
        ack_times = []
        original = collector.send
        collector.send = lambda p: (ack_times.append(sim.now), original(p))
        sim.schedule(0.0, receiver.send, data(0))
        sim.run(until=1.0)
        assert ack_times[0] == pytest.approx(0.040, abs=1e-6)

    def test_ooo_data_acked_immediately(self, sim):
        receiver, collector = make_receiver(sim, delayed_ack=True)
        receiver.send(data(3))
        assert len(collector.acks) == 1  # no delay for out-of-order

    def test_in_order_behind_hole_acked_immediately(self, sim):
        receiver, collector = make_receiver(sim, delayed_ack=True)
        receiver.send(data(2))          # hole at 0,1
        n = len(collector.acks)
        receiver.send(data(0))          # in-order but holes remain above
        assert len(collector.acks) == n + 1
