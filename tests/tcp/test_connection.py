"""End-to-end tests for the TCP sender/receiver machinery.

These use the perfect/lossy pipe from conftest (no bandwidth limit) so
timing and loss are fully controlled.
"""

import pytest

from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


class TestBasicTransfer:
    def test_finite_transfer_completes(self, sim):
        sender, receiver, _ = make_pipe(sim, NewReno(), total_packets=50)
        done = []
        sender.completion_listener = lambda s: done.append(sim.now)
        sender.start()
        sim.run(until=10.0)
        assert sender.completed
        assert done and done[0] > 0
        assert receiver.rcv_nxt == 50
        assert sender.snd_una == 50

    def test_no_loss_means_no_retransmits(self, sim):
        sender, _, _ = make_pipe(sim, NewReno(), total_packets=200)
        sender.start()
        sim.run(until=10.0)
        assert sender.stats.retransmits == 0
        assert sender.stats.rto_events == 0
        assert sender.stats.loss_recovery_events == 0

    def test_initial_window_respected(self, sim):
        sender, _, _ = make_pipe(sim, NewReno(), total_packets=1000)
        sender.start()
        # Before any ACK returns (RTT = 20 ms), exactly IW packets are out.
        sim.run(until=0.015)
        assert sender.stats.packets_sent == 10

    def test_slow_start_doubles_per_rtt(self, sim):
        sender, _, _ = make_pipe(sim, NewReno(), total_packets=10_000)
        sender.start()
        sim.run(until=0.021)  # just after first window of ACKs
        assert 15 <= sender.cca.cwnd <= 25

    def test_rtt_measured(self, sim):
        sender, _, _ = make_pipe(sim, NewReno(), total_packets=100, one_way_delay=0.05)
        sender.start()
        sim.run(until=5.0)
        assert sender.rtt.srtt == pytest.approx(0.1, rel=0.1)

    def test_cannot_start_twice(self, sim):
        sender, _, _ = make_pipe(sim, NewReno())
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()

    def test_delayed_start(self, sim):
        sender, _, _ = make_pipe(sim, NewReno(), total_packets=10)
        sender.start(at=1.0)
        sim.run(until=0.5)
        assert sender.stats.packets_sent == 0
        sim.run(until=2.0)
        assert sender.completed


class TestLossRecovery:
    def test_single_loss_triggers_fast_recovery(self, sim):
        # Drop the 3rd transmission; SACKs from later packets mark it.
        sender, receiver, wire = make_pipe(
            sim, NewReno(), total_packets=60, drop_indices={2}
        )
        sender.start()
        sim.run(until=10.0)
        assert sender.completed
        assert receiver.rcv_nxt == 60
        assert sender.stats.retransmits == 1
        assert sender.stats.loss_recovery_events == 1
        assert sender.stats.rto_events == 0

    def test_burst_loss_single_recovery_event(self, sim):
        # Drop five consecutive packets out of a large window: one
        # recovery event, five retransmits (the Mathis-p distinction).
        sender, receiver, _ = make_pipe(
            sim, NewReno(), total_packets=200, drop_indices={20, 21, 22, 23, 24}
        )
        sender.start()
        sim.run(until=10.0)
        assert sender.completed
        assert sender.stats.retransmits == 5
        assert sender.stats.loss_recovery_events == 1

    def test_separate_windows_separate_events(self, sim):
        sender, _, _ = make_pipe(
            sim, NewReno(), total_packets=2000, drop_indices={30, 800}
        )
        sender.start()
        sim.run(until=20.0)
        assert sender.completed
        assert sender.stats.loss_recovery_events == 2

    def test_lost_retransmission_recovered_by_rto(self, sim):
        # Drop packet 5 and also its retransmission: only the RTO can save it.
        sender, receiver, wire = make_pipe(
            sim, NewReno(), total_packets=30, drop_indices={5, 30}
        )
        sender.start()
        sim.run(until=20.0)
        assert sender.completed
        assert receiver.rcv_nxt == 30
        assert sender.stats.rto_events >= 1

    def test_tail_loss_recovered_by_rto(self, sim):
        # The very last packet is dropped: no later SACKs, so RTO fires.
        sender, receiver, _ = make_pipe(
            sim, NewReno(), total_packets=10, drop_indices={9}
        )
        sender.start()
        sim.run(until=20.0)
        assert sender.completed
        assert sender.stats.rto_events == 1

    def test_cwnd_halved_once_per_event(self, sim):
        sender, _, _ = make_pipe(
            sim, NewReno(), total_packets=4000, drop_indices={100, 101, 102}
        )
        events = []
        sender.cwnd_listener = lambda now, kind, cwnd: (
            events.append((kind, cwnd)) if kind != "ack" else None
        )
        sender.start()
        sim.run(until=30.0)
        halvings = [e for e in events if e[0] == "loss_event"]
        assert len(halvings) == 1

    def test_dupthresh_marking_mode(self, sim):
        sender, receiver, _ = make_pipe(
            sim,
            NewReno(),
            total_packets=200,
            drop_indices={20},
            loss_marking="dupthresh",
        )
        sender.start()
        sim.run(until=10.0)
        assert sender.completed
        assert sender.stats.retransmits == 1

    def test_invalid_loss_marking_rejected(self, sim):
        with pytest.raises(ValueError):
            make_pipe(sim, NewReno(), loss_marking="bogus")

    def test_karn_no_rtt_sample_from_retransmission(self, sim):
        sender, _, _ = make_pipe(
            sim, NewReno(), total_packets=50, drop_indices={5}, one_way_delay=0.05
        )
        sender.start()
        sim.run(until=20.0)
        # All RTT samples must be ~the true RTT; a retransmission-based
        # sample would come out near zero or doubled.
        assert sender.rtt.min_rtt == pytest.approx(0.1, rel=0.15)


class TestAccounting:
    def test_pipe_conservation_invariants(self, sim):
        sender, _, _ = make_pipe(
            sim, NewReno(), total_packets=500, drop_indices={10, 40, 41, 90}
        )
        sender.start()
        checks = []

        def audit():
            checks.append(
                (
                    sender.in_flight >= 0,
                    sender.sacked_out >= 0,
                    sender.lost_out >= 0,
                    sender.retrans_out >= 0,
                )
            )
            if not sender.completed:
                sim.schedule(0.005, audit)

        sim.schedule(0.005, audit)
        sim.run(until=20.0)
        assert sender.completed
        assert all(all(c) for c in checks)
        # Terminal state: nothing outstanding.
        assert sender.in_flight == 0
        assert sender.sacked_out == 0
        assert sender.lost_out == 0
        assert sender.retrans_out == 0

    def test_goodput_counts_unique_packets(self, sim):
        sender, receiver, _ = make_pipe(
            sim, NewReno(), total_packets=100, drop_indices={5, 6}
        )
        sender.start()
        sim.run(until=20.0)
        assert sender.snd_una == 100
        assert sender.stats.packets_sent == 102  # 100 + 2 retransmits
        assert receiver.received_packets >= 100

    def test_acks_counted(self, sim):
        sender, receiver, _ = make_pipe(sim, NewReno(), total_packets=100)
        sender.start()
        sim.run(until=10.0)
        assert sender.stats.acks_received == receiver.acks_sent

    def test_sender_rejects_data_packet(self, sim):
        from repro.sim.packet import Packet

        sender, _, _ = make_pipe(sim, NewReno())
        with pytest.raises(ValueError):
            sender.send(Packet.data(0, 0))


class TestPacing:
    def test_paced_sender_spreads_transmissions(self, sim):
        class PacedReno(NewReno):
            @property
            def pacing_rate(self):
                return 1_500 * 8 * 100.0  # 100 packets per second

        sender, _, _ = make_pipe(sim, PacedReno(), total_packets=1000)
        times = []
        original = sender._transmit

        def spy(seq, retx):
            times.append(sim.now)
            original(seq, retx)

        sender._transmit = spy
        sender.start()
        sim.run(until=0.2)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Pacing gap = 10 ms; everything after the first packet is paced.
        assert all(g >= 0.0099 for g in gaps[1:])
