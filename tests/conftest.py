"""Shared fixtures and helpers for the test suite.

Tests run against deliberately tiny networks (a few Mbps, seconds of
simulated time) so the whole suite stays fast while still exercising the
real packet-level machinery end to end.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import DelayLink
from repro.sim.netem import NetemDelay
from repro.tcp.connection import TcpReceiver, TcpSender


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run the whole suite with the runtime simulation sanitizer "
        "enabled (equivalent to REPRO_SANITIZE=1)",
    )


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--sanitize"):
        # Every Simulator() constructed anywhere in the suite reads this.
        os.environ["REPRO_SANITIZE"] = "1"


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def sanitized_sim() -> Simulator:
    """A simulator with invariant checking on regardless of env/flags."""
    return Simulator(sanitize=True)


class LossyWire:
    """A delay element that deterministically drops listed sequence numbers.

    Only data packets are candidates; the Nth *transmission attempt* of
    the flow is dropped if its index is in ``drop_indices`` (so
    retransmissions can be dropped too, deterministically).
    """

    def __init__(self, sim, delay, sink=None, drop_indices=()):
        self.sim = sim
        self.delay = delay
        self.sink = sink
        self.drop_indices = set(drop_indices)
        self.seen = 0
        self.dropped = []

    def send(self, packet):
        index = self.seen
        self.seen += 1
        if index in self.drop_indices:
            self.dropped.append(packet.seq)
            return
        if self.delay == 0:
            self.sink.send(packet)
        else:
            self.sim.schedule(self.delay, self.sink.send, packet)


def make_pipe(
    sim: Simulator,
    cca,
    one_way_delay: float = 0.01,
    total_packets=None,
    drop_indices=(),
    delayed_ack: bool = True,
    loss_marking: str = "rack",
):
    """Wire a sender/receiver pair over a perfect (or lossy) pipe.

    No bandwidth limit: purely delay-based, which makes timing assertions
    exact. Returns (sender, receiver, wire).
    """
    sender = TcpSender(sim, 0, cca, total_packets=total_packets, loss_marking=loss_marking)
    receiver = TcpReceiver(sim, 0, delayed_ack=delayed_ack)
    wire = LossyWire(sim, one_way_delay, sink=receiver, drop_indices=drop_indices)
    sender.path = wire
    receiver.reverse_path = DelayLink(sim, one_way_delay, sink=sender)
    return sender, receiver, wire
