"""Golden-run regression suite.

Re-runs the six canonical scenarios and asserts their results are
byte-identical to the committed corpus (``hashes.json``, regenerated
only deliberately via ``tools/regen_golden.py``). This is the gate that
makes hot-path optimization safe: any change to event structure, float
arithmetic order, RNG draw order or measurement accounting flips a
digest here.

On mismatch the failure message distinguishes *drift* (an intentional
physics change — regenerate the corpus) from *breakage* (a refactor
that silently changed behaviour).
"""

from __future__ import annotations

import gzip
import json
import os

import pytest

from repro.core.goldens import (
    GOLDEN_FORMAT,
    TRACED_SCENARIOS,
    drift_report,
    golden_scenarios,
    run_golden,
    trace_digest,
)

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))
HASHES_PATH = os.path.join(GOLDEN_DIR, "hashes.json")
TRACES_DIR = os.path.join(GOLDEN_DIR, "traces")

with open(HASHES_PATH, encoding="utf-8") as _fh:
    CORPUS = json.load(_fh)

SCENARIOS = golden_scenarios()


def test_corpus_format_and_coverage():
    """The committed corpus matches the in-code scenario set exactly."""
    assert CORPUS["format"] == GOLDEN_FORMAT
    assert set(CORPUS["scenarios"]) == set(SCENARIOS), (
        "golden corpus out of sync with goldens.golden_scenarios(); "
        "run tools/regen_golden.py"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_run(name):
    expected = CORPUS["scenarios"][name]
    traced = name in TRACED_SCENARIOS
    result, digest, text = run_golden(SCENARIOS[name], with_trace=traced)

    assert digest == expected["result_sha256"], (
        f"{name}: {drift_report(expected, result)}"
    )

    if traced:
        assert text is not None
        assert trace_digest(text) == expected["trace_sha256"], (
            f"{name}: result digest matches but the event *trace* diverged — "
            "per-event timing/ordering changed in a way the aggregate result "
            "does not expose. For a performance refactor this is breakage; "
            "for an intentional behaviour change, regenerate with "
            "tools/regen_golden.py."
        )
        # The committed compressed artifact decompresses to exactly the
        # trace this run produced (guards artifact/hash desync).
        path = os.path.join(TRACES_DIR, f"{name}.jsonl.gz")
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            committed = fh.read()
        assert committed == text, (
            f"{name}: committed trace artifact does not match hashes.json; "
            "rerun tools/regen_golden.py so both regenerate together"
        )
