"""Differential tests: alternate execution modes must not change results.

Three equivalences the optimized engine must preserve:

- ``step()`` single-stepping executes the exact same event sequence as
  a ``run()`` loop (the bare fast-path loop and the step path share
  semantics, not code);
- a sanitized run (``REPRO_SANITIZE=1``) produces a byte-identical
  result digest to a bare run — the sanitizer observes, never perturbs;
- a profiled run (``repro ... --profile`` wires a
  :class:`~repro.obs.profiler.SimProfiler`) is digest-equal to a bare
  run for the same reason.

The digest is the golden-corpus sha256 over the canonical result JSON,
so "equal" here means every float bit and every counter.
"""

from __future__ import annotations

from repro.core.goldens import result_digest
from repro.core.experiment import run_experiment
from repro.core.scenarios import edge_scale
from repro.obs.profiler import SimProfiler
from repro.sim.engine import Simulator
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


def _small_scenario():
    return edge_scale(
        flows=4, cca="newreno", duration=2.0, warmup=0.5, seed=11
    ).with_overrides(name="diff-small")


def _pipe_fingerprint(sim, sender, receiver):
    return {
        "now": sim.now,
        "events": sim.events_processed,
        "completed": sender.completed,
        "packets_sent": sender.stats.packets_sent,
        "retransmits": sender.stats.retransmits,
        "snd_una": sender.snd_una,
        "srtt": sender.rtt.srtt,
        "acks_sent": receiver.acks_sent,
        "received": receiver.received_packets,
    }


def test_step_loop_matches_run(sim):
    """Driving the whole simulation through step() must reproduce a
    run() execution exactly (state fingerprints match event for event)."""
    sender_a, receiver_a, _ = make_pipe(sim, NewReno(), total_packets=300, drop_indices=(25, 90))
    sender_a.start()
    sim.run(until=30.0)

    sim_b = Simulator(sanitize=False)
    sender_b, receiver_b, _ = make_pipe(sim_b, NewReno(), total_packets=300, drop_indices=(25, 90))
    sender_b.start()
    while sim_b.step():
        pass

    fp_a = _pipe_fingerprint(sim, sender_a, receiver_a)
    fp_b = _pipe_fingerprint(sim_b, sender_b, receiver_b)
    assert sender_a.completed  # the workload actually drains
    # run(until=...) advances the clock to the horizon on completion;
    # step() leaves it at the last event. Everything else must agree.
    fp_a.pop("now")
    fp_b.pop("now")
    assert fp_a == fp_b


def test_interleaved_step_and_run_matches_run(sim):
    """A hybrid driver — a burst of step() calls, then run() — lands in
    the same state as a single run()."""
    sender_a, receiver_a, _ = make_pipe(sim, NewReno(), total_packets=200)
    sender_a.start()
    sim.run(until=20.0)

    sim_b = Simulator(sanitize=False)
    sender_b, receiver_b, _ = make_pipe(sim_b, NewReno(), total_packets=200)
    sender_b.start()
    for _ in range(137):
        if not sim_b.step():
            break
    sim_b.run(until=20.0)

    assert _pipe_fingerprint(sim, sender_a, receiver_a) == _pipe_fingerprint(
        sim_b, sender_b, receiver_b
    )


def test_sanitized_run_is_digest_equal(monkeypatch):
    scenario = _small_scenario()
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    bare = result_digest(run_experiment(scenario))
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = result_digest(run_experiment(scenario))
    assert sanitized == bare


def test_profiled_run_is_digest_equal():
    scenario = _small_scenario()
    bare = result_digest(run_experiment(scenario))
    profiler = SimProfiler()
    profiled_result = run_experiment(scenario, profiler=profiler)
    assert result_digest(profiled_result) == bare
    assert profiler.events > 0  # the profiler really was installed
