"""Tests for throughput share and ratio analyses."""

import pytest

from repro.analysis.throughput import (
    fair_share_bps,
    group_shares,
    link_utilization,
    loss_to_halving_ratio,
    per_flow_event_rate,
)


class TestGroupShares:
    def test_basic_split(self):
        goodputs = {0: 30.0, 1: 10.0, 2: 60.0}
        groups = {0: "cubic", 1: "cubic", 2: "reno"}
        shares = group_shares(goodputs, groups)
        assert shares == {"cubic": pytest.approx(0.4), "reno": pytest.approx(0.6)}

    def test_shares_sum_to_one(self):
        goodputs = {i: float(i + 1) for i in range(10)}
        groups = {i: "g" + str(i % 3) for i in range(10)}
        assert sum(group_shares(goodputs, groups).values()) == pytest.approx(1.0)

    def test_all_zero(self):
        shares = group_shares({0: 0.0, 1: 0.0}, {0: "a", 1: "b"})
        assert shares == {"a": 0.0, "b": 0.0}


class TestRatios:
    def test_loss_to_halving(self):
        assert loss_to_halving_ratio(60, 10) == 6.0

    def test_no_events_raises(self):
        with pytest.raises(ValueError):
            loss_to_halving_ratio(10, 0)

    def test_negative_losses_raise(self):
        with pytest.raises(ValueError):
            loss_to_halving_ratio(-1, 10)

    def test_per_flow_event_rate(self):
        assert per_flow_event_rate(5, 1000) == 0.005
        assert per_flow_event_rate(5, 0) == 0.0


class TestUtilization:
    def test_fully_loaded(self):
        payload = 1448 / 1500
        assert link_utilization(100e6 * payload, 100e6) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            link_utilization(1.0, 0.0)


def test_fair_share():
    assert fair_share_bps(100e6, 4) == 25e6
    with pytest.raises(ValueError):
        fair_share_bps(100e6, 0)
