"""Tests for the paper's convergence stop rule."""

import pytest

from repro.analysis.convergence import ConvergenceTracker, has_converged


class TestHasConverged:
    def test_flat_series_converges(self):
        times = [float(t) for t in range(20)]
        values = [5.0] * 20
        assert has_converged(times, values, window=5.0)

    def test_trending_series_does_not(self):
        times = [float(t) for t in range(20)]
        values = [float(t) for t in range(20)]
        assert not has_converged(times, values, window=5.0, tolerance=0.01)

    def test_within_tolerance(self):
        times = [0.0, 1.0, 2.0, 3.0, 4.0]
        values = [100.0, 100.4, 99.8, 100.2, 100.0]
        assert has_converged(times, values, window=3.0, tolerance=0.01)
        assert not has_converged(times, values, window=3.0, tolerance=0.001)

    def test_series_shorter_than_window(self):
        assert not has_converged([0.0, 1.0], [1.0, 1.0], window=5.0)

    def test_old_instability_ignored(self):
        times = [float(t) for t in range(30)]
        values = [50.0 if t < 20 else 100.0 for t in range(30)]
        assert has_converged(times, values, window=5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            has_converged([0.0], [1.0, 2.0], window=1.0)
        with pytest.raises(ValueError):
            has_converged([0.0], [1.0], window=0.0)


class TestTracker:
    def test_flips_once_stable(self):
        tracker = ConvergenceTracker(window=5.0, tolerance=0.01)
        verdicts = [tracker.observe(float(t), 10.0) for t in range(10)]
        assert verdicts[0] is False
        assert verdicts[-1] is True
        assert tracker.converged_at == 5.0

    def test_callback_fires_once(self):
        fired = []
        tracker = ConvergenceTracker(5.0, on_converged=fired.append)
        for t in range(20):
            tracker.observe(float(t), 1.0)
        assert fired == [5.0]

    def test_never_converges_on_growth(self):
        tracker = ConvergenceTracker(window=5.0, tolerance=0.01)
        for t in range(50):
            tracker.observe(float(t), float(t + 1))
        assert not tracker.converged

    def test_out_of_order_samples_rejected(self):
        tracker = ConvergenceTracker(5.0)
        tracker.observe(1.0, 1.0)
        with pytest.raises(ValueError):
            tracker.observe(0.5, 1.0)

    def test_window_trimming_bounds_memory(self):
        tracker = ConvergenceTracker(window=2.0, tolerance=1e-9)
        for t in range(1000):
            tracker.observe(float(t), float(t % 7))
        assert len(tracker._times) < 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(window=0.0)
