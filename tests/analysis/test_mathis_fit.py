"""Tests for Mathis constant fitting and prediction error computation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mathis_fit import (
    FlowObservation,
    fit_mathis,
    prediction_errors_with_constant,
)
from repro.models.mathis import mathis_throughput
from repro.units import MSS


def synthetic_flows(c, n=20, interpretation="halving"):
    """Flows that follow the Mathis model exactly with constant ``c``."""
    flows = []
    for i in range(n):
        p = 0.001 * (i + 1)
        rtt = 0.02 + 0.005 * (i % 4)
        goodput = mathis_throughput(MSS, rtt, p, c)
        loss = p if interpretation == "loss" else p * 3
        halving = p if interpretation == "halving" else p / 3
        flows.append(FlowObservation(goodput, rtt, loss, halving))
    return flows


def test_recovers_exact_constant():
    flows = synthetic_flows(c=1.4)
    fit = fit_mathis(flows, "halving", MSS)
    assert fit.constant == pytest.approx(1.4, rel=1e-9)
    assert fit.median_error == pytest.approx(0.0, abs=1e-9)


def test_interpretation_selects_field():
    flows = [FlowObservation(1e6, 0.02, 0.01, 0.002)]
    assert flows[0].p("loss") == 0.01
    assert flows[0].p("halving") == 0.002
    with pytest.raises(ValueError):
        flows[0].p("bogus")


def test_noisy_fit_has_nonzero_error():
    flows = synthetic_flows(c=1.4)
    # Perturb half the flows' goodput by +50%.
    for f in flows[::2]:
        f.goodput_bps *= 1.5
    fit = fit_mathis(flows, "halving", MSS)
    assert fit.median_error > 0.05


def test_zero_p_flows_excluded():
    flows = synthetic_flows(c=1.0) + [FlowObservation(1e6, 0.02, 0.0, 0.0)]
    fit = fit_mathis(flows, "halving", MSS)
    assert len(fit.per_flow_errors) == 20


def test_all_zero_p_raises():
    flows = [FlowObservation(1e6, 0.02, 0.0, 0.0)]
    with pytest.raises(ValueError):
        fit_mathis(flows, "loss", MSS)


def test_fixed_constant_errors():
    flows = synthetic_flows(c=2.0)
    errors = prediction_errors_with_constant(flows, "halving", MSS, constant=1.0)
    # Predictions are exactly half the measurements.
    assert all(e == pytest.approx(0.5) for e in errors)


@given(st.floats(0.2, 10.0), st.integers(3, 40))
@settings(max_examples=100, deadline=None)
def test_fit_recovers_any_constant(c, n):
    flows = synthetic_flows(c=c, n=n)
    fit = fit_mathis(flows, "halving", MSS)
    assert math.isclose(fit.constant, c, rel_tol=1e-6)
