"""Tests for Jain's Fairness Index and related metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import jains_fairness_index, min_max_ratio


def test_perfect_fairness():
    assert jains_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_single_flow_is_fair():
    assert jains_fairness_index([7.0]) == pytest.approx(1.0)


def test_total_starvation_gives_one_over_n():
    assert jains_fairness_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_known_textbook_value():
    # Jain's classic example: allocations (1, 2, 3) -> 36/(3*14).
    assert jains_fairness_index([1, 2, 3]) == pytest.approx(36 / 42)


def test_all_zero_is_fair():
    assert jains_fairness_index([0.0, 0.0]) == 1.0


def test_scale_invariance():
    a = jains_fairness_index([1.0, 2.0, 4.0])
    b = jains_fairness_index([10.0, 20.0, 40.0])
    assert a == pytest.approx(b)


def test_validation():
    with pytest.raises(ValueError):
        jains_fairness_index([])
    with pytest.raises(ValueError):
        jains_fairness_index([1.0, -0.1])


@given(st.lists(st.floats(0, 1e9, allow_nan=False), min_size=1, max_size=100))
@settings(max_examples=300, deadline=None)
def test_jfi_bounds(allocations):
    jfi = jains_fairness_index(allocations)
    n = len(allocations)
    assert 1.0 / n - 1e-9 <= jfi <= 1.0 + 1e-9


@given(st.lists(st.floats(0.01, 1e6, allow_nan=False), min_size=2, max_size=50))
@settings(max_examples=200, deadline=None)
def test_jfi_permutation_invariant(allocations):
    assert jains_fairness_index(allocations) == pytest.approx(
        jains_fairness_index(sorted(allocations))
    )


def test_min_max_ratio():
    assert min_max_ratio([2.0, 4.0]) == pytest.approx(0.5)
    assert min_max_ratio([3.0, 3.0]) == 1.0
    assert min_max_ratio([0.0, 0.0]) == 1.0
    with pytest.raises(ValueError):
        min_max_ratio([])
