"""Tests for the Goh-Barabási burstiness score."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.burstiness import (
    burstiness_score,
    inter_event_times,
    windowed_burstiness,
)


def test_inter_event_times_sorts_input():
    assert inter_event_times([3.0, 1.0, 2.0]) == [1.0, 1.0]
    assert inter_event_times([1.0]) == []


def test_periodic_signal_scores_minus_one():
    events = [i * 0.5 for i in range(100)]
    assert burstiness_score(events) == pytest.approx(-1.0)


def test_poisson_signal_scores_near_zero():
    rng = random.Random(7)
    t, events = 0.0, []
    for _ in range(20_000):
        t += rng.expovariate(10.0)
        events.append(t)
    assert abs(burstiness_score(events)) < 0.05


def test_bursty_signal_scores_positive():
    # Tight bursts separated by long gaps.
    events = []
    for burst in range(30):
        base = burst * 100.0
        events.extend(base + 0.001 * i for i in range(20))
    assert burstiness_score(events) > 0.5


def test_requires_three_events():
    with pytest.raises(ValueError):
        burstiness_score([1.0, 2.0])


@given(
    st.lists(
        st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
        min_size=3,
        max_size=200,
    )
)
@settings(max_examples=200, deadline=None)
def test_score_bounded(events):
    # Degenerate all-equal-gaps cases give sigma=0 -> score -1; all
    # results must stay within [-1, 1].
    try:
        score = burstiness_score(events)
    except ValueError:
        return  # fewer than 2 distinct gaps after dedup is fine to reject
    assert -1.0 - 1e-9 <= score <= 1.0 + 1e-9


class TestWindowed:
    def test_windows_skip_sparse_buckets(self):
        events = [0.0, 0.1, 0.2, 50.0]  # second window has 1 event
        scores = windowed_burstiness(events, window=1.0)
        assert len(scores) == 1

    def test_empty_input(self):
        assert windowed_burstiness([], 1.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            windowed_burstiness([1.0], 0.0)

    def test_scores_in_range(self):
        rng = random.Random(3)
        events = sorted(rng.uniform(0, 100) for _ in range(5000))
        scores = windowed_burstiness(events, window=5.0)
        assert scores
        assert all(-1.0 <= s <= 1.0 for s in scores)
