"""Tests for the Goh-Barabási burstiness score."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.burstiness import (
    burstiness_score,
    inter_event_times,
    windowed_burstiness,
)


def test_inter_event_times_sorts_input():
    assert inter_event_times([3.0, 1.0, 2.0]) == [1.0, 1.0]
    assert inter_event_times([1.0]) == []


def test_periodic_signal_scores_minus_one():
    events = [i * 0.5 for i in range(100)]
    assert burstiness_score(events) == pytest.approx(-1.0)


def test_poisson_signal_scores_near_zero():
    rng = random.Random(7)
    t, events = 0.0, []
    for _ in range(20_000):
        t += rng.expovariate(10.0)
        events.append(t)
    assert abs(burstiness_score(events)) < 0.05


def test_bursty_signal_scores_positive():
    # Tight bursts separated by long gaps.
    events = []
    for burst in range(30):
        base = burst * 100.0
        events.extend(base + 0.001 * i for i in range(20))
    assert burstiness_score(events) > 0.5


def test_requires_three_events():
    with pytest.raises(ValueError):
        burstiness_score([1.0, 2.0])


@given(
    st.lists(
        st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
        min_size=3,
        max_size=200,
    )
)
@settings(max_examples=200, deadline=None)
def test_score_bounded(events):
    # Degenerate all-equal-gaps cases give sigma=0 -> score -1; all
    # results must stay within [-1, 1].
    try:
        score = burstiness_score(events)
    except ValueError:
        return  # fewer than 2 distinct gaps after dedup is fine to reject
    assert -1.0 - 1e-9 <= score <= 1.0 + 1e-9


class TestWindowed:
    def test_windows_skip_sparse_buckets(self):
        events = [0.0, 0.1, 0.2, 50.0]  # second window has 1 event
        scores = windowed_burstiness(events, window=1.0)
        assert len(scores) == 1

    def test_empty_input(self):
        assert windowed_burstiness([], 1.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            windowed_burstiness([1.0], 0.0)

    def test_scores_in_range(self):
        rng = random.Random(3)
        events = sorted(rng.uniform(0, 100) for _ in range(5000))
        scores = windowed_burstiness(events, window=5.0)
        assert scores
        assert all(-1.0 <= s <= 1.0 for s in scores)

    def test_exactly_three_event_bucket_is_scored(self):
        # Three events is the minimum a window needs (two gaps); the
        # boundary bucket must be scored, not skipped.
        events = [0.0, 0.3, 0.6]
        scores = windowed_burstiness(events, window=1.0)
        assert scores == [pytest.approx(burstiness_score(events))]

    def test_two_event_bucket_is_skipped(self):
        assert windowed_burstiness([0.0, 0.5], window=1.0) == []

    def test_multi_window_gap_resynchronises_buckets(self):
        # Two dense clusters separated by many empty windows: the skip
        # loop must advance the window origin past the dead time so the
        # second cluster lands in ONE bucket (and is scored), instead of
        # being smeared across stale window boundaries.
        first = [0.0, 0.1, 0.2, 0.3]
        second = [50.2, 50.3, 50.4, 50.5]  # ~50 empty 1s-windows later
        scores = windowed_burstiness(first + second, window=1.0)
        assert len(scores) == 2
        assert scores[0] == pytest.approx(burstiness_score(first))
        assert scores[1] == pytest.approx(burstiness_score(second))

    def test_trailing_bucket_is_flushed(self):
        # Events whose final cluster never crosses another window edge
        # still produce a score for the last partial window.
        events = [0.0, 0.1, 0.2, 2.0, 2.1, 2.2]
        scores = windowed_burstiness(events, window=1.0)
        assert len(scores) == 2

    def test_unsorted_input_is_sorted_first(self):
        events = [0.6, 0.0, 0.3]
        assert windowed_burstiness(events, window=1.0) == windowed_burstiness(
            sorted(events), window=1.0
        )
