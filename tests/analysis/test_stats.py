"""Tests for the statistics helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import mean, median, percentile, relative_errors


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2

    def test_even(self):
        assert median([4, 1, 2, 3]) == 2.5

    def test_single(self):
        assert median([7.0]) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    @given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=100))
    @settings(max_examples=200, deadline=None)
    def test_median_between_min_and_max(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestPercentile:
    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_matches_median(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        assert percentile(values, 50) == median(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestRelativeErrors:
    def test_basic(self):
        errs = relative_errors([11.0, 9.0], [10.0, 10.0])
        assert errs == pytest.approx([0.1, 0.1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors([1.0], [1.0, 2.0])

    def test_zero_measured(self):
        with pytest.raises(ValueError):
            relative_errors([1.0], [0.0])
