"""Cross-module integration tests.

Small but complete experiments exercising the full stack — topology,
TCP, CCAs, instrumentation, analysis — with invariants that must hold
for any correct packet-conserving transport simulation.
"""

import pytest

from repro import (
    FlowGroup,
    Scenario,
    edge_scale,
    jains_fairness_index,
    run_experiment,
)
from repro.units import mbps


def small(groups, duration=8.0, warmup=2.0, buffer_bytes=150_000, bw=mbps(20), **kw):
    return Scenario(
        name="integration",
        bottleneck_bw_bps=bw,
        buffer_bytes=buffer_bytes,
        groups=groups,
        duration=duration,
        warmup=warmup,
        stagger_max=1.0,
        seed=5,
        **kw,
    )


class TestConservation:
    @pytest.mark.parametrize("cca", ["newreno", "cubic", "bbr", "vegas"])
    def test_goodput_never_exceeds_capacity(self, cca):
        # Warm-up must outlast slow-start overshoot recovery, else data
        # delivered before the window but cumulatively ACKed inside it
        # inflates measured goodput (the reason the paper cuts 5 min).
        result = run_experiment(small((FlowGroup(cca, 3, 0.02),), duration=14.0, warmup=5.0))
        assert result.utilization <= 1.05  # small window-boundary slack

    def test_per_flow_goodput_sums_to_aggregate(self):
        result = run_experiment(small((FlowGroup("newreno", 4, 0.02),)))
        assert result.aggregate_goodput_bps == pytest.approx(
            sum(f.goodput_bps for f in result.flows)
        )

    def test_drops_attributed_to_flows_sum_to_total(self):
        result = run_experiment(
            small((FlowGroup("newreno", 4, 0.02),), buffer_bytes=30_000)
        )
        assert result.queue_drops > 0
        assert sum(f.queue_drops for f in result.flows) == result.queue_drops

    def test_sent_at_least_delivered(self):
        result = run_experiment(small((FlowGroup("newreno", 3, 0.02),)))
        for f in result.flows:
            assert f.packets_sent >= f.delivered_packets


class TestDynamics:
    def test_loss_based_flows_fill_the_buffer(self):
        result = run_experiment(
            small((FlowGroup("newreno", 4, 0.02),), duration=10.0)
        )
        # A congested drop-tail link must show measurable loss.
        assert result.aggregate_loss_rate > 0

    def test_same_rtt_newreno_converges_toward_fair(self):
        result = run_experiment(
            small((FlowGroup("newreno", 4, 0.02),), duration=40.0, warmup=15.0,
                  buffer_bytes=60_000)
        )
        assert result.jfi() > 0.8

    def test_cubic_beats_reno(self):
        result = run_experiment(
            small(
                (FlowGroup("cubic", 3, 0.02), FlowGroup("newreno", 3, 0.02)),
                duration=60.0,
                warmup=20.0,
            )
        )
        assert result.shares()["cubic"] > 0.5

    def test_rtt_unfairness_for_reno(self):
        """Same-CCA flows with 4x different RTTs: the short-RTT flow wins
        (classic AIMD RTT bias the paper controls for by fixing RTT)."""
        result = run_experiment(
            small(
                (FlowGroup("newreno", 2, 0.01), FlowGroup("newreno", 2, 0.08)),
                duration=40.0,
                warmup=10.0,
                buffer_bytes=60_000,
            )
        )
        short = sum(f.goodput_bps for f in result.flows if f.base_rtt == 0.01)
        long = sum(f.goodput_bps for f in result.flows if f.base_rtt == 0.08)
        assert short > long

    def test_edge_scale_preset_runs_end_to_end(self):
        result = run_experiment(
            edge_scale(flows=4, duration=8.0, warmup=3.0)
        )
        assert result.utilization > 0.85
        assert len(result.flows) == 4

    def test_jfi_of_experiment_matches_direct_computation(self):
        result = run_experiment(small((FlowGroup("newreno", 3, 0.02),)))
        direct = jains_fairness_index([f.goodput_bps for f in result.flows])
        assert result.jfi() == pytest.approx(direct)


class TestHalvingSemantics:
    def test_burst_drops_exceed_congestion_events(self):
        """The heart of the paper's Finding 3: under drop-tail congestion
        the queue drops more packets than flows record window
        reductions."""
        result = run_experiment(
            small((FlowGroup("newreno", 6, 0.02),), duration=20.0, warmup=5.0,
                  buffer_bytes=50_000)
        )
        assert result.queue_drops > 0
        assert result.total_congestion_events > 0
        ratio = result.queue_drops / result.total_congestion_events
        assert ratio >= 1.0
