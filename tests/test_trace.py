"""Tests for result/time-series export."""

import io
import json

from repro import trace
from repro.core.experiment import run_experiment
from repro.core.scenarios import FlowGroup, Scenario
from repro.instrumentation.tcpprobe import CwndProbe
from repro.units import mbps
import pytest


@pytest.fixture(scope="module")
def result():
    sc = Scenario(
        name="trace-test",
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=50_000,
        groups=(FlowGroup("newreno", 2, 0.02),),
        duration=5.0,
        warmup=1.0,
        stagger_max=0.5,
        seed=3,
    )
    return run_experiment(sc)


def test_flow_csv_roundtrip(result):
    buf = io.StringIO()
    trace.write_flow_csv(result, buf)
    buf.seek(0)
    rows = list(trace.read_flow_csv(buf))
    assert len(rows) == 2
    assert rows[0]["cca"] == "newreno"
    assert float(rows[0]["goodput_bps"]) > 0


def test_flow_csv_roundtrip_is_typed(result):
    # Readback coerces every numeric column so a write/read round trip
    # reproduces the FlowResult values exactly, not their string forms.
    buf = io.StringIO()
    trace.write_flow_csv(result, buf)
    buf.seek(0)
    rows = list(trace.read_flow_csv(buf))
    for row, flow in zip(rows, result.flows):
        for field in trace.FLOW_FIELDS:
            assert row[field] == getattr(flow, field), field
    assert isinstance(rows[0]["flow_id"], int)
    assert isinstance(rows[0]["halvings"], int)
    assert isinstance(rows[0]["goodput_bps"], float)
    assert isinstance(rows[0]["cca"], str)


def test_flow_csv_empty_measured_rtt_reads_back_as_none(result):
    # A flow that never completed an RTT sample writes an empty cell.
    import dataclasses

    flows = [dataclasses.replace(result.flows[0], measured_rtt=None)]
    hollow = dataclasses.replace(result, flows=flows)
    buf = io.StringIO()
    trace.write_flow_csv(hollow, buf)
    buf.seek(0)
    (row,) = list(trace.read_flow_csv(buf))
    assert row["measured_rtt"] is None


def test_flow_csv_to_path(result, tmp_path):
    path = tmp_path / "flows.csv"
    trace.write_flow_csv(result, str(path))
    rows = list(trace.read_flow_csv(str(path)))
    assert len(rows) == 2


def test_drops_csv(result):
    buf = io.StringIO()
    trace.write_drops_csv(result, buf)
    lines = buf.getvalue().strip().splitlines()
    assert lines[0] == "drop_time_s"
    assert len(lines) == 1 + len(result.drop_times)


def test_cwnd_csv():
    probe = CwndProbe(record_samples=True)
    probe.on_event(1.0, "ack", 12.0)
    probe.on_event(2.0, "loss_event", 6.0)
    buf = io.StringIO()
    trace.write_cwnd_csv(probe, buf)
    lines = buf.getvalue().strip().splitlines()
    assert lines[0] == "time_s,event,cwnd_packets"
    assert len(lines) == 3


def test_result_json(result):
    buf = io.StringIO()
    trace.write_result_json(result, buf)
    payload = json.loads(buf.getvalue())
    assert payload["scenario"]["name"] == "trace-test"
    assert len(payload["flows"]) == 2
    assert "jfi" in payload and 0 < payload["jfi"] <= 1
    assert "drop_times" not in payload


def test_result_json_with_drop_times(result):
    payload = trace.result_to_dict(result, include_drop_times=True)
    assert payload["drop_times"] == list(result.drop_times)


def test_json_flow_fields_consistent(result):
    payload = trace.result_to_dict(result)
    flow = payload["flows"][0]
    assert flow["loss_rate"] == result.flows[0].loss_rate
    assert flow["halving_rate"] == result.flows[0].halving_rate


def test_flow_fields_derive_from_dataclass():
    # FLOW_FIELDS is the FlowResult schema plus the two derived rates —
    # no hand-maintained list, no magic slice index.
    import dataclasses

    from repro.core.results import FlowResult

    stored = tuple(f.name for f in dataclasses.fields(FlowResult))
    assert trace.FLOW_FIELDS == stored + ("loss_rate", "halving_rate")


def test_result_json_flows_carry_every_field(result):
    payload = trace.result_to_dict(result)
    for flow_row, flow in zip(payload["flows"], result.flows):
        assert set(flow_row) == set(trace.FLOW_FIELDS)
        for field in trace.FLOW_FIELDS:
            assert flow_row[field] == getattr(flow, field)


def test_write_health_json(tmp_path):
    from repro.core.results import RunHealth
    from repro.obs.tracing import read_jsonl

    health = RunHealth(ok=False, reason="stall", truncated_at=3.0,
                       stalled_flows=[0], fault_timeline=[(1.0, "link down")])

    class _Holder:
        pass

    holder = _Holder()
    holder.health = health
    dest = str(tmp_path / "health.jsonl")
    trace.write_health_json(holder, dest)
    rows = read_jsonl(dest)
    assert rows[0]["topic"] == "health"
    assert rows[0]["reason"] == "stall"
    assert rows[1] == {"t": 1.0, "topic": "fault", "desc": "link down"}
