"""Tests for result/time-series export."""

import io
import json

from repro import trace
from repro.core.experiment import run_experiment
from repro.core.scenarios import FlowGroup, Scenario
from repro.instrumentation.tcpprobe import CwndProbe
from repro.units import mbps
import pytest


@pytest.fixture(scope="module")
def result():
    sc = Scenario(
        name="trace-test",
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=50_000,
        groups=(FlowGroup("newreno", 2, 0.02),),
        duration=5.0,
        warmup=1.0,
        stagger_max=0.5,
        seed=3,
    )
    return run_experiment(sc)


def test_flow_csv_roundtrip(result):
    buf = io.StringIO()
    trace.write_flow_csv(result, buf)
    buf.seek(0)
    rows = list(trace.read_flow_csv(buf))
    assert len(rows) == 2
    assert rows[0]["cca"] == "newreno"
    assert float(rows[0]["goodput_bps"]) > 0


def test_flow_csv_to_path(result, tmp_path):
    path = tmp_path / "flows.csv"
    trace.write_flow_csv(result, str(path))
    rows = list(trace.read_flow_csv(str(path)))
    assert len(rows) == 2


def test_drops_csv(result):
    buf = io.StringIO()
    trace.write_drops_csv(result, buf)
    lines = buf.getvalue().strip().splitlines()
    assert lines[0] == "drop_time_s"
    assert len(lines) == 1 + len(result.drop_times)


def test_cwnd_csv():
    probe = CwndProbe(record_samples=True)
    probe.on_event(1.0, "ack", 12.0)
    probe.on_event(2.0, "loss_event", 6.0)
    buf = io.StringIO()
    trace.write_cwnd_csv(probe, buf)
    lines = buf.getvalue().strip().splitlines()
    assert lines[0] == "time_s,event,cwnd_packets"
    assert len(lines) == 3


def test_result_json(result):
    buf = io.StringIO()
    trace.write_result_json(result, buf)
    payload = json.loads(buf.getvalue())
    assert payload["scenario"]["name"] == "trace-test"
    assert len(payload["flows"]) == 2
    assert "jfi" in payload and 0 < payload["jfi"] <= 1
    assert "drop_times" not in payload


def test_result_json_with_drop_times(result):
    payload = trace.result_to_dict(result, include_drop_times=True)
    assert payload["drop_times"] == list(result.drop_times)


def test_json_flow_fields_consistent(result):
    payload = trace.result_to_dict(result)
    flow = payload["flows"][0]
    assert flow["loss_rate"] == result.flows[0].loss_rate
    assert flow["halving_rate"] == result.flows[0].halving_rate
