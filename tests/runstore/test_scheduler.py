"""Fault-tolerant scheduler tests: dedup, hits, crash retry, timeouts."""

import pytest

from repro.runstore import (
    Job,
    RunOptions,
    RunStore,
    SweepError,
    job_key,
    run_jobs,
)

from . import fakes
from .fakes import scenario


def _store(tmp_path):
    return RunStore(str(tmp_path / "store"))


def test_dedup_identical_scenarios_run_once(tmp_path):
    store = _store(tmp_path)
    jobs = [Job(scenario(0)), Job(scenario(1)), Job(scenario(0))]
    out = run_jobs(jobs, store=store, workers=1, run_fn=fakes.quick_run)
    assert out.stats.jobs == 3
    assert out.stats.unique == 2
    assert out.stats.deduplicated == 1
    assert out.stats.misses == 2 and out.stats.hits == 0
    assert out.results[0] == out.results[2] == {"name": "s0", "seed": 0}
    assert out.results[1] == {"name": "s1", "seed": 1}


def test_hits_skip_execution_entirely(tmp_path):
    store = _store(tmp_path)
    jobs = [Job(scenario(i)) for i in range(2)]
    run_jobs(jobs, store=store, workers=1, run_fn=fakes.quick_run)
    # Second pass: run_fn raising proves every job was served from the store.
    out = run_jobs(jobs, store=store, workers=1, run_fn=fakes.fail_if_called)
    assert out.stats.hits == 2 and out.stats.misses == 0
    assert [r["name"] for r in out.results] == ["s0", "s1"]


def test_fresh_forces_resimulation(tmp_path):
    store = _store(tmp_path)
    jobs = [Job(scenario(i)) for i in range(2)]
    run_jobs(jobs, store=store, workers=1, run_fn=fakes.quick_run)
    out = run_jobs(jobs, store=store, workers=1, run_fn=fakes.quick_run, fresh=True)
    assert out.stats.hits == 0 and out.stats.misses == 2


def test_resume_runs_only_missing_keys(tmp_path):
    store = _store(tmp_path)
    jobs = [Job(scenario(i)) for i in range(4)]
    run_jobs(jobs[:2], store=store, workers=1, run_fn=fakes.quick_run)
    out = run_jobs(jobs, store=store, workers=1, run_fn=fakes.quick_run)
    assert out.stats.hits == 2 and out.stats.misses == 2
    assert [r["name"] for r in out.results] == ["s0", "s1", "s2", "s3"]


def test_results_are_persisted_per_job(tmp_path):
    store = _store(tmp_path)
    run_jobs([Job(scenario(5))], store=store, workers=1, run_fn=fakes.quick_run)
    assert store.get(job_key(scenario(5))) == {"name": "s5", "seed": 5}


def test_deterministic_error_not_retried_and_strict_raises(tmp_path):
    store = _store(tmp_path)
    jobs = [Job(scenario(i)) for i in range(4)]  # odd seeds raise
    with pytest.raises(SweepError) as excinfo:
        run_jobs(jobs, store=store, workers=1, run_fn=fakes.error_for_odd_seed)
    err = excinfo.value
    assert err.stats.retries == 0
    assert {f.name for f in err.failures} == {"s1", "s3"}
    assert all(f.kind == "error" and f.attempts == 1 for f in err.failures)
    # Completed results survive the partial failure.
    assert err.results[0] == {"name": "s0", "seed": 0}
    assert err.results[2] == {"name": "s2", "seed": 2}
    assert err.results[1] is None and err.results[3] is None


def test_strict_false_returns_partial_outcome(tmp_path):
    store = _store(tmp_path)
    jobs = [Job(scenario(i)) for i in range(2)]
    out = run_jobs(
        jobs, store=store, workers=1, run_fn=fakes.error_for_odd_seed, strict=False
    )
    assert out.stats.failures == 1
    assert out.results[0] == {"name": "s0", "seed": 0}
    assert out.results[1] is None


def test_worker_crash_is_retried(tmp_path, monkeypatch):
    flag_dir = tmp_path / "flags"
    flag_dir.mkdir()
    monkeypatch.setenv(fakes.FLAG_DIR_ENV, str(flag_dir))
    store = _store(tmp_path)
    jobs = [Job(scenario(i)) for i in range(3)]
    out = run_jobs(jobs, store=store, workers=2, run_fn=fakes.crash_once, retries=6)
    assert [r["name"] for r in out.results] == ["s0", "s1", "s2"]
    assert all(r["recovered"] for r in out.results)
    assert out.stats.retries >= 3  # every job crashed (at least) once
    assert out.stats.failures == 0
    # Results written by retried workers are persisted like any other.
    assert store.get(job_key(scenario(0)))["recovered"] is True


def test_crash_beyond_retry_budget_fails_but_keeps_other_results(tmp_path, monkeypatch):
    store = _store(tmp_path)
    # s1 crashes on every attempt, but only after s0's result is in the
    # store (see fakes.crash_for_s1): a pool breakage voids every
    # in-flight future and charges each such job an attempt, so an
    # unsynchronised crash could burn s0's retry budget too.
    monkeypatch.setenv(fakes.STORE_DIR_ENV, store.root)
    jobs = [Job(scenario(0)), Job(scenario(1))]  # s1 always crashes
    with pytest.raises(SweepError) as excinfo:
        run_jobs(
            jobs,
            store=store,
            workers=2,
            run_fn=fakes.crash_for_s1,
            retries=1,
        )
    err = excinfo.value
    assert len(err.failures) == 1
    assert err.failures[0].name == "s1"
    assert err.failures[0].kind == "crash"
    assert err.failures[0].attempts == 2  # initial try + one retry
    assert err.results[0] == {"name": "s0"}
    assert err.results[1] is None
    assert store.get(job_key(scenario(0))) == {"name": "s0"}


def test_pool_timeout_fails_job_without_killing_sweep(tmp_path):
    store = _store(tmp_path)
    jobs = [Job(scenario(0)), Job(scenario(1), RunOptions())]
    out = run_jobs(
        jobs,
        store=store,
        workers=2,
        timeout=1.0,
        retries=0,
        strict=False,
        run_fn=fakes.sleep_for_s1,
    )
    assert out.results[0] == {"name": "s0"}
    assert out.results[1] is None
    assert out.stats.failures == 1


def test_inline_timeout(tmp_path):
    store = _store(tmp_path)
    out = run_jobs(
        [Job(scenario(0, name="s1"))],
        store=store,
        workers=1,
        timeout=0.5,
        strict=False,
        run_fn=fakes.sleep_for_s1,
    )
    assert out.results == [None]
    assert out.stats.failures == 1


def test_progress_event_stream(tmp_path):
    store = _store(tmp_path)
    events = []
    jobs = [Job(scenario(i)) for i in range(2)]
    run_jobs(jobs, store=store, workers=1, run_fn=fakes.quick_run, progress=events.append)
    assert [e.kind for e in events] == ["start", "done", "start", "done"]
    assert events[1].payload == {"name": "s0", "seed": 0}
    events.clear()
    run_jobs(jobs, store=store, workers=1, run_fn=fakes.quick_run, progress=events.append)
    assert [e.kind for e in events] == ["hit", "hit"]
    assert all(e.payload is not None for e in events)
