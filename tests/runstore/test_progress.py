"""Tests for progress events, JSONL progress logs and sweep counters."""

import io
import json

from repro.core.results import RunHealth
from repro.runstore.progress import JobEvent, SweepStats, jsonl_progress


class _Result:
    def __init__(self, health=None):
        self.health = health


def test_job_event_to_json_minimal():
    event = JobEvent(kind="hit", key="abc123", name="tiny")
    assert event.to_json() == {
        "kind": "hit",
        "key": "abc123",
        "name": "tiny",
        "attempt": 1,
    }


def test_job_event_to_json_carries_timings_and_errors():
    event = JobEvent(
        kind="retry", key="k", name="n", attempt=2,
        wall_seconds=1.5, events=3000, error="worker timeout",
    )
    row = event.to_json()
    assert row["attempt"] == 2
    assert row["wall_seconds"] == 1.5
    assert row["events"] == 3000
    assert row["error"] == "worker timeout"


def test_job_event_to_json_inlines_degraded_health():
    health = RunHealth(ok=False, reason="stall", truncated_at=12.0,
                       stalled_flows=[3])
    event = JobEvent(kind="degraded", key="k", name="n",
                     payload=_Result(health))
    row = event.to_json()
    assert row["health"]["reason"] == "stall"
    assert row["health"]["stalled_flows"] == [3]
    # A healthy payload contributes no health key.
    ok = JobEvent(kind="done", key="k", name="n", payload=_Result(None))
    assert "health" not in ok.to_json()


def test_jsonl_progress_writes_one_row_per_event():
    buf = io.StringIO()
    callback = jsonl_progress(buf)
    callback(JobEvent(kind="start", key="a", name="x"))
    callback(JobEvent(kind="done", key="a", name="x", wall_seconds=0.5))
    lines = buf.getvalue().strip().splitlines()
    assert len(lines) == 2
    rows = [json.loads(line) for line in lines]
    assert rows[0]["kind"] == "start"
    assert rows[1]["wall_seconds"] == 0.5


def test_sweep_stats_observe_folds_event_kinds():
    stats = SweepStats(jobs=3, unique=2)
    stats.observe(JobEvent(kind="hit", key="a", name="x"))
    stats.observe(JobEvent(kind="done", key="b", name="y",
                           wall_seconds=2.0, events=1000))
    stats.observe(JobEvent(kind="degraded", key="c", name="z"))
    assert stats.hits == 1
    assert stats.misses == 2
    assert stats.degraded == 1
    assert stats.events == 1000
    assert stats.deduplicated == 1
