"""Picklable stand-in run functions for scheduler tests.

These live in an importable module (not a test file) so that
``ProcessPoolExecutor`` workers can unpickle them regardless of the
start method.
"""

from __future__ import annotations

import os
import signal
import time

from repro.core.scenarios import FlowGroup, Scenario
from repro.units import mbps

#: Environment variable naming the directory for crash-once flag files.
FLAG_DIR_ENV = "REPRO_TEST_FLAG_DIR"


def scenario(i: int, name: str | None = None) -> Scenario:
    return Scenario(
        name=name or f"s{i}",
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=100_000,
        groups=(FlowGroup("newreno", 1, 0.02),),
        duration=2.0,
        warmup=0.5,
        stagger_max=0.0,
        seed=i,
    )


class FakeResult:
    """Minimal stand-in for ExperimentResult (picklable, carries scenario)."""

    def __init__(self, sc: Scenario, wall_seconds: float = 2.0, events: int = 100):
        self.scenario = sc
        self.wall_seconds = wall_seconds
        self.events_processed = events


def quick_run(scenario, record_drop_times=True, convergence_check=False):
    """Cheap deterministic payload; no simulation."""
    return {"name": scenario.name, "seed": scenario.seed}


def fail_if_called(scenario, **kwargs):
    """Sentinel for hit-path tests: executing it means the cache missed."""
    raise AssertionError(f"run_fn called for {scenario.name}; expected a cache hit")


def error_for_odd_seed(scenario, **kwargs):
    """Deterministic failure for odd seeds — must never be retried."""
    if scenario.seed % 2 == 1:
        raise ValueError(f"boom for {scenario.name}")
    return {"name": scenario.name, "seed": scenario.seed}


def crash_once(scenario, **kwargs):
    """SIGKILL the worker the first time each scenario is attempted.

    Tracks attempts through flag files in ``$REPRO_TEST_FLAG_DIR`` so a
    retried job succeeds on its second try.
    """
    flag = os.path.join(os.environ[FLAG_DIR_ENV], scenario.name + ".crashed")
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return {"name": scenario.name, "recovered": True}


#: Environment variable naming the run-store root for crash_for_s1.
STORE_DIR_ENV = "REPRO_TEST_STORE_DIR"


def crash_for_s1(scenario, **kwargs):
    """SIGKILL the worker on every attempt of scenario ``s1``; else succeed.

    When ``$REPRO_TEST_STORE_DIR`` is set, ``s1`` defers its crash until
    another job's result object has landed in the store. A dying worker
    breaks the whole pool, and the scheduler (by design) charges every
    in-flight job one attempt for the breakage — so without this
    synchronisation an innocent concurrent job can repeatedly lose the
    race, burn its retry budget as collateral damage, and flake any test
    asserting that only ``s1`` fails.
    """
    if scenario.name == "s1":
        store_root = os.environ.get(STORE_DIR_ENV)
        if store_root:
            objects = os.path.join(store_root, "objects")
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    if any(n.endswith(".pkl") for n in os.listdir(objects)):
                        break
                except OSError:
                    pass
                time.sleep(0.01)
        os.kill(os.getpid(), signal.SIGKILL)
    return {"name": scenario.name}


def sleep_for_s1(scenario, **kwargs):
    """Scenario ``s1`` sleeps past any test timeout; others return at once."""
    if scenario.name == "s1":
        time.sleep(30.0)
    return {"name": scenario.name}
