"""Checkpoint/resume: a SIGKILL-ed sweep, restarted, re-runs only missing keys.

The acceptance scenario from the runstore design: results are persisted
per job as they finish, so killing the driver mid-sweep loses only the
in-flight job. Re-running the identical sweep against the same store
serves the persisted prefix as cache hits and simulates the remainder.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
_N_JOBS = 6

_CHILD = """\
import json
import sys
import time

from repro.runstore import Job, RunStore, run_jobs
from tests.runstore.fakes import scenario


def slow(sc, **kwargs):
    time.sleep(0.4)
    return {"name": sc.name}


if __name__ == "__main__":
    store = RunStore(sys.argv[1])
    n = int(sys.argv[2])
    out = run_jobs(
        [Job(scenario(i)) for i in range(n)],
        store=store,
        workers=1,
        run_fn=slow,
    )
    print(json.dumps(out.stats.to_json()))
"""


def _spawn(script, store_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_REPO_ROOT / "src"), str(_REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-u", str(script), str(store_dir), str(_N_JOBS)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=str(_REPO_ROOT),
        text=True,
    )


def _stored(store_dir):
    objects = pathlib.Path(store_dir) / "objects"
    if not objects.is_dir():
        return 0
    return sum(1 for f in objects.iterdir() if f.suffix == ".pkl")


def test_sigkilled_sweep_resumes_with_only_missing_keys(tmp_path):
    script = tmp_path / "sweep_child.py"
    script.write_text(_CHILD)
    store_dir = tmp_path / "store"

    # First run: kill -9 the driver once at least one result is persisted.
    proc = _spawn(script, store_dir)
    deadline = time.monotonic() + 60.0
    try:
        while _stored(store_dir) < 1:
            if proc.poll() is not None:
                pytest.fail(
                    "sweep finished before it could be killed:\n"
                    + proc.stderr.read()
                )
            if time.monotonic() > deadline:
                pytest.fail("no result persisted within 60s")
            time.sleep(0.01)
    finally:
        proc.kill()  # SIGKILL: no cleanup handlers run
        proc.wait()

    survived = _stored(store_dir)
    assert 0 < survived < _N_JOBS

    # Second run: same sweep, same store — completes, re-running only
    # the scenarios with no stored result.
    done = _spawn(script, store_dir)
    out, err = done.communicate(timeout=120)
    assert done.returncode == 0, err
    stats = json.loads(out.strip().splitlines()[-1])
    assert stats["hits"] == survived
    assert stats["misses"] == _N_JOBS - survived
    assert stats["failures"] == 0
    assert _stored(store_dir) == _N_JOBS
