"""RunStore durability, indexing and gc tests."""

import os
import pickle

from repro.runstore import CACHE_VERSION, RunStore, job_key, migrate_legacy
from repro.runstore.keys import legacy_key

from .fakes import FakeResult, scenario


def _store(tmp_path):
    return RunStore(str(tmp_path / "store"))


def _put(store, i, **meta):
    key = job_key(scenario(i))
    store.put(key, {"seed": i}, meta={"name": f"s{i}", **meta})
    return key


def test_roundtrip_and_meta(tmp_path):
    store = _store(tmp_path)
    key = _put(store, 1, wall_seconds=1.5, events=42)
    assert store.contains(key)
    assert store.get(key) == {"seed": 1}
    payload, meta = store.fetch(key)
    assert payload == {"seed": 1}
    assert meta["name"] == "s1"
    assert meta["wall_seconds"] == 1.5
    assert meta["events"] == 42
    assert meta["version"] == CACHE_VERSION
    full = store.meta(key)
    assert full["key"] == key and full["size"] > 0


def test_missing_key_returns_none(tmp_path):
    store = _store(tmp_path)
    assert store.get("0" * 64) is None
    assert store.fetch("0" * 64) is None
    assert not store.contains("0" * 64)


def test_corrupt_object_dropped_not_raised(tmp_path):
    store = _store(tmp_path)
    key = _put(store, 1)
    path = os.path.join(store.objects_dir, key + ".pkl")
    with open(path, "wb") as fh:
        fh.write(b"\x80\x04 not a pickle")
    assert store.get(key) is None
    assert store.corrupt_dropped == 1
    assert not os.path.exists(path)  # slot is free for re-simulation
    store.put(key, {"seed": 1})  # and rewritable
    assert store.get(key) == {"seed": 1}


def test_wrong_key_envelope_rejected(tmp_path):
    store = _store(tmp_path)
    key_a, key_b = job_key(scenario(1)), job_key(scenario(2))
    store.put(key_a, {"seed": 1})
    # Simulate a mis-filed object: key_b's slot holds key_a's envelope.
    with open(os.path.join(store.objects_dir, key_a + ".pkl"), "rb") as fh:
        data = fh.read()
    with open(os.path.join(store.objects_dir, key_b + ".pkl"), "wb") as fh:
        fh.write(data)
    assert store.get(key_b) is None
    assert store.get(key_a) == {"seed": 1}


def test_put_leaves_no_temp_files(tmp_path):
    store = _store(tmp_path)
    for i in range(3):
        _put(store, i)
    leftovers = [f for f in os.listdir(store.objects_dir) if f.startswith(".tmp-")]
    assert leftovers == []


def test_delete(tmp_path):
    store = _store(tmp_path)
    key = _put(store, 1)
    assert store.delete(key) is True
    assert store.get(key) is None
    assert store.delete(key) is False


def test_ls_and_manifest_rebuild(tmp_path):
    store = _store(tmp_path)
    keys = {_put(store, i) for i in range(3)}
    assert {e.key for e in store.ls()} == keys
    os.unlink(store.manifest_path)
    fresh = RunStore(store.root)  # manifest gone -> rebuilt from objects
    assert {e.key for e in fresh.ls()} == keys
    assert all(e.name.startswith("s") for e in fresh.ls())


def test_resolve_prefix(tmp_path):
    store = _store(tmp_path)
    key = _put(store, 1)
    assert store.resolve(key[:8]) == [key]
    assert store.resolve("f" * 64) == []


def test_gc_collects_trash_and_stale_versions(tmp_path):
    store = _store(tmp_path)
    keep = _put(store, 1)
    stale = _put(store, 2, version=CACHE_VERSION - 1)
    tmp_file = os.path.join(store.objects_dir, ".tmp-leftover")
    with open(tmp_file, "wb") as fh:
        fh.write(b"junk")
    corrupt = os.path.join(store.objects_dir, "a" * 64 + ".pkl")
    with open(corrupt, "wb") as fh:
        fh.write(b"junk")

    dry = store.gc(dry_run=True)
    assert dry.kept == 1 and len(dry.removed) == 3
    assert store.contains(stale)  # dry run removed nothing real

    report = store.gc()
    assert report.kept == 1
    assert store.contains(keep)
    assert not store.contains(stale)
    assert not os.path.exists(tmp_file)
    assert not os.path.exists(corrupt)
    assert [e.key for e in store.ls()] == [keep]


def test_gc_all_versions_keeps_old_entries(tmp_path):
    store = _store(tmp_path)
    stale = _put(store, 2, version=CACHE_VERSION - 1)
    report = store.gc(all_versions=True)
    assert report.kept == 1
    assert store.contains(stale)


def test_migrate_legacy_valid_stale_and_corrupt(tmp_path):
    store = _store(tmp_path)
    legacy_dir = tmp_path / "legacy"
    legacy_dir.mkdir()

    sc = scenario(1)
    old_version = CACHE_VERSION - 1
    valid = legacy_dir / (legacy_key(sc, old_version) + ".pkl")
    with open(valid, "wb") as fh:
        pickle.dump(FakeResult(sc), fh)
    stale = legacy_dir / ("b" * 32 + ".pkl")  # key from an older epoch
    with open(stale, "wb") as fh:
        pickle.dump(FakeResult(scenario(2)), fh)
    corrupt = legacy_dir / ("c" * 32 + ".pkl")
    corrupt.write_bytes(b"not a pickle")

    report = migrate_legacy(store, legacy_dir=str(legacy_dir))
    assert [os.path.basename(p) for p in report.migrated] == [valid.name]
    assert [os.path.basename(p) for p in report.stale] == [stale.name]
    assert [os.path.basename(p) for p in report.corrupt] == [corrupt.name]
    assert report.pruned == []
    migrated_meta = store.meta(job_key(sc))
    assert migrated_meta["migrated_from"] == valid.name
    assert migrated_meta["events"] == 100

    report = migrate_legacy(store, legacy_dir=str(legacy_dir), prune=True)
    assert not valid.exists() and not stale.exists() and not corrupt.exists()
