"""Content-addressed key scheme tests."""

import dataclasses
import hashlib
import json

from repro.runstore.keys import (
    CACHE_VERSION,
    DEFAULT_OPTIONS,
    canonical_json,
    job_key,
    legacy_key,
    scenario_to_canonical,
)

from .fakes import scenario


def test_key_is_64_hex_and_deterministic():
    a = job_key(scenario(1))
    b = job_key(scenario(1))
    assert a == b
    assert len(a) == 64
    assert all(c in "0123456789abcdef" for c in a)


def test_key_sensitive_to_every_scenario_field():
    base = scenario(1)
    variants = [
        dataclasses.replace(base, seed=2),
        dataclasses.replace(base, duration=3.0),
        dataclasses.replace(base, buffer_bytes=200_000),
        dataclasses.replace(base, name="other"),
    ]
    keys = {job_key(sc) for sc in [base] + variants}
    assert len(keys) == len(variants) + 1


def test_key_sensitive_to_options_and_version():
    sc = scenario(1)
    base = job_key(sc)
    assert job_key(sc, options={"record_drop_times": False}) != base
    assert job_key(sc, version=CACHE_VERSION + 1) != base
    # Explicitly passing the defaults is the same as passing nothing.
    assert job_key(sc, options=dict(DEFAULT_OPTIONS)) == base


def test_canonical_json_is_stable_under_dict_order():
    assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json({"a": [2, 3], "b": 1})


def test_key_matches_documented_construction():
    sc = scenario(3)
    doc = {
        "options": dict(DEFAULT_OPTIONS),
        "scenario": scenario_to_canonical(sc),
        "version": CACHE_VERSION,
    }
    expected = hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()
    assert job_key(sc) == expected


def test_canonical_json_is_valid_compact_json():
    text = canonical_json(scenario_to_canonical(scenario(4)))
    assert json.loads(text)["name"] == "s4"
    assert ": " not in text and ", " not in text


def test_legacy_key_is_md5_of_repr():
    sc = scenario(5)
    expected = hashlib.md5(f"v7|{sc!r}".encode()).hexdigest()
    assert legacy_key(sc, 7) == expected
    assert len(legacy_key(sc, 7)) == 32
