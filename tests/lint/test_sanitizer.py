"""Runtime simulation sanitizer: toggles, trip wires, clean runs."""

from __future__ import annotations

import math

import pytest

from repro.lint.sanitizer import SanitizerError, SimSanitizer
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.queue import CoDelQueue, DropTailQueue
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


# ----------------------------------------------------------------------
# Enablement
# ----------------------------------------------------------------------

def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert Simulator().sanitizer is None


def test_env_var_enables(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator().sanitizer is not None


def test_env_var_zero_disables(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Simulator().sanitizer is None


def test_constructor_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator(sanitize=False).sanitizer is None
    monkeypatch.delenv("REPRO_SANITIZE")
    assert Simulator(sanitize=True).sanitizer is not None


# ----------------------------------------------------------------------
# Engine invariants
# ----------------------------------------------------------------------

def test_nan_schedule_trips():
    sim = Simulator(sanitize=True)
    with pytest.raises(SanitizerError, match="NaN"):
        sim.schedule(math.nan, lambda: None)


def test_clean_run_counts_checks():
    sim = Simulator(sanitize=True)
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b"]
    assert sim.sanitizer is not None and sim.sanitizer.checks_performed >= 4


def test_clock_regression_trips():
    sim = Simulator(sanitize=True)
    sim.schedule(1.0, lambda: None)
    sim.now = 5.0  # corrupt the clock behind the engine's back
    with pytest.raises(SanitizerError, match="clock regression"):
        sim.run()


# ----------------------------------------------------------------------
# Queue byte conservation
# ----------------------------------------------------------------------

def _watched_queue(capacity=10_000):
    sim = Simulator(sanitize=True)
    queue = DropTailQueue(capacity)
    sim.sanitizer.watch_queue(queue)
    return sim, queue


def test_clean_queue_traffic_passes():
    _, queue = _watched_queue()
    for seq in range(5):
        assert queue.offer(0.0, Packet.data(0, seq, 1000))
    while queue.poll(0.0) is not None:
        pass
    assert queue.occupancy_bytes == 0


def test_injected_byte_leak_trips_on_enqueue():
    _, queue = _watched_queue()
    assert queue.offer(0.0, Packet.data(0, 0, 1000))
    # Inject the bug: bytes appear in the occupancy ledger without ever
    # having been admitted (the class of accounting slip the sanitizer
    # exists for).
    queue.occupancy_bytes += 123
    with pytest.raises(SanitizerError, match="byte conservation"):
        queue.offer(0.0, Packet.data(0, 1, 1000))


def test_injected_byte_leak_trips_on_dequeue():
    _, queue = _watched_queue()
    assert queue.offer(0.0, Packet.data(0, 0, 1000))
    queue.occupancy_bytes -= 7  # leak in the other direction
    with pytest.raises(SanitizerError, match="byte conservation"):
        queue.poll(0.0)


def test_reject_path_checks_conservation():
    _, queue = _watched_queue(capacity=1500)
    assert queue.offer(0.0, Packet.data(0, 0, 1000))
    queue.occupancy_bytes += 1  # corrupt, then force a tail drop
    with pytest.raises(SanitizerError, match="byte conservation"):
        queue.offer(0.0, Packet.data(0, 1, 1000))


def test_codel_head_drops_stay_conserved():
    sim = Simulator(sanitize=True)
    queue = CoDelQueue(100_000, target=0.001, interval=0.002)
    sim.sanitizer.watch_queue(queue)
    for seq in range(20):
        assert queue.offer(0.0, Packet.data(0, seq, 1000))
    # Dequeue far past the sojourn target so CoDel head-drops some
    # packets; the in-queue drop path must keep the ledger balanced.
    polled = 0
    for step in range(20):
        if queue.poll(1.0 + step * 0.01) is not None:
            polled += 1
        if not len(queue):
            break
    assert queue.dropped_packets > 0
    assert queue.occupancy_bytes == 0


# ----------------------------------------------------------------------
# Link invariants
# ----------------------------------------------------------------------

class _Counter:
    def __init__(self):
        self.packets = []

    def send(self, packet):
        self.packets.append(packet)


def test_link_transmits_clean_under_sanitizer():
    sim = Simulator(sanitize=True)
    sink = _Counter()
    link = Link(sim, rate_bps=8_000_000, delay=0.001, sink=sink)
    for seq in range(10):
        link.send(Packet.data(0, seq, 1000))
    sim.run()
    assert len(sink.packets) == 10
    assert link.queue.sanitizer is sim.sanitizer


def test_link_finish_while_idle_trips():
    sim = Simulator(sanitize=True)
    link = Link(sim, rate_bps=8_000_000, delay=0.0, sink=_Counter())
    assert not link.busy
    with pytest.raises(SanitizerError, match="while link idle"):
        sim.sanitizer.on_link_finish(link, Packet.data(3, 0, 1000))


# ----------------------------------------------------------------------
# TCP sender invariants
# ----------------------------------------------------------------------

class _BrokenCca(NewReno):
    """Collapses cwnd below 1 MSS on the first ACK."""

    def on_ack(self, rs, conn):
        self.cwnd = 0.25


def test_cwnd_below_one_mss_trips():
    sim = Simulator(sanitize=True)
    sender, _, _ = make_pipe(sim, _BrokenCca(), total_packets=50)
    sender.start()
    with pytest.raises(SanitizerError, match="below 1 MSS"):
        sim.run()


def test_corrupt_rangeset_trips():
    sim = Simulator(sanitize=True)
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=10)
    # Hand-corrupt the SACK scoreboard: overlapping ranges violate the
    # representation invariant every bisect query relies on.
    sender._sacked._starts = [0, 2]
    sender._sacked._ends = [5, 7]
    with pytest.raises(SanitizerError, match="RangeSet corrupt"):
        sim.sanitizer.check_sender(sender)


def test_sacked_outside_covered_trips():
    sim = Simulator(sanitize=True)
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=10)
    sender._sacked.add(4, 8)  # never mirrored into _covered
    with pytest.raises(SanitizerError, match="not in covered"):
        sim.sanitizer.check_sender(sender)


def test_diagnostic_names_flow_and_time():
    sim = Simulator(sanitize=True)
    sender, _, _ = make_pipe(sim, _BrokenCca(), total_packets=50)
    sender.start()
    with pytest.raises(SanitizerError, match=r"t=\d+\.\d+ flow=0"):
        sim.run()


def test_clean_transfer_passes_sanitized():
    sim = Simulator(sanitize=True)
    sender, receiver, _ = make_pipe(
        sim, NewReno(), total_packets=200, drop_indices=(7, 31)
    )
    sender.start()
    sim.run()
    assert sender.completed
    assert receiver.rcv_nxt == 200
    assert sim.sanitizer.checks_performed > 0
