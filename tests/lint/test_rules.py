"""Per-rule fixtures for the static pass.

Each rule gets three snippets: one that triggers it, one that is clean,
and one where an inline suppression silences it.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import ALL_CODES, RULE_SUMMARIES
from repro.lint.runner import UNUSED_SUPPRESSION, lint_source


def codes_of(source: str):
    return [f.code for f in lint_source("snippet.py", textwrap.dedent(source))]


CASES = {
    "RPR001": {
        "trigger": """
            import time
            def measure():
                return time.time()
            """,
        "clean": """
            def measure(sim):
                return sim.now
            """,
        "suppressed": """
            import time
            def measure():
                return time.time()  # repro-lint: disable=RPR001 -- wall profiling
            """,
    },
    "RPR002": {
        "trigger": """
            import random
            def jitter():
                return random.uniform(0.0, 1.0)
            """,
        "clean": """
            import random
            def jitter(rng: random.Random):
                return rng.uniform(0.0, 1.0)
            """,
        "suppressed": """
            import random
            def jitter():
                return random.uniform(0.0, 1.0)  # repro-lint: disable=RPR002
            """,
    },
    "RPR003": {
        "trigger": """
            def check(sim, deadline):
                return sim.now == deadline
            """,
        "clean": """
            def check(sim, deadline):
                return sim.now >= deadline
            """,
        "suppressed": """
            def check(sim, deadline):
                return sim.now == deadline  # repro-lint: disable=RPR003 -- exact rearm
            """,
    },
    "RPR004": {
        "trigger": """
            def start_all(sim, flows):
                for flow in set(flows):
                    sim.schedule(0.0, flow.start)
            """,
        "clean": """
            def start_all(sim, flows):
                for flow in sorted(set(flows)):
                    sim.schedule(0.0, flow.start)
            """,
        "suppressed": """
            def start_all(sim, flows):
                # repro-lint: disable=RPR004 -- int keys, insertion-ordered by test
                for flow in set(flows):
                    sim.schedule(0.0, flow.start)
            """,
    },
    "RPR005": {
        "trigger": """
            def record(value, log=[]):
                log.append(value)
            """,
        "clean": """
            def record(value, log=None):
                if log is None:
                    log = []
                log.append(value)
            """,
        "suppressed": """
            def record(value, log=[]):  # repro-lint: disable=RPR005
                log.append(value)
            """,
    },
    "RPR006": {
        "trigger": """
            def arm(sim):
                sim.schedule(1.0, fire, 1, 2)
            def fire(x):
                pass
            """,
        "clean": """
            def arm(sim):
                sim.schedule(1.0, fire, 1, 2)
            def fire(x, y):
                pass
            """,
        "suppressed": """
            def arm(sim):
                sim.schedule(1.0, fire, 1, 2)  # repro-lint: disable=RPR006
            def fire(x):
                pass
            """,
    },
}


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_triggers(code):
    assert codes_of(CASES[code]["trigger"]) == [code]


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_clean(code):
    assert codes_of(CASES[code]["clean"]) == []


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_suppressed(code):
    assert codes_of(CASES[code]["suppressed"]) == []


def test_every_rule_has_a_fixture_and_summary():
    assert sorted(CASES) == sorted(ALL_CODES)
    assert sorted(RULE_SUMMARIES) == sorted(ALL_CODES)


# ----------------------------------------------------------------------
# Rule-specific edges
# ----------------------------------------------------------------------

def test_wall_clock_variants_flagged():
    src = """
        import time
        from datetime import datetime
        def f():
            return time.perf_counter(), time.monotonic(), datetime.now()
        """
    assert codes_of(src) == ["RPR001"] * 3


def test_seeded_random_not_flagged():
    assert codes_of(
        """
        import random
        RNG = random.Random(42)
        """
    ) == []


def test_comparison_against_none_not_flagged():
    # `x.delivered_time == None` is an identity question, not a float
    # hazard (and is its own style problem, not this linter's).
    assert codes_of(
        """
        def f(meta):
            return meta.delivered_time == None
        """
    ) == []


def test_set_iteration_without_scheduling_not_flagged():
    assert codes_of(
        """
        def total(flows):
            acc = 0
            for flow in set(flows):
                acc += flow
            return acc
        """
    ) == []


def test_dict_view_iteration_feeding_schedule_flagged():
    src = """
        def start(sim, senders):
            for fid in senders.keys():
                sim.schedule_at(1.0, senders[fid].start)
        """
    assert codes_of(src) == ["RPR004"]


def test_schedule_arity_resolves_self_methods():
    src = """
        class Node:
            def go(self, sim):
                sim.schedule(1.0, self._fire, 1, 2, 3)
            def _fire(self, x):
                pass
        """
    assert codes_of(src) == ["RPR006"]


def test_schedule_arity_allows_defaults_and_varargs():
    assert codes_of(
        """
        def arm(sim):
            sim.schedule(1.0, fire, 1)
            sim.schedule(1.0, spray, 1, 2, 3, 4)
        def fire(x, y=2):
            pass
        def spray(*args):
            pass
        """
    ) == []


def test_schedule_arity_skips_unresolvable_callbacks():
    # `self.sink.send` cannot be resolved statically; stay silent.
    assert codes_of(
        """
        class Wire:
            def forward(self, packet):
                self.sim.schedule(0.1, self.sink.send, packet)
        """
    ) == []


# ----------------------------------------------------------------------
# Suppression machinery
# ----------------------------------------------------------------------

def test_unused_suppression_is_reported():
    findings = lint_source(
        "snippet.py",
        "x = 1  # repro-lint: disable=RPR001\n",
    )
    assert [f.code for f in findings] == [UNUSED_SUPPRESSION]


def test_directive_inside_docstring_is_inert():
    src = textwrap.dedent(
        '''
        def f():
            """Example::

                t = time.time()  # repro-lint: disable=RPR001
            """
        '''
    )
    assert lint_source("snippet.py", src) == []


def test_disable_all_covers_every_code():
    src = textwrap.dedent(
        """
        import time
        def f(sim, deadline, log=[]):  # repro-lint: disable=all
            return None
        """
    )
    assert lint_source("snippet.py", src) == []


def test_wrong_code_does_not_suppress():
    src = textwrap.dedent(
        """
        import time
        def f():
            return time.time()  # repro-lint: disable=RPR002
        """
    )
    codes = {f.code for f in lint_source("snippet.py", src)}
    # The RPR001 finding survives and the mismatched directive is unused.
    assert codes == {"RPR001", UNUSED_SUPPRESSION}


def test_syntax_error_reported_not_raised():
    findings = lint_source("snippet.py", "def broken(:\n")
    assert [f.code for f in findings] == ["RPR999"]
