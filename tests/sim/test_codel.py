"""Tests for the CoDel AQM."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queue import CoDelQueue
from repro.sim.topology import FlowSpec, build_dumbbell
from repro.tcp.cca.newreno import NewReno
from repro.units import mbps


def pkt(seq=0):
    return Packet.data(0, seq)


def test_validation():
    with pytest.raises(ValueError):
        CoDelQueue(10_000, target=0.0)
    with pytest.raises(ValueError):
        CoDelQueue(10_000, interval=-1.0)


def test_no_drops_below_target_sojourn():
    q = CoDelQueue(100_000)
    for i in range(10):
        q.offer(float(i) * 0.001, pkt(i))
    # Dequeue quickly: sojourn < 5 ms target.
    out = [q.poll(0.011 + 0.0001 * i) for i in range(10)]
    assert all(p is not None for p in out)
    assert q.dropped_packets == 0


def test_hard_capacity_still_enforced():
    q = CoDelQueue(3000)
    assert q.offer(0.0, pkt()) and q.offer(0.0, pkt())
    assert not q.offer(0.0, pkt())
    assert q.dropped_packets == 1


def test_persistent_delay_triggers_dequeue_drops():
    q = CoDelQueue(1_000_000)
    for i in range(200):
        q.offer(0.0, pkt(i))
    # Dequeue slowly: every packet has a large sojourn. After target is
    # exceeded for more than one interval, CoDel starts dropping.
    drops_before = q.dropped_packets
    polled = 0
    t = 0.2
    while len(q) and polled < 150:
        if q.poll(t) is not None:
            polled += 1
        t += 0.02
    assert q.dropped_packets > drops_before


def test_drop_listener_invoked():
    q = CoDelQueue(1_000_000)
    drops = []
    q.drop_listener = lambda now, p: drops.append(now)
    for i in range(50):
        q.offer(0.0, pkt(i))
    t = 0.5
    for _ in range(30):
        q.poll(t)
        t += 0.05
    assert drops, "dequeue drops must notify the listener"


def test_codel_bounds_standing_queue_end_to_end():
    """Four NewReno flows on a CoDel bottleneck: utilisation stays high
    while the standing queue (and hence RTT) stays near the target."""
    sim = Simulator()
    queue = CoDelQueue(3_000_000)
    d = build_dumbbell(
        sim,
        [FlowSpec(NewReno(), rtt=0.02) for _ in range(4)],
        bottleneck_bw_bps=mbps(20),
        buffer_bytes=3_000_000,
        queue=queue,
    )
    d.start_all()
    sim.run(until=10.0)
    goodput = sum(f.sender.snd_una for f in d.flows) * 1448 * 8 / 10.0
    assert goodput > mbps(16)
    srtt = d.flows[0].sender.rtt.srtt
    # Drop-tail with a 3 MB buffer would push RTT past 1 s; CoDel keeps
    # it within a few times the 5 ms target above the 20 ms base.
    assert srtt < 0.08
    assert queue.dropped_packets > 0
