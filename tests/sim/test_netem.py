"""Unit tests for the netem impairment element."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.netem import NetemDelay
from repro.sim.packet import Packet


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.times = []

    def send(self, packet):
        self.times.append(self.sim.now)


def test_constant_delay():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.05, sink=sink)
    netem.send(Packet.data(0, 0))
    sim.run()
    assert sink.times == [pytest.approx(0.05)]


def test_jitter_stays_within_bounds():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.05, sink=sink, jitter=0.01, rng=random.Random(2))
    for _ in range(200):
        netem.send(Packet.data(0, 0))
    sim.run()
    assert all(0.04 - 1e-12 <= t <= 0.06 + 1e-12 for t in sink.times)
    assert len(set(round(t, 9) for t in sink.times)) > 50  # actually varies


def test_random_loss_rate_approximate():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.01, sink=sink, loss_rate=0.3, rng=random.Random(3))
    n = 2000
    for _ in range(n):
        netem.send(Packet.data(0, 0))
    sim.run()
    delivered = len(sink.times)
    assert netem.dropped_packets == n - delivered
    assert 0.25 < netem.dropped_packets / n < 0.35


def test_zero_loss_by_default():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.01, sink=sink)
    for _ in range(100):
        netem.send(Packet.data(0, 0))
    sim.run()
    assert netem.dropped_packets == 0
    assert len(sink.times) == 100


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        NetemDelay(sim, -0.1)
    with pytest.raises(ValueError):
        NetemDelay(sim, 0.01, jitter=0.02)  # jitter > delay
    with pytest.raises(ValueError):
        NetemDelay(sim, 0.01, loss_rate=1.0)
    with pytest.raises(RuntimeError):
        NetemDelay(sim, 0.01).send(Packet.data(0, 0))


def test_jitter_can_reorder_packets():
    """Large jitter relative to packet spacing must produce reordering."""
    sim = Simulator()

    class Tagger:
        def __init__(self):
            self.seen = []

        def send(self, packet):
            self.seen.append((sim.now, packet.seq))

    tagger = Tagger()
    netem = NetemDelay(sim, 0.05, sink=tagger, jitter=0.04, rng=random.Random(11))
    for seq in range(100):
        sim.schedule_at(seq * 0.001, netem.send, Packet.data(0, seq))
    sim.run()
    arrival_seqs = [seq for _, seq in sorted(tagger.seen)]
    assert sorted(arrival_seqs) == list(range(100))  # nothing lost
    assert arrival_seqs != list(range(100))  # ...but order scrambled


def test_loss_pattern_deterministic_under_fixed_seed():
    def drops(seed):
        sim = Simulator()
        sink = Collector(sim)
        netem = NetemDelay(
            sim, 0.01, sink=sink, loss_rate=0.2, rng=random.Random(seed)
        )
        pattern = []
        for seq in range(500):
            before = netem.dropped_packets
            netem.send(Packet.data(0, seq))
            pattern.append(netem.dropped_packets > before)
        sim.run()
        return pattern

    assert drops(42) == drops(42)
    assert drops(42) != drops(43)


def test_default_rng_instances_are_decorrelated():
    """Two netem elements built without an explicit RNG on the same sim
    must not share a loss/jitter sequence (the old fixed-seed fallback
    made every instance's impairments identical)."""
    sim = Simulator()
    sink_a, sink_b = Collector(sim), Collector(sim)
    netem_a = NetemDelay(sim, 0.01, sink=sink_a, loss_rate=0.3)
    netem_b = NetemDelay(sim, 0.01, sink=sink_b, loss_rate=0.3)
    pattern_a, pattern_b = [], []
    for seq in range(400):
        before = netem_a.dropped_packets
        netem_a.send(Packet.data(0, seq))
        pattern_a.append(netem_a.dropped_packets > before)
        before = netem_b.dropped_packets
        netem_b.send(Packet.data(0, seq))
        pattern_b.append(netem_b.dropped_packets > before)
    sim.run()
    assert pattern_a != pattern_b


def test_default_rng_is_reproducible_across_simulators():
    def pattern():
        sim = Simulator()
        sink = Collector(sim)
        netem = NetemDelay(sim, 0.01, sink=sink, loss_rate=0.3)
        out = []
        for seq in range(300):
            before = netem.dropped_packets
            netem.send(Packet.data(0, seq))
            out.append(netem.dropped_packets > before)
        sim.run()
        return out

    assert pattern() == pattern()


def test_set_delay_changes_delivery_time_and_validates():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.05, sink=sink)
    netem.set_delay(0.2)
    netem.send(Packet.data(0, 0))
    sim.run()
    assert sink.times == [pytest.approx(0.2)]
    with pytest.raises(ValueError):
        netem.set_delay(-0.1)
    with pytest.raises(ValueError):
        netem.set_delay(0.01, jitter=0.02)  # jitter > delay


def test_set_delay_clamps_inherited_jitter():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.05, sink=sink, jitter=0.03, rng=random.Random(5))
    netem.set_delay(0.01)  # old jitter would exceed the new delay
    assert netem.jitter <= netem.delay
    for _ in range(50):
        netem.send(Packet.data(0, 0))
    sim.run()
    assert all(t >= 0.0 for t in sink.times)
