"""Unit tests for the netem impairment element."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.netem import NetemDelay
from repro.sim.packet import Packet


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.times = []

    def send(self, packet):
        self.times.append(self.sim.now)


def test_constant_delay():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.05, sink=sink)
    netem.send(Packet.data(0, 0))
    sim.run()
    assert sink.times == [pytest.approx(0.05)]


def test_jitter_stays_within_bounds():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.05, sink=sink, jitter=0.01, rng=random.Random(2))
    for _ in range(200):
        netem.send(Packet.data(0, 0))
    sim.run()
    assert all(0.04 - 1e-12 <= t <= 0.06 + 1e-12 for t in sink.times)
    assert len(set(round(t, 9) for t in sink.times)) > 50  # actually varies


def test_random_loss_rate_approximate():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.01, sink=sink, loss_rate=0.3, rng=random.Random(3))
    n = 2000
    for _ in range(n):
        netem.send(Packet.data(0, 0))
    sim.run()
    delivered = len(sink.times)
    assert netem.dropped_packets == n - delivered
    assert 0.25 < netem.dropped_packets / n < 0.35


def test_zero_loss_by_default():
    sim = Simulator()
    sink = Collector(sim)
    netem = NetemDelay(sim, 0.01, sink=sink)
    for _ in range(100):
        netem.send(Packet.data(0, 0))
    sim.run()
    assert netem.dropped_packets == 0
    assert len(sink.times) == 100


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        NetemDelay(sim, -0.1)
    with pytest.raises(ValueError):
        NetemDelay(sim, 0.01, jitter=0.02)  # jitter > delay
    with pytest.raises(ValueError):
        NetemDelay(sim, 0.01, loss_rate=1.0)
    with pytest.raises(RuntimeError):
        NetemDelay(sim, 0.01).send(Packet.data(0, 0))
