"""Tests for the Packet representation."""

from repro.sim.packet import Packet
from repro.units import ACK_PACKET_BYTES, DATA_PACKET_BYTES


def test_data_constructor():
    p = Packet.data(5, 42)
    assert p.flow_id == 5
    assert p.seq == 42
    assert p.size == DATA_PACKET_BYTES
    assert not p.is_ack
    assert p.sack_blocks == ()


def test_ack_constructor():
    a = Packet.ack(3, 17, sack_blocks=((20, 25),))
    assert a.is_ack
    assert a.ack_seq == 17
    assert a.sack_blocks == ((20, 25),)
    assert a.size == ACK_PACKET_BYTES


def test_rate_sampling_fields_default():
    p = Packet.data(0, 0)
    assert p.delivered == 0
    assert p.is_app_limited is False
    assert p.retransmitted is False


def test_custom_size():
    p = Packet.data(0, 0, size=576)
    assert p.size == 576


def test_slots_prevent_new_attributes():
    p = Packet.data(0, 0)
    try:
        p.bogus = 1
    except AttributeError:
        pass
    else:
        raise AssertionError("Packet should be slotted")
