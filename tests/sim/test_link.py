"""Unit tests for Link and DelayLink path elements."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import DelayLink, Link
from repro.sim.packet import Packet
from repro.sim.queue import DropTailQueue


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def send(self, packet):
        self.received.append((self.sim.now, packet))


def test_delaylink_delays_by_constant():
    sim = Simulator()
    sink = Collector(sim)
    link = DelayLink(sim, 0.25, sink=sink)
    link.send(Packet.data(0, 1))
    sim.run()
    assert sink.received[0][0] == pytest.approx(0.25)
    assert link.forwarded_packets == 1


def test_delaylink_zero_delay_is_synchronous():
    sim = Simulator()
    sink = Collector(sim)
    link = DelayLink(sim, 0.0, sink=sink)
    link.send(Packet.data(0, 1))
    assert sink.received  # delivered without running the loop


def test_delaylink_requires_sink():
    sim = Simulator()
    link = DelayLink(sim, 0.1)
    with pytest.raises(RuntimeError):
        link.send(Packet.data(0, 1))


def test_delaylink_rejects_negative_delay():
    with pytest.raises(ValueError):
        DelayLink(Simulator(), -1.0)


def test_link_serialisation_delay():
    # 1500 bytes at 1.2 Mbps -> 10 ms per packet.
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=1_200_000, delay=0.0, sink=sink)
    link.send(Packet.data(0, 0, size=1500))
    sim.run()
    assert sink.received[0][0] == pytest.approx(0.010)


def test_link_back_to_back_packets_serialise():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=1_200_000, delay=0.0, sink=sink)
    for seq in range(3):
        link.send(Packet.data(0, seq, size=1500))
    sim.run()
    times = [t for t, _ in sink.received]
    assert times == pytest.approx([0.010, 0.020, 0.030])


def test_link_adds_propagation_delay():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=1_200_000, delay=0.1, sink=sink)
    link.send(Packet.data(0, 0, size=1500))
    sim.run()
    assert sink.received[0][0] == pytest.approx(0.110)


def test_link_pipelines_propagation():
    # Propagation overlaps with the next packet's serialisation.
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=1_200_000, delay=0.5, sink=sink)
    for seq in range(2):
        link.send(Packet.data(0, seq, size=1500))
    sim.run()
    times = [t for t, _ in sink.received]
    assert times == pytest.approx([0.510, 0.520])


def test_link_preserves_order():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=10_000_000, delay=0.01, sink=sink)
    for seq in range(20):
        link.send(Packet.data(0, seq))
    sim.run()
    assert [p.seq for _, p in sink.received] == list(range(20))


def test_link_drops_on_full_queue():
    sim = Simulator()
    sink = Collector(sim)
    queue = DropTailQueue(3000)  # two packets
    link = Link(sim, rate_bps=1_200_000, sink=sink, queue=queue)
    for seq in range(5):
        link.send(Packet.data(0, seq))
    sim.run()
    # First packet starts transmitting immediately (leaves the queue),
    # so 1 in service + 2 queued = 3 delivered, 2 dropped.
    assert len(sink.received) == 3
    assert queue.dropped_packets == 2


def test_link_counts_transmissions():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=1_000_000, sink=sink)
    for seq in range(4):
        link.send(Packet.data(0, seq, size=1000))
    sim.run()
    assert link.transmitted_packets == 4
    assert link.transmitted_bytes == 4000


def test_link_resumes_after_idle():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=1_200_000, sink=sink)
    link.send(Packet.data(0, 0))
    sim.run()
    assert sim.now == pytest.approx(0.010)
    # Link went idle; a later arrival must restart the transmitter.
    sim.schedule(1.0, link.send, Packet.data(0, 1))
    sim.run()
    assert len(sink.received) == 2
    # Arrival at 1.01 + 10 ms serialisation.
    assert sink.received[1][0] == pytest.approx(1.020)


def test_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, rate_bps=0)
    with pytest.raises(ValueError):
        Link(sim, rate_bps=1e6, delay=-0.1)


class EveryOtherLoss:
    """Deterministic LossModel: drops every second packet."""

    def __init__(self):
        self.calls = 0

    def should_drop(self, packet):
        self.calls += 1
        return self.calls % 2 == 0


def test_link_down_pauses_transmitter_and_up_resumes():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=12_000, sink=sink)  # 1 s per 1500 B packet
    link.set_down()
    for seq in range(3):
        link.send(Packet.data(0, seq))
    sim.run(until=1.0)
    assert sink.received == []  # nothing serialises while down
    assert len(link.queue) == 3  # ...but the queue kept accepting
    link.set_up()
    sim.run()
    assert [p.seq for _, p in sink.received] == [0, 1, 2]


def test_link_down_lets_inflight_packet_complete():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=12_000, sink=sink)
    link.send(Packet.data(0, 0))  # starts serialising immediately
    link.send(Packet.data(0, 1))
    sim.schedule(0.5, link.set_down)  # mid-serialisation of seq 0
    sim.run()
    assert [p.seq for _, p in sink.received] == [0]  # in-flight completes
    assert len(link.queue) == 1  # seq 1 stranded behind the blackout


def test_link_down_overflows_queue_naturally():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=12_000, sink=sink, queue=DropTailQueue(3000))
    link.set_down()
    for seq in range(5):
        link.send(Packet.data(0, seq))
    assert len(link.queue) == 2
    assert link.queue.dropped_packets == 3


def test_set_down_and_up_are_idempotent():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=12_000, sink=sink)
    link.set_up()  # already up: no-op
    link.set_down()
    link.set_down()
    link.set_up()
    link.send(Packet.data(0, 0))
    sim.run()
    assert len(sink.received) == 1


def test_set_rate_applies_from_next_serialisation():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=12_000, sink=sink)
    link.send(Packet.data(0, 0))
    link.send(Packet.data(0, 1))
    link.set_rate(6_000)  # halve the rate; seq 0 already serialising at full
    sim.run()
    times = [t for t, _ in sink.received]
    assert times[0] == pytest.approx(1.0)  # old rate
    assert times[1] == pytest.approx(3.0)  # 1.0 + 2 s at the halved rate
    with pytest.raises(ValueError):
        link.set_rate(0)


def test_loss_model_drops_before_queue():
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, rate_bps=12_000, sink=sink)
    link.loss_model = EveryOtherLoss()
    for seq in range(6):
        link.send(Packet.data(0, seq))
    sim.run()
    assert link.impaired_drops == 3
    assert link.queue.dropped_packets == 0  # channel loss, not congestion
    assert [p.seq for _, p in sink.received] == [0, 2, 4]
