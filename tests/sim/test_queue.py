"""Unit tests for queue disciplines."""

import random

import pytest

from repro.sim.packet import Packet
from repro.sim.queue import DropTailQueue, REDQueue


def pkt(flow=0, size=1500):
    return Packet.data(flow, 0, size)


class TestDropTail:
    def test_accepts_until_capacity(self):
        q = DropTailQueue(4500)
        assert q.offer(0.0, pkt()) and q.offer(0.0, pkt()) and q.offer(0.0, pkt())
        assert q.occupancy_bytes == 4500
        assert not q.offer(0.0, pkt())
        assert q.dropped_packets == 1
        assert q.enqueued_packets == 3

    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        packets = [Packet.data(0, seq) for seq in range(3)]
        for p in packets:
            q.offer(0.0, p)
        assert [q.poll().seq for _ in range(3)] == [0, 1, 2]

    def test_poll_empty_returns_none(self):
        q = DropTailQueue(1000)
        assert q.poll() is None

    def test_occupancy_tracks_poll(self):
        q = DropTailQueue(10_000)
        q.offer(0.0, pkt(size=1000))
        q.offer(0.0, pkt(size=500))
        assert q.occupancy_bytes == 1500
        q.poll()
        assert q.occupancy_bytes == 500

    def test_partial_fit_dropped(self):
        # 1000 bytes free but a 1500-byte packet must be dropped whole.
        q = DropTailQueue(2500)
        assert q.offer(0.0, pkt(size=1500))
        assert not q.offer(0.0, pkt(size=1500))
        assert q.offer(0.0, pkt(size=1000))

    def test_drop_listener_invoked_with_time_and_packet(self):
        q = DropTailQueue(1500)
        drops = []
        q.drop_listener = lambda now, p: drops.append((now, p.flow_id))
        q.offer(1.0, pkt(flow=1))
        q.offer(2.0, pkt(flow=2))
        assert drops == [(2.0, 2)]

    def test_enqueue_listener(self):
        q = DropTailQueue(10_000)
        seen = []
        q.enqueue_listener = lambda now, p: seen.append(p.flow_id)
        q.offer(0.0, pkt(flow=7))
        assert seen == [7]

    def test_len_counts_packets(self):
        q = DropTailQueue(10_000)
        for _ in range(4):
            q.offer(0.0, pkt())
        assert len(q) == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestRed:
    def test_below_min_threshold_never_drops(self):
        q = REDQueue(100_000, min_thresh_bytes=50_000, max_thresh_bytes=80_000)
        for _ in range(10):
            assert q.offer(0.0, pkt())
        assert q.dropped_packets == 0

    def test_hard_limit_always_drops(self):
        q = REDQueue(3000, min_thresh_bytes=1000, max_thresh_bytes=2000)
        q.offer(0.0, pkt())
        q.offer(0.0, pkt())
        assert not q.offer(0.0, pkt(size=1500))  # would exceed capacity

    def test_probabilistic_drops_between_thresholds(self):
        q = REDQueue(
            1_000_000,
            min_thresh_bytes=10_000,
            max_thresh_bytes=50_000,
            max_p=0.5,
            weight=1.0,  # avg tracks instantaneous occupancy
            rng=random.Random(1),
        )
        dropped = 0
        for _ in range(200):
            if not q.offer(0.0, pkt()):
                dropped += 1
            else:
                q.poll() if q.occupancy_bytes > 30_000 else None
        assert dropped > 0, "RED should drop probabilistically above min threshold"

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            REDQueue(1000, min_thresh_bytes=800, max_thresh_bytes=700)
        with pytest.raises(ValueError):
            REDQueue(1000, max_p=0.0)


class TestSetCapacity:
    def test_grow_keeps_backlog(self):
        q = DropTailQueue(3000)
        assert q.offer(0.0, pkt()) and q.offer(0.0, pkt())
        q.set_capacity(6000)
        assert q.capacity_bytes == 6000
        assert len(q) == 2 and q.dropped_packets == 0
        assert q.offer(0.0, pkt()) and q.offer(0.0, pkt())

    def test_shrink_evicts_newest_first_with_accounting(self):
        q = DropTailQueue(6000)
        drops = []
        q.drop_listener = lambda now, p: drops.append((now, p.seq))
        for seq in range(4):
            q.offer(0.0, Packet.data(0, seq, 1500))
        q.set_capacity(3000, now=2.5)
        assert q.occupancy_bytes == 3000
        assert q.dropped_packets == 2
        assert drops == [(2.5, 3), (2.5, 2)]  # tail (newest) evicted first
        # survivors keep FIFO order
        assert [q.poll().seq, q.poll().seq] == [0, 1]

    def test_shrink_validation(self):
        q = DropTailQueue(3000)
        with pytest.raises(ValueError):
            q.set_capacity(0)

    def test_red_rescales_thresholds(self):
        q = REDQueue(100_000, rng=random.Random(1))
        min0, max0 = q.min_thresh, q.max_thresh
        q.set_capacity(50_000)
        assert q.min_thresh == min0 // 2
        assert q.max_thresh == max0 // 2
        assert 0 < q.min_thresh < q.max_thresh <= q.capacity_bytes
        q.set_capacity(100_000)
        assert 0 < q.min_thresh < q.max_thresh <= q.capacity_bytes
