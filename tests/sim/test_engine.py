"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator, event_pending, event_time


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_processed == 0
    assert sim.pending_events == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, fired.append, "hello")
    sim.run()
    assert fired == ["hello"]
    assert sim.now == 1.5
    assert sim.events_processed == 1


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(2.5, fired.append, "x")
    sim.run()
    assert sim.now == 2.5 and fired == ["x"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_clock_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0  # clock advanced to the boundary
    sim.run()
    assert fired == [1, 5]


def test_event_at_exactly_until_fires():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "edge")
    sim.run(until=2.0)
    assert fired == ["edge"]


def test_cancellation():
    sim = Simulator()
    fired = []
    keep = sim.schedule(1.0, fired.append, "keep")
    drop = sim.schedule(1.0, fired.append, "drop")
    sim.cancel(drop)
    sim.run()
    assert fired == ["keep"]
    assert event_pending(keep) is False


def test_double_cancel_is_noop():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.cancel(ev)
    sim.cancel(ev)
    sim.run()
    assert sim.events_processed == 0


def test_event_helpers():
    sim = Simulator()
    ev = sim.schedule(4.0, lambda: None)
    assert event_time(ev) == 4.0
    assert event_pending(ev)
    sim.cancel(ev)
    assert not event_pending(ev)


def test_events_scheduled_from_callbacks():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_max_events_safety_valve():
    sim = Simulator()

    def forever():
        sim.schedule(0.1, forever)

    sim.schedule(0.0, forever)
    sim.run(max_events=100)
    assert sim.events_processed == 100


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == [1, 2]


def test_step_skips_cancelled():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "no")
    sim.schedule(2.0, fired.append, "yes")
    sim.cancel(ev)
    assert sim.step() is True
    assert fired == ["yes"]


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_clock_does_not_go_backwards():
    sim = Simulator()
    times = []
    for delay in (5.0, 1.0, 3.0, 1.0, 4.0):
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)


def test_stop_ends_run_without_advancing_to_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=10.0)
    assert fired == [1]
    assert sim.now == 1.0  # clock left where the stop happened
    sim.run()  # a later run proceeds normally
    assert fired == [1, 5]


def test_stop_outside_run_does_not_poison_next_run():
    sim = Simulator()
    sim.stop()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.run()
    assert fired == [1]


def test_max_events_budget_is_cumulative_across_runs():
    sim = Simulator()

    def forever():
        sim.schedule(0.1, forever)

    sim.schedule(0.0, forever)
    sim.run(max_events=50)
    sim.run(max_events=100)
    assert sim.events_processed == 100


def test_next_seed_stream_is_distinct_and_reproducible():
    sim_a = Simulator()
    sim_b = Simulator()
    seeds_a = [sim_a.next_seed(0x4E45) for _ in range(32)]
    seeds_b = [sim_b.next_seed(0x4E45) for _ in range(32)]
    assert seeds_a == seeds_b  # pure function of construction order
    assert len(set(seeds_a)) == 32  # no two components share a seed
    assert sim_a.next_seed(0) != sim_a.next_seed(0)


# ----------------------------------------------------------------------
# Budget/stop boundary semantics (the latent interaction fixed alongside
# the hot-path work): a budget that runs out exactly as the last due
# event executes is a *completed* run, and stop() must never let the
# clock jump to the horizon.
# ----------------------------------------------------------------------


def test_budget_exhausted_exactly_at_drain_is_natural_completion():
    sim = Simulator()
    fired = []
    for i in range(3):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(until=10.0, max_events=3)
    assert fired == [0, 1, 2]
    # Every due event executed; the budget just happened to hit zero at
    # the same moment. That is completion, so the clock advances to the
    # horizon exactly as it would without a budget.
    assert sim.now == 10.0


def test_budget_exhausted_with_due_events_pending_is_truncation():
    sim = Simulator()
    fired = []
    for i in range(4):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(until=10.0, max_events=3)
    assert fired == [0, 1, 2]
    assert sim.now == 3.0  # left at the last executed event
    sim.run(until=10.0)  # the leftover event is still runnable
    assert fired == [0, 1, 2, 3]
    assert sim.now == 10.0


def test_budget_exhausted_with_only_beyond_horizon_events_completes():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 0)
    sim.schedule(50.0, fired.append, 99)
    sim.run(until=10.0, max_events=1)
    assert fired == [0]
    # The only pending event is beyond the horizon, so the run is
    # complete for until=10.0 regardless of the exhausted budget.
    assert sim.now == 10.0


def test_max_events_at_or_below_processed_executes_nothing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    sim.run(max_events=2)
    assert sim.events_processed == 2
    sim.schedule(1.0, fired.append, 3)
    before = sim.now
    sim.run(max_events=2)  # budget already consumed: a no-op
    assert fired == [1, 2]
    assert sim.now == before
    sim.run(max_events=1)  # below processed: also a no-op
    assert fired == [1, 2]


def test_stop_from_final_handler_does_not_advance_to_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, lambda: (fired.append(2), sim.stop()))
    sim.run(until=10.0)
    assert fired == [1, 2]
    # The heap is drained, but the stop means the caller asked to halt
    # *here*; jumping the clock to the horizon would hide the abort.
    assert sim.now == 2.0


def test_stop_combined_with_exhausted_budget_stays_truncated():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.run(until=10.0, max_events=1)
    assert fired == [1]
    assert sim.now == 1.0


def test_budget_boundary_after_cancellations():
    sim = Simulator()
    fired = []
    keep = [sim.schedule(float(i + 1), fired.append, i) for i in range(6)]
    for event in keep[3:]:
        sim.cancel(event)
    # Three live events, budget of exactly three: natural completion
    # even though cancelled entries still sit in the heap.
    sim.run(until=10.0, max_events=3)
    assert fired == [0, 1, 2]
    assert sim.now == 10.0
