"""Tests for the dumbbell builder."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.queue import REDQueue
from repro.sim.topology import FlowSpec, build_dumbbell
from repro.tcp.cca.newreno import NewReno
from repro.units import mbps


def test_build_wires_one_pair_per_flow(sim):
    specs = [FlowSpec(NewReno()) for _ in range(3)]
    d = build_dumbbell(sim, specs, bottleneck_bw_bps=mbps(10), buffer_bytes=100_000)
    assert len(d.flows) == 3
    ids = [f.flow_id for f in d.flows]
    assert ids == [0, 1, 2]
    for flow in d.flows:
        assert flow.sender.path is d.bottleneck
        assert flow.receiver.reverse_path is not None


def test_requires_flows(sim):
    with pytest.raises(ValueError):
        build_dumbbell(sim, [], bottleneck_bw_bps=mbps(10), buffer_bytes=100_000)


def test_rtt_below_fixed_propagation_rejected(sim):
    specs = [FlowSpec(NewReno(), rtt=0.0001)]
    with pytest.raises(ValueError):
        build_dumbbell(sim, specs, bottleneck_bw_bps=mbps(10), buffer_bytes=100_000)


def test_base_rtt_is_respected(sim):
    """A single unconstrained flow should measure ~its configured RTT."""
    spec = FlowSpec(NewReno(), rtt=0.080)
    d = build_dumbbell(
        sim, [spec], bottleneck_bw_bps=mbps(100), buffer_bytes=1_000_000
    )
    d.start_all()
    sim.run(until=0.5)
    sender = d.flows[0].sender
    assert sender.rtt.min_rtt == pytest.approx(0.080, rel=0.1)


def test_demux_routes_by_flow(sim):
    specs = [FlowSpec(NewReno(), rtt=0.02) for _ in range(2)]
    d = build_dumbbell(sim, specs, bottleneck_bw_bps=mbps(10), buffer_bytes=100_000)
    d.start_all()
    sim.run(until=1.0)
    for flow in d.flows:
        assert flow.receiver.received_packets > 0
        assert flow.sender.snd_una > 0


def test_custom_queue_is_used(sim):
    queue = REDQueue(100_000)
    d = build_dumbbell(
        sim,
        [FlowSpec(NewReno())],
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=100_000,
        queue=queue,
    )
    assert d.queue is queue


def test_staggered_starts(sim):
    specs = [
        FlowSpec(NewReno(), start_time=0.0),
        FlowSpec(NewReno(), start_time=0.3),
    ]
    d = build_dumbbell(sim, specs, bottleneck_bw_bps=mbps(10), buffer_bytes=100_000)
    d.start_all()
    sim.run(until=0.1)
    assert d.flows[0].sender.stats.packets_sent > 0
    assert d.flows[1].sender.stats.packets_sent == 0
    sim.run(until=0.6)
    assert d.flows[1].sender.stats.packets_sent > 0


def test_single_flow_saturates_link(sim):
    d = build_dumbbell(
        sim,
        [FlowSpec(NewReno(), rtt=0.02)],
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=50_000,
    )
    d.start_all()
    sim.run(until=5.0)
    goodput = d.flows[0].sender.snd_una * 1448 * 8 / 5.0
    assert goodput > mbps(8), f"goodput only {goodput / 1e6:.1f} Mbps"
