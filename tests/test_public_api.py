"""Sanity checks on the package's public API surface."""

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ names missing attribute {name}"


def test_version_is_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_quickstart_docstring_flow():
    """The module docstring's quickstart must actually work."""
    result = repro.run_experiment(
        repro.core_scale(flows=1000, cca="newreno", scale=500,
                         duration=3.0, warmup=1.0)
    )
    assert result.summary()
    assert 0 < result.jfi() <= 1.0


def test_model_functions_exported():
    assert repro.mathis_throughput(1448, 0.02, 0.01) > 0
    assert repro.padhye_throughput(1448, 0.02, 0.01) > 0
    assert repro.cubic_throughput(1448, 0.02, 0.01) > 0
    assert 0 <= repro.predict_bbr_share(1.0) <= 1


def test_make_cca_exported():
    assert repro.make_cca("cubic").name == "cubic"
