"""Tests for the Vegas CCA extension."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.topology import FlowSpec, build_dumbbell
from repro.tcp.cca.vegas import Vegas
from repro.tcp.rate_sample import RateSample
from repro.units import mbps


class FakeEstimator:
    delivered = 0


class FakeConn:
    def __init__(self):
        self.in_recovery = False
        self.in_flight = 10
        self.rate_estimator = FakeEstimator()


def ack(n=1, rtt=None):
    rs = RateSample()
    rs.newly_acked = n
    rs.rtt = rtt
    return rs


def feed_round(cca, conn, rtt):
    """Deliver one cwnd's worth of ACKs at the given RTT sample."""
    conn.rate_estimator.delivered += int(cca.cwnd) + 1
    cca.on_ack(ack(1, rtt=rtt), conn)


def test_validation():
    with pytest.raises(ValueError):
        Vegas(alpha=0, beta=4)
    with pytest.raises(ValueError):
        Vegas(alpha=5, beta=4)


def test_base_rtt_tracks_minimum():
    cca = Vegas()
    conn = FakeConn()
    cca.on_ack(ack(1, rtt=0.05), conn)
    cca.on_ack(ack(1, rtt=0.03), conn)
    cca.on_ack(ack(1, rtt=0.08), conn)
    assert cca.base_rtt == pytest.approx(0.03)


def test_steady_state_increases_when_queue_small():
    cca = Vegas()
    cca.ssthresh = 10.0
    cca.cwnd = 10.0
    conn = FakeConn()
    before = cca.cwnd
    cca.base_rtt = 0.05
    feed_round(cca, conn, rtt=0.0505)  # diff ~ 0.1 packets < alpha
    assert cca.cwnd == before + 1


def test_steady_state_decreases_when_queue_large():
    cca = Vegas()
    cca.ssthresh = 10.0
    cca.cwnd = 10.0
    conn = FakeConn()
    cca.base_rtt = 0.05
    feed_round(cca, conn, rtt=0.10)  # diff = 5 packets > beta
    assert cca.cwnd == 9.0


def test_steady_state_holds_between_thresholds():
    cca = Vegas(alpha=2, beta=4)
    cca.ssthresh = 10.0
    cca.cwnd = 10.0
    conn = FakeConn()
    cca.base_rtt = 0.05
    feed_round(cca, conn, rtt=0.0665)  # diff ~ 2.5 in (alpha, beta)
    assert cca.cwnd == 10.0


def test_loss_reduces_window():
    cca = Vegas()
    cca.cwnd = 20.0
    cca.on_loss_event(FakeConn())
    assert cca.cwnd == pytest.approx(15.0)


def test_rto_collapses():
    cca = Vegas()
    cca.cwnd = 20.0
    cca.on_rto(FakeConn())
    assert cca.cwnd == 1.0


def test_vegas_keeps_queue_nearly_empty_end_to_end():
    sim = Simulator()
    d = build_dumbbell(
        sim,
        [FlowSpec(Vegas(), rtt=0.02)],
        bottleneck_bw_bps=mbps(10),
        buffer_bytes=200_000,
    )
    d.start_all()
    sim.run(until=8.0)
    sender = d.flows[0].sender
    goodput = sender.snd_una * 1448 * 8 / 8.0
    assert goodput > mbps(7)
    assert d.queue.dropped_packets == 0
    # Delay-based: the standing queue stays small.
    assert d.queue.occupancy_bytes < 30_000
