"""Tests for the windowed max/min filters, including properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.cca.filters import WindowedFilter


def test_max_filter_tracks_maximum():
    f = WindowedFilter(10.0, mode="max")
    assert f.update(5.0, 0.0) == 5.0
    assert f.update(3.0, 1.0) == 5.0
    assert f.update(8.0, 2.0) == 8.0
    assert f.get() == 8.0


def test_max_filter_expires_old_samples():
    f = WindowedFilter(10.0, mode="max")
    f.update(100.0, 0.0)
    f.update(5.0, 1.0)
    assert f.update(6.0, 11.0) == 6.0  # the 100 aged out


def test_min_filter():
    f = WindowedFilter(10.0, mode="min")
    assert f.update(5.0, 0.0) == 5.0
    assert f.update(7.0, 1.0) == 5.0
    assert f.update(2.0, 2.0) == 2.0
    assert f.update(9.0, 13.0) == 9.0  # the 2 aged out


def test_empty_filter():
    f = WindowedFilter(1.0)
    assert f.get() is None
    assert f.oldest_time() is None


def test_reset():
    f = WindowedFilter(1.0)
    f.update(3.0, 0.0)
    f.reset()
    assert f.get() is None


def test_oldest_time_is_extremum_timestamp():
    f = WindowedFilter(10.0, mode="max")
    f.update(9.0, 1.0)
    f.update(5.0, 2.0)
    assert f.oldest_time() == 1.0


def test_invalid_configuration():
    with pytest.raises(ValueError):
        WindowedFilter(0.0)
    with pytest.raises(ValueError):
        WindowedFilter(1.0, mode="median")


samples = st.lists(
    st.tuples(st.floats(0, 1e6, allow_nan=False), st.integers(0, 100)),
    min_size=1,
    max_size=50,
)


@given(samples, st.floats(1, 50))
@settings(max_examples=200, deadline=None)
def test_max_matches_bruteforce(sample_list, window):
    f = WindowedFilter(window, mode="max")
    history = []
    for value, t_int in sorted(sample_list, key=lambda p: p[1]):
        t = float(t_int)
        got = f.update(value, t)
        history.append((t, value))
        expected = max(v for ht, v in history if ht >= t - window)
        assert got == expected


@given(samples, st.floats(1, 50))
@settings(max_examples=200, deadline=None)
def test_min_matches_bruteforce(sample_list, window):
    f = WindowedFilter(window, mode="min")
    history = []
    for value, t_int in sorted(sample_list, key=lambda p: p[1]):
        t = float(t_int)
        got = f.update(value, t)
        history.append((t, value))
        expected = min(v for ht, v in history if ht >= t - window)
        assert got == expected
