"""Tests for the NewReno CCA (direct unit tests plus pipe integration)."""

import pytest

from repro.tcp.cca.newreno import NewReno
from repro.tcp.rate_sample import RateSample
from tests.conftest import make_pipe


class FakeConn:
    def __init__(self, in_recovery=False, in_flight=10):
        self.in_recovery = in_recovery
        self.in_flight = in_flight


def ack(n=1):
    rs = RateSample()
    rs.newly_acked = n
    return rs


class TestUnit:
    def test_initial_window(self):
        cca = NewReno()
        assert cca.cwnd == 10.0
        assert cca.in_slow_start

    def test_slow_start_grows_per_acked_packet(self):
        cca = NewReno()
        cca.on_ack(ack(4), FakeConn())
        assert cca.cwnd == 14.0

    def test_congestion_avoidance_linear(self):
        cca = NewReno()
        cca.ssthresh = 10.0
        cca.cwnd = 10.0
        cca.on_ack(ack(1), FakeConn())
        assert cca.cwnd == pytest.approx(10.1)
        # One full window of ACKs ~ +1 MSS per RTT.
        for _ in range(9):
            cca.on_ack(ack(1), FakeConn())
        assert cca.cwnd == pytest.approx(11.0, rel=0.01)

    def test_slow_start_capped_at_ssthresh(self):
        cca = NewReno()
        cca.ssthresh = 12.0
        cca.on_ack(ack(8), FakeConn())
        assert cca.cwnd == 12.0

    def test_loss_event_halves(self):
        cca = NewReno()
        cca.cwnd = 40.0
        cca.on_loss_event(FakeConn())
        assert cca.cwnd == 20.0
        assert cca.ssthresh == 20.0
        assert not cca.in_slow_start

    def test_halving_floor(self):
        cca = NewReno()
        cca.cwnd = 2.0
        cca.on_loss_event(FakeConn())
        assert cca.cwnd == 2.0  # MIN_CWND floor

    def test_rto_collapses_to_one(self):
        cca = NewReno()
        cca.cwnd = 40.0
        cca.on_rto(FakeConn(in_flight=30))
        assert cca.cwnd == 1.0
        assert cca.ssthresh == 15.0

    def test_no_growth_during_recovery(self):
        cca = NewReno()
        before = cca.cwnd
        cca.on_ack(ack(5), FakeConn(in_recovery=True))
        assert cca.cwnd == before

    def test_custom_beta(self):
        cca = NewReno(beta=0.7)
        cca.cwnd = 10.0
        cca.on_loss_event(FakeConn())
        assert cca.cwnd == pytest.approx(7.0)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            NewReno(beta=0.0)
        with pytest.raises(ValueError):
            NewReno(beta=1.0)

    def test_no_pacing(self):
        assert NewReno().pacing_rate is None


class TestIntegration:
    def test_sawtooth_emerges_under_periodic_loss(self, sim):
        drops = set(range(100, 4000, 700))
        sender, _, _ = make_pipe(sim, NewReno(), total_packets=4000, drop_indices=drops)
        sender.start()
        sim.run(until=60.0)
        assert sender.completed
        assert sender.stats.loss_recovery_events >= 3
        # AIMD kept running: every loss event halved then regrew.
        assert sender.cca.cwnd > 2
