"""Tests for the BBRv1 state machine, plus pipe/dumbbell integration."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.topology import FlowSpec, build_dumbbell
from repro.tcp.cca.bbr import DRAIN, PROBE_BW, PROBE_RTT, STARTUP, Bbr
from repro.units import mbps
from tests.conftest import make_pipe


def make_bbr():
    return Bbr(rng=random.Random(1))


class TestDefaults:
    def test_initial_state(self):
        cca = make_bbr()
        assert cca.state == STARTUP
        assert cca.pacing_gain == pytest.approx(2.885)
        assert cca.cwnd_gain == pytest.approx(2.885)
        assert cca.btlbw is None
        assert cca.rtprop is None

    def test_bootstrap_pacing_rate_positive(self):
        assert make_bbr().pacing_rate > 0

    def test_gain_cycle_shape(self):
        assert Bbr.GAIN_CYCLE[0] == 1.25
        assert Bbr.GAIN_CYCLE[1] == 0.75
        assert len(Bbr.GAIN_CYCLE) == 8
        assert all(g == 1.0 for g in Bbr.GAIN_CYCLE[2:])

    def test_inflight_target_before_estimates(self):
        assert make_bbr().inflight_target(2.0) == Bbr.INITIAL_CWND


class TestSoloBehaviour:
    """A single BBR flow on a clean 20 Mbps bottleneck."""

    @pytest.fixture()
    def run(self):
        sim = Simulator()
        d = build_dumbbell(
            sim,
            [FlowSpec(make_bbr(), rtt=0.02)],
            bottleneck_bw_bps=mbps(20),
            buffer_bytes=100_000,
        )
        d.start_all()
        return sim, d.flows[0].sender

    def test_estimates_converge_to_truth(self, run):
        sim, sender = run
        sim.run(until=3.0)
        cca = sender.cca
        # 20 Mbps / 1500 B = ~1667 packets/s.
        assert cca.btlbw == pytest.approx(1667, rel=0.05)
        assert cca.rtprop == pytest.approx(0.02, rel=0.15)

    def test_reaches_probe_bw_quickly(self, run):
        sim, sender = run
        sim.run(until=1.0)
        assert sender.cca.state == PROBE_BW
        assert sender.cca.filled_pipe

    def test_high_utilization(self, run):
        sim, sender = run
        sim.run(until=6.0)
        goodput = sender.snd_una * 1448 * 8 / 6.0
        assert goodput > mbps(17)

    def test_probe_rtt_entered_after_10s(self, run):
        sim, sender = run
        states = set()

        def watch():
            states.add(sender.cca.state)
            sim.schedule(0.01, watch)

        sim.schedule(0.01, watch)
        sim.run(until=12.0)
        assert PROBE_RTT in states

    def test_queue_kept_short(self, run):
        """BBR's raison d'etre: near-capacity throughput without filling
        the buffer the way loss-based CCAs do."""
        sim, sender = run
        sim.run(until=5.0)
        assert sender.stats.rto_events == 0
        # Post-startup inflight ~= 2x BDP (+quantization), far below the
        # 66-packet buffer plus BDP.
        assert sender.in_flight < 45


class TestStateMachine:
    def test_full_pipe_detection_requires_plateau(self):
        cca = make_bbr()
        cca.btlbw = 100.0
        cca.full_bw = 100.0
        cca.round_start = True

        class RS:
            is_app_limited = False
            delivery_rate = None
            delivered = 1
            prior_delivered = 0

        # Three non-growing rounds flip filled_pipe.
        for _ in range(3):
            cca._check_full_pipe(RS())
        assert cca.filled_pipe

    def test_growth_resets_plateau_counter(self):
        cca = make_bbr()
        cca.btlbw = 100.0
        cca.full_bw = 50.0

        class RS:
            is_app_limited = False

        cca.round_start = True
        cca._check_full_pipe(RS())
        assert cca.full_bw == 100.0
        assert cca.full_bw_count == 0
        assert not cca.filled_pipe

    def test_drain_entered_after_full_pipe(self):
        cca = make_bbr()
        cca.filled_pipe = True

        class Conn:
            in_flight = 1000

        cca._check_drain(Conn(), now=1.0)
        assert cca.state == DRAIN
        assert cca.pacing_gain == pytest.approx(1 / 2.885)

    def test_drain_exits_to_probe_bw_when_inflight_low(self):
        cca = make_bbr()
        cca.filled_pipe = True
        cca.state = DRAIN
        cca.btlbw = 100.0
        cca.rtprop = 0.1

        class Conn:
            in_flight = 1  # below BDP

        cca._check_drain(Conn(), now=1.0)
        assert cca.state == PROBE_BW
        assert cca.cwnd_gain == 2.0
        assert cca.cycle_index != 0  # never starts at the 1.25 phase

    def test_probe_bw_cycle_advances(self):
        cca = make_bbr()
        cca.state = PROBE_BW
        cca.btlbw = 100.0
        cca.rtprop = 0.05
        cca.cycle_index = 2
        cca.pacing_gain = 1.0
        cca.cycle_stamp = 0.0

        class RS:
            newly_lost = 0
            prior_in_flight = 10

        cca._check_cycle_phase(RS(), now=0.06)  # > rtprop elapsed
        assert cca.cycle_index == 3

    def test_loss_modulation_subtracts_losses(self):
        from repro.tcp.rate_sample import RateSample

        cca = make_bbr()
        cca.cwnd = 50.0
        cca.filled_pipe = True
        cca.btlbw = 10_000.0
        cca.rtprop = 0.02

        class Conn:
            in_flight = 40
            sim = None

            class rate_estimator:
                delivered = 100

        rs = RateSample()
        rs.newly_lost = 10
        rs.newly_acked = 0
        cca._update_cwnd(rs, Conn())
        assert cca.cwnd == pytest.approx(40.0)

    def test_rto_sets_cwnd_to_one_then_floor(self):
        cca = make_bbr()

        class Conn:
            in_flight = 10

        cca.on_rto(Conn())
        assert cca.cwnd == 1.0

    def test_recovery_restores_prior_cwnd(self):
        cca = make_bbr()
        cca.cwnd = 80.0

        class Conn:
            in_flight = 70

            class rate_estimator:
                delivered = 1000

        cca.on_loss_event(Conn())
        assert cca.prior_cwnd == 80.0
        cca.cwnd = 30.0
        cca.on_recovery_exit(Conn())
        assert cca.cwnd == 80.0


class TestWithLoss:
    def test_transfer_completes_despite_loss(self, sim):
        sender, receiver, _ = make_pipe(
            sim, make_bbr(), total_packets=500, drop_indices={50, 51, 200}
        )
        sender.start()
        sim.run(until=30.0)
        assert sender.completed
        assert receiver.rcv_nxt == 500
