"""Tests for the CCA factory registry."""

import pytest

from repro.tcp.cca import CCA_REGISTRY, make_cca
from repro.tcp.cca.bbr import Bbr
from repro.tcp.cca.cubic import Cubic
from repro.tcp.cca.newreno import NewReno
from repro.tcp.cca.vegas import Vegas


@pytest.mark.parametrize(
    "name,cls",
    [
        ("newreno", NewReno),
        ("reno", NewReno),
        ("cubic", Cubic),
        ("bbr", Bbr),
        ("bbr1", Bbr),
        ("vegas", Vegas),
    ],
)
def test_make_cca_by_name(name, cls):
    assert isinstance(make_cca(name), cls)


def test_case_insensitive():
    assert isinstance(make_cca("BBR"), Bbr)


def test_unknown_name_lists_known():
    with pytest.raises(ValueError) as exc:
        make_cca("quic-magic")
    assert "cubic" in str(exc.value)


def test_instances_are_fresh():
    a, b = make_cca("cubic"), make_cca("cubic")
    assert a is not b


def test_registry_names_match_classes():
    for name in ("newreno", "cubic", "bbr", "vegas"):
        assert CCA_REGISTRY[name]().name == name
