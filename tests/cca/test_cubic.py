"""Tests for the CUBIC CCA."""

import pytest

from repro.tcp.cca.cubic import Cubic
from repro.tcp.rate_sample import RateSample
from repro.tcp.rtt import RttEstimator


class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakeConn:
    def __init__(self, rtt=0.05):
        self.sim = FakeSim()
        self.in_recovery = False
        self.in_flight = 10
        self.rtt = RttEstimator()
        self.rtt.on_measurement(rtt)


def ack(n=1):
    rs = RateSample()
    rs.newly_acked = n
    return rs


def test_constants_match_rfc8312():
    assert Cubic.C == 0.4
    assert Cubic.BETA == 0.7


def test_slow_start_initially():
    cca = Cubic()
    conn = FakeConn()
    cca.on_ack(ack(3), conn)
    assert cca.cwnd == 13.0


def test_loss_event_beta_decrease():
    cca = Cubic()
    conn = FakeConn()
    cca.cwnd = 100.0
    cca.ssthresh = 50.0
    cca.on_loss_event(conn)
    assert cca.cwnd == pytest.approx(70.0)
    assert cca.w_max == pytest.approx(100.0)


def test_fast_convergence_lowers_wmax():
    cca = Cubic()
    conn = FakeConn()
    cca.cwnd = 100.0
    cca.ssthresh = 50.0
    cca.on_loss_event(conn)          # w_max = 100, cwnd = 70
    cca.cwnd = 80.0                  # lost again before reaching w_max
    cca.on_loss_event(conn)
    assert cca.w_max == pytest.approx(80.0 * (2 - 0.7) / 2)


def test_fast_convergence_disabled():
    cca = Cubic(fast_convergence=False)
    conn = FakeConn()
    cca.cwnd = 100.0
    cca.ssthresh = 50.0
    cca.on_loss_event(conn)
    cca.cwnd = 80.0
    cca.on_loss_event(conn)
    assert cca.w_max == pytest.approx(80.0)


def test_k_computed_on_epoch_start():
    cca = Cubic()
    conn = FakeConn()
    cca.ssthresh = 30.0
    cca.cwnd = 35.0
    cca.w_max = 100.0
    cca.on_ack(ack(1), conn)
    # K = cbrt((w_max - cwnd)/C) = cbrt(65/0.4)
    assert cca.k == pytest.approx((65.0 / 0.4) ** (1 / 3), rel=1e-6)


def test_concave_growth_toward_wmax():
    cca = Cubic()
    conn = FakeConn(rtt=0.05)
    cca.ssthresh = 50.0
    cca.cwnd = 50.0
    cca.w_max = 100.0
    start = cca.cwnd
    for step in range(200):
        conn.sim.now = 0.05 * step
        cca.on_ack(ack(int(cca.cwnd)), conn)
    # After many RTTs the window should have grown well toward/past w_max.
    assert cca.cwnd > start + 20


def test_window_growth_is_rtt_insensitive_in_cubic_region():
    """CUBIC's real-time growth: two flows with 4x different RTTs reach a
    similar window after the same wall-clock time (unlike Reno)."""
    results = {}
    for rtt in (0.025, 0.1):
        cca = Cubic()
        conn = FakeConn(rtt=rtt)
        cca.ssthresh = 30.0
        cca.cwnd = 30.0
        cca.w_max = 30.0  # epoch starts at cwnd: pure convex growth
        steps = int(20.0 / rtt)
        for step in range(steps):
            conn.sim.now = rtt * step
            cca.on_ack(ack(int(cca.cwnd)), conn)
        results[rtt] = cca.cwnd
    ratio = results[0.025] / results[0.1]
    assert 0.5 < ratio < 2.0, f"cubic growth should be ~RTT-independent: {results}"


def test_no_growth_during_recovery():
    cca = Cubic()
    conn = FakeConn()
    conn.in_recovery = True
    before = cca.cwnd
    cca.on_ack(ack(5), conn)
    assert cca.cwnd == before


def test_rto_resets_to_one():
    cca = Cubic()
    conn = FakeConn()
    cca.cwnd = 50.0
    cca.on_rto(conn)
    assert cca.cwnd == 1.0
    assert cca.epoch_start is None


def test_tcp_friendly_region_tracks_reno():
    """At high loss the w_est (Reno-equivalent) floor governs."""
    cca = Cubic()
    conn = FakeConn(rtt=0.05)
    cca.ssthresh = 10.0
    cca.cwnd = 10.0
    cca.w_max = 10.5  # tiny cubic target
    for step in range(100):
        conn.sim.now = 0.05 * step
        cca.on_ack(ack(int(cca.cwnd)), conn)
    # w_est grows ~0.53 packets per RTT; after 100 RTTs the window must
    # have followed it well past the stale cubic plateau.
    assert cca.cwnd > 20
