"""Tests for the simplified BBRv2 implementation."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.topology import FlowSpec, build_dumbbell
from repro.tcp.cca.bbr2 import (
    PROBE_CRUISE,
    PROBE_DOWN,
    PROBE_REFILL,
    PROBE_UP,
    Bbr2,
)
from repro.tcp.rate_sample import RateSample
from repro.units import mbps
from tests.conftest import make_pipe


def make_bbr2():
    return Bbr2(rng=random.Random(3))


class FakeEstimator:
    delivered = 100


class FakeConn:
    in_flight = 20
    rate_estimator = FakeEstimator()

    class sim:
        now = 1.0


def test_initially_unbounded_inflight():
    assert make_bbr2().inflight_hi == float("inf")


def test_loss_event_learns_inflight_bound_and_cuts_cwnd():
    cca = make_bbr2()
    cca.cwnd = 40.0
    cca.on_loss_event(FakeConn())
    assert cca.inflight_hi == pytest.approx(20 * 0.7)
    assert cca.cwnd == pytest.approx(40 * 0.7)


def test_second_loss_tightens_bound():
    cca = make_bbr2()
    cca.on_loss_event(FakeConn())
    first = cca.inflight_hi
    cca.on_loss_event(FakeConn())
    assert cca.inflight_hi <= first


def test_cwnd_capped_by_inflight_hi():
    cca = make_bbr2()
    cca.filled_pipe = True
    cca.btlbw = 10_000.0
    cca.rtprop = 0.02
    cca.inflight_hi = 15.0
    rs = RateSample()
    rs.newly_acked = 5
    cca.cwnd = 14.0
    cca._update_cwnd(rs, FakeConn())
    assert cca.cwnd <= 15.0


def test_probe_bw_cycle_sequence():
    cca = make_bbr2()
    cca.btlbw = 1000.0
    cca.rtprop = 0.02
    cca._enter_probe_bw(now=0.0)
    assert cca.state == PROBE_DOWN
    rs = RateSample()
    rs.prior_in_flight = 0  # fully drained
    rs.newly_lost = 0
    cca._check_cycle_phase(rs, now=0.05)
    assert cca.state == PROBE_CRUISE
    cca._check_cycle_phase(rs, now=0.05 + cca._probe_wait + 0.01)
    assert cca.state == PROBE_REFILL
    now = 0.05 + cca._probe_wait + 0.01
    cca._check_cycle_phase(rs, now=now + 0.03)
    assert cca.state == PROBE_UP
    assert cca.pacing_gain == 1.25
    # A loss while probing up sends it back down.
    rs.newly_lost = 2
    cca._check_cycle_phase(rs, now=now + 0.1)
    assert cca.state == PROBE_DOWN


def test_probe_up_raises_ceiling_without_loss_boundedly():
    cca = make_bbr2()
    cca.btlbw = 1000.0
    cca.rtprop = 0.02
    cca.state = PROBE_UP
    cca.pacing_gain = 1.25
    cca.inflight_hi = 10.0
    cca._phase_stamp = 0.0
    rs = RateSample()
    rs.newly_lost = 0
    rs.prior_in_flight = 5
    for i in range(100):
        cca._check_cycle_phase(rs, now=0.05 * (i + 1))
    assert cca.inflight_hi <= cca.inflight_target(4.0) + 1e-9
    assert cca.inflight_hi > 10.0


def test_probe_rtt_holds_half_bdp_not_four():
    cca = make_bbr2()
    cca.btlbw = 2000.0
    cca.rtprop = 0.05  # BDP = 100 packets
    assert cca._probe_rtt_cwnd() == pytest.approx(50.0)


def test_solo_flow_utilises_link():
    sim = Simulator()
    d = build_dumbbell(
        sim,
        [FlowSpec(make_bbr2(), rtt=0.02)],
        bottleneck_bw_bps=mbps(20),
        buffer_bytes=100_000,
    )
    d.start_all()
    sim.run(until=8.0)
    sender = d.flows[0].sender
    goodput = sender.snd_una * 1448 * 8 / 8.0
    assert goodput > mbps(16)
    assert sender.cca.btlbw == pytest.approx(1667, rel=0.1)


def test_bbr2_less_aggressive_than_bbr1_under_loss(sim):
    """v2 backs off on loss where v1 ploughs on: after the same drop
    pattern, v2's cwnd is bounded by its learned inflight_hi."""
    drops = set(range(40, 400, 60))
    s2, _, _ = make_pipe(sim, make_bbr2(), total_packets=800, drop_indices=drops)
    s2.start()
    sim.run(until=40.0)
    assert s2.completed
    assert s2.cca.inflight_hi < float("inf")


def test_registry_name():
    assert make_bbr2().name == "bbr2"
