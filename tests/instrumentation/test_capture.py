"""Tests for the in-path packet capture."""

import pytest

from repro.instrumentation.capture import PacketCapture
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


class Collector:
    def __init__(self):
        self.packets = []

    def send(self, packet):
        self.packets.append(packet)


def test_records_and_forwards():
    sim = Simulator()
    sink = Collector()
    cap = PacketCapture(sim, sink=sink)
    cap.send(Packet.data(1, 5))
    cap.send(Packet.ack(1, 6))
    assert len(sink.packets) == 2
    assert cap.forwarded == 2
    assert cap.records[0].kind == "data" and cap.records[0].seq == 5
    assert cap.records[1].kind == "ack" and cap.records[1].seq == 6


def test_flow_filter():
    sim = Simulator()
    cap = PacketCapture(sim, sink=Collector(), flow_filter=2)
    cap.send(Packet.data(1, 0))
    cap.send(Packet.data(2, 0))
    assert len(cap.records) == 1
    assert cap.records[0].flow_id == 2
    assert cap.forwarded == 2  # still forwards everything


def test_max_records_truncation():
    sim = Simulator()
    cap = PacketCapture(sim, sink=Collector(), max_records=2)
    for seq in range(5):
        cap.send(Packet.data(0, seq))
    assert len(cap.records) == 2
    assert cap.truncated
    assert cap.forwarded == 5


def test_requires_sink():
    cap = PacketCapture(Simulator())
    with pytest.raises(RuntimeError):
        cap.send(Packet.data(0, 0))


def test_splice_into_live_connection(sim):
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=50)
    cap = PacketCapture(sim)
    cap.splice_before(sender)  # records everything the sender emits
    sender.start()
    sim.run(until=5.0)
    assert sender.completed
    assert len(cap.data_records()) == 50
    seqs = [r.seq for r in cap.data_records()]
    assert sorted(set(seqs)) == list(range(50))
    assert cap.for_flow(0) == cap.records
