"""Tests for the bottleneck queue monitor."""

import pytest

from repro.instrumentation.queuemon import OccupancySampler, QueueMonitor
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queue import DropTailQueue


def fill(queue, when, flow, n):
    for _ in range(n):
        queue.offer(when, Packet.data(flow, 0))


def test_counts_and_attribution():
    q = DropTailQueue(3000)  # 2 packets
    mon = QueueMonitor(q)
    fill(q, 1.0, flow=1, n=2)
    fill(q, 1.0, flow=2, n=2)  # both dropped
    assert mon.arrivals_total == 2
    assert mon.drops_total == 2
    assert mon.arrivals_by_flow[1] == 2
    assert mon.drops_by_flow[2] == 2


def test_loss_rates():
    q = DropTailQueue(3000)
    mon = QueueMonitor(q)
    fill(q, 1.0, flow=1, n=2)
    fill(q, 1.0, flow=2, n=2)
    assert mon.loss_rate() == pytest.approx(0.5)
    assert mon.flow_loss_rate(1) == 0.0
    assert mon.flow_loss_rate(2) == 1.0
    assert mon.flow_loss_rate(99) == 0.0


def test_drop_times_recorded():
    q = DropTailQueue(1500)
    mon = QueueMonitor(q)
    q.offer(1.0, Packet.data(0, 0))
    q.offer(2.5, Packet.data(0, 1))
    q.offer(3.5, Packet.data(0, 2))
    assert mon.drop_times == [2.5, 3.5]


def test_drop_times_disabled():
    q = DropTailQueue(1500)
    mon = QueueMonitor(q, record_drop_times=False)
    q.offer(1.0, Packet.data(0, 0))
    q.offer(2.0, Packet.data(0, 1))
    assert mon.drop_times == []
    assert mon.drops_total == 1


def test_warmup_cut():
    q = DropTailQueue(1500)
    mon = QueueMonitor(q, start_time=5.0)
    q.offer(1.0, Packet.data(0, 0))   # before cut: ignored
    q.offer(2.0, Packet.data(0, 1))   # drop before cut: ignored
    q.poll()
    q.offer(6.0, Packet.data(0, 2))   # after cut
    assert mon.arrivals_total == 1
    assert mon.drops_total == 0


def test_empty_loss_rate_zero():
    q = DropTailQueue(1500)
    mon = QueueMonitor(q)
    assert mon.loss_rate() == 0.0


def test_reset():
    q = DropTailQueue(1500)
    mon = QueueMonitor(q)
    q.offer(1.0, Packet.data(0, 0))
    mon.reset(at=10.0)
    assert mon.arrivals_total == 0
    assert mon.start_time == 10.0


def test_occupancy_sampler():
    sim = Simulator()
    q = DropTailQueue(10_000)
    sampler = OccupancySampler(sim, q, interval=0.1)
    q.offer(0.0, Packet.data(0, 0))
    sim.run(until=0.35)
    assert sampler.samples == [1500, 1500, 1500]
    assert sampler.mean_occupancy() == pytest.approx(1500)
    sampler.stop()
    sim.run(until=1.0)
    assert len(sampler.samples) == 3


def test_occupancy_sampler_validation():
    with pytest.raises(ValueError):
        OccupancySampler(Simulator(), DropTailQueue(1500), interval=0.0)


def test_two_monitors_coexist_on_one_queue():
    # Chained listeners: the second monitor must not displace the first.
    q = DropTailQueue(3000)
    a = QueueMonitor(q)
    b = QueueMonitor(q)
    fill(q, 1.0, flow=1, n=3)
    assert a.arrivals_total == b.arrivals_total == 2
    assert a.drops_total == b.drops_total == 1


def test_bus_mode_matches_direct_mode():
    from repro.obs import EventBus

    direct_q = DropTailQueue(3000)
    direct = QueueMonitor(direct_q)
    fill(direct_q, 1.0, flow=1, n=4)

    bus_q = DropTailQueue(3000)
    bus = EventBus()
    bus.bind_queue(bus_q)
    via_bus = QueueMonitor(bus_q, bus=bus)
    fill(bus_q, 1.0, flow=1, n=4)

    assert via_bus.arrivals_total == direct.arrivals_total
    assert via_bus.drops_total == direct.drops_total
    assert via_bus.drop_times == direct.drop_times
    assert dict(via_bus.drops_by_flow) == dict(direct.drops_by_flow)
