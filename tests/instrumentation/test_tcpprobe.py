"""Tests for the tcpprobe-equivalent cwnd probe."""

import pytest

from repro.instrumentation.flowmon import FlowMonitor
from repro.instrumentation.tcpprobe import CwndProbe
from repro.faults.watchdog import SimWatchdog, WatchdogConfig
from repro.obs import EventBus, MetricsRegistry
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


def test_counts_halvings_and_rtos_separately():
    probe = CwndProbe()
    probe.on_event(1.0, "loss_event", 10.0)
    probe.on_event(2.0, "rto", 1.0)
    probe.on_event(3.0, "recovery_exit", 5.0)
    assert probe.halvings == 1
    assert probe.rtos == 1
    assert probe.recovery_exits == 1
    assert probe.congestion_events == 2


def test_warmup_cut_excludes_early_events():
    probe = CwndProbe(start_time=5.0)
    probe.on_event(1.0, "loss_event", 10.0)
    probe.on_event(6.0, "loss_event", 5.0)
    assert probe.halvings == 1


def test_samples_recorded_only_when_enabled():
    lean = CwndProbe()
    lean.on_event(1.0, "ack", 10.0)
    assert lean.samples == []
    fat = CwndProbe(record_samples=True)
    fat.on_event(1.0, "ack", 10.0)
    assert fat.samples == [(1.0, "ack", 10.0)]


def test_last_cwnd_tracks_even_during_warmup():
    probe = CwndProbe(start_time=5.0)
    probe.on_event(1.0, "ack", 12.5)
    assert probe.last_cwnd == 12.5


def test_reset():
    probe = CwndProbe(record_samples=True)
    probe.on_event(1.0, "loss_event", 10.0)
    probe.reset()
    assert probe.halvings == 0
    assert probe.samples == []


def test_attach_to_live_sender(sim):
    sender, _, _ = make_pipe(
        sim, NewReno(), total_packets=300, drop_indices={40}
    )
    probe = CwndProbe(sender)
    sender.start()
    sim.run(until=20.0)
    assert sender.completed
    assert probe.halvings == 1
    assert probe.congestion_events == sender.stats.congestion_events


def test_attach_never_clobbers(sim):
    sender, _, _ = make_pipe(sim, NewReno())
    first = CwndProbe(sender)
    second = CwndProbe()
    second.attach(sender)  # coexists instead of displacing `first`
    with pytest.raises(RuntimeError):
        sender.cwnd_listener  # legacy single-slot view is now ambiguous
    with pytest.raises(RuntimeError):
        first.attach(sender)  # a probe attaches at most once
    first.detach()
    with pytest.raises(RuntimeError):
        first.detach()


def test_single_slot_assignment_raises_instead_of_clobbering(sim):
    sender, _, _ = make_pipe(sim, NewReno())
    probe = CwndProbe(sender)
    with pytest.raises(RuntimeError):
        # The legacy single-slot property refuses to silently displace
        # the attached probe (the old behavior lost the first observer).
        sender.cwnd_listener = lambda now, kind, cwnd: None
    # Clearing and reassigning on a free slot still works.
    probe.detach()
    sender.cwnd_listener = probe.on_event
    assert sender.cwnd_listener == probe.on_event


def test_subscribe_is_single_use(sim):
    bus = EventBus()
    probe = CwndProbe()
    probe.subscribe(bus, 0)
    with pytest.raises(RuntimeError):
        probe.subscribe(bus, 0)


def _run_with_drops(sim, observers):
    """One deterministic lossy flow; `observers(sender, bus)` wires
    instrumentation before the run starts."""
    sender, _, _ = make_pipe(
        sim, NewReno(), total_packets=400, drop_indices={40, 120, 250}
    )
    bus = EventBus()
    bus.bind_sender(sender)
    extras = observers(sender, bus)
    sender.start()
    sim.run(until=30.0)
    assert sender.completed
    return sender, extras


def test_three_subscribers_coexist_with_identical_counts():
    # The acceptance bar for the bus migration: a cwnd probe, the stall
    # watchdog and a metrics sampler all watch ONE sender, and the
    # probe's halving counts match the pre-bus single-probe baseline.
    from repro.sim.engine import Simulator

    baseline_sim = Simulator()
    baseline_sender, _, _ = make_pipe(
        baseline_sim, NewReno(), total_packets=400,
        drop_indices={40, 120, 250},
    )
    baseline = CwndProbe()
    baseline.attach(baseline_sender)  # the old direct, single-probe path
    baseline_sender.start()
    baseline_sim.run(until=30.0)
    assert baseline_sender.completed
    assert baseline.congestion_events > 0

    sim = Simulator()
    registry = MetricsRegistry()

    def wire(sender, bus):
        probe = CwndProbe()
        probe.subscribe(bus, sender.flow_id)
        monitor = FlowMonitor(sim, [sender])
        dog = SimWatchdog(
            sim, monitor, [0.0],
            config=WatchdogConfig(stall_budget=5.0), bus=bus,
        )
        dog.arm()

        acks = registry.counter("acks")
        series = registry.timeseries("cwnd", capacity=64)

        def sample(now, fid, kind, cwnd):
            if kind == "ack":
                acks.inc()
            series.append(now, cwnd)

        bus.subscribe("cwnd", sample)
        return probe, dog

    sender, (probe, dog) = _run_with_drops(sim, wire)

    # All three observers saw the run...
    assert registry.counter("acks").value > 0
    assert len(registry.timeseries("cwnd")) > 0
    assert dog.checks > 0 and not dog.aborted
    # ...and the probe's counts are byte-for-byte the baseline's.
    assert probe.halvings == baseline.halvings
    assert probe.rtos == baseline.rtos
    assert probe.congestion_events == sender.stats.congestion_events
    # The simulation itself was untouched by observation.
    assert sender.snd_una == baseline_sender.snd_una
    assert sender.stats.congestion_events == baseline_sender.stats.congestion_events
