"""Tests for the tcpprobe-equivalent cwnd probe."""

from repro.instrumentation.tcpprobe import CwndProbe
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


def test_counts_halvings_and_rtos_separately():
    probe = CwndProbe()
    probe.on_event(1.0, "loss_event", 10.0)
    probe.on_event(2.0, "rto", 1.0)
    probe.on_event(3.0, "recovery_exit", 5.0)
    assert probe.halvings == 1
    assert probe.rtos == 1
    assert probe.recovery_exits == 1
    assert probe.congestion_events == 2


def test_warmup_cut_excludes_early_events():
    probe = CwndProbe(start_time=5.0)
    probe.on_event(1.0, "loss_event", 10.0)
    probe.on_event(6.0, "loss_event", 5.0)
    assert probe.halvings == 1


def test_samples_recorded_only_when_enabled():
    lean = CwndProbe()
    lean.on_event(1.0, "ack", 10.0)
    assert lean.samples == []
    fat = CwndProbe(record_samples=True)
    fat.on_event(1.0, "ack", 10.0)
    assert fat.samples == [(1.0, "ack", 10.0)]


def test_last_cwnd_tracks_even_during_warmup():
    probe = CwndProbe(start_time=5.0)
    probe.on_event(1.0, "ack", 12.5)
    assert probe.last_cwnd == 12.5


def test_reset():
    probe = CwndProbe(record_samples=True)
    probe.on_event(1.0, "loss_event", 10.0)
    probe.reset()
    assert probe.halvings == 0
    assert probe.samples == []


def test_attach_to_live_sender(sim):
    sender, _, _ = make_pipe(
        sim, NewReno(), total_packets=300, drop_indices={40}
    )
    probe = CwndProbe(sender)
    sender.start()
    sim.run(until=20.0)
    assert sender.completed
    assert probe.halvings == 1
    assert probe.congestion_events == sender.stats.congestion_events
