"""Tests for per-flow goodput accounting."""

import pytest

from repro.instrumentation.flowmon import FlowMonitor
from repro.tcp.cca.newreno import NewReno
from tests.conftest import make_pipe


def test_goodput_over_window(sim):
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=100)
    mon = FlowMonitor(sim, [sender])
    sender.start()
    sim.run(until=0.5)
    mon.open_window()
    start_una = sender.snd_una
    sim.run(until=2.5)
    mon.close_window()
    delivered = sender.snd_una - start_una
    assert mon.delivered_packets(0) == delivered
    assert mon.goodput_bps(0) == pytest.approx(delivered * 1448 * 8 / 2.0)


def test_window_required(sim):
    sender, _, _ = make_pipe(sim, NewReno())
    mon = FlowMonitor(sim, [sender])
    with pytest.raises(RuntimeError):
        mon.goodput_bps(0)
    mon.open_window()
    with pytest.raises(RuntimeError):
        mon.goodput_bps(0)


def test_zero_duration_window_rejected(sim):
    sender, _, _ = make_pipe(sim, NewReno())
    mon = FlowMonitor(sim, [sender])
    mon.open_window()
    mon.close_window()
    with pytest.raises(RuntimeError):
        mon.goodput_bps(0)


def test_aggregate_and_per_flow(sim):
    s1, _, _ = make_pipe(sim, NewReno(), total_packets=50)
    s2, _, _ = make_pipe(sim, NewReno(), total_packets=50)
    s2.flow_id = 1
    mon = FlowMonitor(sim, [s1, s2])
    mon.open_window()
    s1.start()
    s2.start()
    sim.run(until=5.0)
    mon.close_window()
    gp = mon.goodputs()
    assert set(gp) == {0, 1}
    assert mon.aggregate_goodput_bps() == pytest.approx(sum(gp.values()))


def _endless_pipe(sim):
    """An unbounded flow with slow start capped, so it keeps the sampler
    alive for a whole run without the no-loss pipe exploding cwnd."""
    cca = NewReno()
    cca.ssthresh = 8.0
    return make_pipe(sim, cca, total_packets=None)


def test_sampling_series(sim):
    # An unbounded flow keeps the sampler live for the whole run window.
    sender, _, _ = _endless_pipe(sim)
    mon = FlowMonitor(sim, [sender], sample_interval=0.05)
    sender.start()
    sim.run(until=0.5)
    assert len(mon.sample_times) == 10
    series = [row[0] for row in mon.samples]
    assert series == sorted(series)  # cumulative, non-decreasing


def test_sampling_validation(sim):
    sender, _, _ = make_pipe(sim, NewReno())
    with pytest.raises(ValueError):
        FlowMonitor(sim, [sender], sample_interval=0.0)
    with pytest.raises(ValueError):
        FlowMonitor(sim, [sender], sample_interval=0.05, max_samples=1)


def test_sampling_stops_when_all_flows_complete(sim):
    # A 100-packet flow finishes in ~0.1s; the sampler must not keep
    # ticking (and growing its series) for the remaining ~10 simulated
    # seconds of run time.
    sender, _, _ = make_pipe(sim, NewReno(), total_packets=100)
    mon = FlowMonitor(sim, [sender], sample_interval=0.05)
    sender.start()
    sim.run(until=10.0)
    assert sender.completed
    assert len(mon.sample_times) < 10  # nowhere near 200 ticks
    assert mon.sample_times[-1] < 1.0


def test_sampling_stops_when_window_closes(sim):
    sender, _, _ = _endless_pipe(sim)
    mon = FlowMonitor(sim, [sender], sample_interval=0.05)
    sender.start()
    mon.open_window()
    sim.run(until=0.5)
    mon.close_window()
    count_at_close = len(mon.sample_times)
    sim.run(until=2.0)
    assert len(mon.sample_times) == count_at_close


def test_sampling_decimates_at_max_samples(sim):
    sender, _, _ = _endless_pipe(sim)
    mon = FlowMonitor(sim, [sender], sample_interval=0.01, max_samples=8)
    sender.start()
    sim.run(until=1.0)
    # ~100 raw ticks were offered; retention stays bounded while the
    # series still spans the whole run.
    assert len(mon.sample_times) <= 8
    assert mon.sample_times == sorted(mon.sample_times)
    assert mon.sample_times[0] < 0.1
    assert mon.sample_times[-1] > 0.5


def test_stop_sampling_is_immediate(sim):
    sender, _, _ = _endless_pipe(sim)
    mon = FlowMonitor(sim, [sender], sample_interval=0.05)
    sender.start()
    sim.run(until=0.2)
    mon.stop_sampling()
    count = len(mon.sample_times)
    sim.run(until=1.0)
    assert len(mon.sample_times) == count
