"""Unit tests for fault events, schedules, the spec grammar and presets."""

import pickle

import pytest

from repro.core.scenarios import edge_scale
from repro.faults.schedule import (
    DEFAULT_GE_TRANSITIONS,
    FAULT_KINDS,
    PRESETS,
    FaultEvent,
    FaultSchedule,
)
from repro.runstore.keys import job_key, scenario_to_canonical


class TestFaultEvent:
    def test_valid_kinds(self):
        for kind in ("bandwidth", "rtt", "burst_loss", "buffer"):
            assert FaultEvent(kind, time=1.0, value=0.5).kind in FAULT_KINDS
        assert FaultEvent("link_down", time=1.0).kind == "link_down"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("asteroid", time=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("link_down", time=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("link_down", time=1.0, duration=0.0)

    def test_valued_kinds_need_positive_value(self):
        with pytest.raises(ValueError):
            FaultEvent("bandwidth", time=1.0)
        with pytest.raises(ValueError):
            FaultEvent("rtt", time=1.0, value=-2.0)

    def test_burst_loss_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultEvent("burst_loss", time=1.0, value=1.0)
        with pytest.raises(ValueError):
            FaultEvent("burst_loss", time=1.0, value=0.3, params=(0.0, 0.5))
        with pytest.raises(ValueError):
            FaultEvent("burst_loss", time=1.0, value=0.3, params=(0.1,))

    def test_end_time(self):
        assert FaultEvent("link_down", time=2.0).end_time is None
        assert FaultEvent("link_down", time=2.0, duration=3.0).end_time == 5.0

    def test_describe(self):
        assert FaultEvent("link_down", time=8.0, duration=2.0).describe() == "link_down@8+2"
        assert FaultEvent("bandwidth", time=10.0, value=0.25).describe() == "bandwidth@10=0.25"

    def test_picklable(self):
        event = FaultEvent("burst_loss", time=1.0, value=0.3, params=(0.1, 0.5))
        assert pickle.loads(pickle.dumps(event)) == event


class TestFaultSchedule:
    def test_sorted_by_time(self):
        schedule = FaultSchedule([
            FaultEvent("link_down", time=9.0, duration=1.0),
            FaultEvent("bandwidth", time=3.0, duration=1.0, value=0.5),
        ])
        assert [e.time for e in schedule.events] == [3.0, 9.0]
        assert len(schedule) == 2 and bool(schedule)
        assert not FaultSchedule([])

    def test_from_spec_raw_tokens(self):
        schedule = FaultSchedule.from_spec("down@8+2,bw@10+5=0.25,rtt@12+1=4", 30.0)
        kinds = [e.kind for e in schedule.events]
        assert kinds == ["link_down", "bandwidth", "rtt"]
        assert schedule.events[0].end_time == 10.0
        assert schedule.events[1].value == 0.25

    def test_from_spec_gilbert_and_buffer(self):
        schedule = FaultSchedule.from_spec("gilbert@5+10=0.3,buffer@6+3=0.1", 30.0)
        assert [e.kind for e in schedule.events] == ["burst_loss", "buffer"]
        assert schedule.events[0].params in ((), DEFAULT_GE_TRANSITIONS)

    def test_from_spec_permanent_fault(self):
        (event,) = FaultSchedule.from_spec("down@8", 30.0).events
        assert event.duration is None and event.end_time is None

    def test_from_spec_presets_scale_to_duration(self):
        for name in PRESETS:
            schedule = FaultSchedule.from_spec(name, 10.0)
            assert schedule.events
            assert all(e.time < 10.0 for e in schedule.events)
            ended = [e.end_time for e in schedule.events if e.end_time is not None]
            assert all(end <= 10.0 for end in ended)

    def test_from_spec_mixes_presets_and_tokens(self):
        schedule = FaultSchedule.from_spec("blackout,rtt@20+1=4", 30.0)
        assert {e.kind for e in schedule.events} == {"link_down", "rtt"}

    def test_from_spec_errors(self):
        with pytest.raises(ValueError, match="bad fault token"):
            FaultSchedule.from_spec("asteroid@5", 30.0)
        with pytest.raises(ValueError, match="non-numeric"):
            FaultSchedule.from_spec("down@soon", 30.0)
        with pytest.raises(ValueError, match="needs =value"):
            FaultSchedule.from_spec("bw@5+1", 30.0)
        with pytest.raises(ValueError, match="no events"):
            FaultSchedule.from_spec(" , ", 30.0)


class TestScenarioIntegration:
    def test_faults_field_defaults_empty(self):
        assert edge_scale(flows=2).faults == ()

    def test_fault_beyond_duration_rejected(self):
        with pytest.raises(ValueError, match="beyond"):
            edge_scale(flows=2, duration=10.0).with_overrides(
                faults=(FaultEvent("link_down", time=12.0),)
            )

    def test_non_event_fault_rejected(self):
        with pytest.raises(TypeError):
            edge_scale(flows=2).with_overrides(faults=("down@8",))

    def test_empty_faults_preserve_legacy_cache_key(self):
        """The canonical form omits an empty schedule so every key minted
        before the faults field existed still resolves."""
        scenario = edge_scale(flows=2, seed=3)
        assert "faults" not in scenario_to_canonical(scenario)
        assert job_key(scenario) == job_key(scenario.with_overrides(faults=()))

    def test_faulted_scenario_changes_cache_key(self):
        scenario = edge_scale(flows=2, seed=3, duration=30.0)
        faulted = scenario.with_overrides(
            faults=(FaultEvent("link_down", time=8.0, duration=2.0),)
        )
        assert "faults" in scenario_to_canonical(faulted)
        assert job_key(faulted) != job_key(scenario)

    def test_different_fault_values_change_cache_key(self):
        base = edge_scale(flows=2, duration=30.0)
        one = base.with_overrides(faults=(FaultEvent("bandwidth", time=5.0, value=0.5),))
        two = base.with_overrides(faults=(FaultEvent("bandwidth", time=5.0, value=0.25),))
        assert job_key(one) != job_key(two)


class TestPresets:
    def test_registry_names(self):
        assert set(PRESETS) == {"blackout", "flap", "rtt-spike", "burst-loss"}

    def test_describe_mentions_every_event(self):
        for preset in PRESETS.values():
            description = preset.describe(30.0)
            assert description
            assert len(description.split(", ")) == len(preset.build(30.0))
