"""Watchdog and event-budget tests: dead runs must degrade, not hang."""

import pickle

import pytest

from repro.core.experiment import default_event_budget, run_experiment
from repro.core.scenarios import edge_scale
from repro.faults import FaultEvent, SimWatchdog, WatchdogConfig
from repro.instrumentation.flowmon import FlowMonitor
from repro.runstore import Job, RunOptions, RunStore, run_jobs
from repro.sim.engine import SimulationError, Simulator
from repro.sim.topology import FlowSpec, build_dumbbell
from repro.tcp.cca.newreno import NewReno


def deadlock_scenario(duration=120.0, flows=3, blackout_at=3.0):
    """A blackout that never lifts: every flow ends up retransmitting
    into a dead link until the RTO backoff ceiling, forever."""
    return edge_scale(flows=flows, duration=duration, warmup=1.0, seed=7).with_overrides(
        faults=(FaultEvent("link_down", time=blackout_at),)
    )


class TestWatchdogConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(stall_budget=0.0)
        with pytest.raises(ValueError):
            WatchdogConfig(stall_budget=5.0, check_interval=-1.0)

    def test_interval_defaults_to_quarter_budget(self):
        assert WatchdogConfig(stall_budget=8.0).interval == 2.0
        assert WatchdogConfig(stall_budget=8.0, check_interval=0.5).interval == 0.5


class TestStallDetection:
    def test_permanent_blackout_returns_partial_result(self):
        result = run_experiment(
            deadlock_scenario(), watchdog=WatchdogConfig(stall_budget=8.0)
        )
        health = result.health
        assert health is not None and not health.ok
        assert health.reason == "stall"
        assert health.truncated_at is not None
        assert health.truncated_at < 120.0
        assert health.stalled_flows == [0, 1, 2]
        assert result.measured_duration < 119.0
        assert result.measured_duration == pytest.approx(health.truncated_at - 1.0)
        # whatever was delivered before the blackout is still reported
        assert any(f.delivered_packets > 0 for f in result.flows)

    def test_partial_results_are_deterministic(self):
        config = WatchdogConfig(stall_budget=8.0)
        first = run_experiment(deadlock_scenario(), watchdog=config)
        second = run_experiment(deadlock_scenario(), watchdog=config)
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_abort_during_warmup_reports_zero_goodput(self):
        scenario = edge_scale(flows=2, duration=200.0, warmup=100.0, seed=7).with_overrides(
            faults=(FaultEvent("link_down", time=2.0),)
        )
        result = run_experiment(scenario, watchdog=WatchdogConfig(stall_budget=8.0))
        assert not result.health.ok
        assert result.measured_duration == 0.0
        assert all(f.goodput_bps == 0.0 for f in result.flows)
        assert result.jfi() == 1.0  # all-zero allocations, defined as fair

    def test_record_only_mode_does_not_abort(self):
        scenario = deadlock_scenario(duration=40.0)
        result = run_experiment(
            scenario,
            watchdog=WatchdogConfig(stall_budget=8.0, abort_when_all_stalled=False),
        )
        assert result.health.ok  # ran to the configured duration
        assert result.health.stalled_flows == [0, 1, 2]  # ...but stalls recorded
        assert result.measured_duration == pytest.approx(39.0)

    def test_healthy_run_reports_no_stalls(self):
        scenario = edge_scale(flows=2, duration=6.0, warmup=1.0, seed=7)
        result = run_experiment(scenario, watchdog=WatchdogConfig(stall_budget=3.0))
        assert result.health is not None and result.health.ok
        assert result.health.stalled_flows == []
        assert result.health.truncated_at is None

    def test_completed_flows_do_not_count_as_stalled(self):
        sim = Simulator()
        dumbbell = build_dumbbell(
            sim,
            [FlowSpec(cca=NewReno(), rtt=0.02, total_packets=10)],
            bottleneck_bw_bps=1e7,
            buffer_bytes=30_000,
        )
        monitor = FlowMonitor(sim, [f.sender for f in dumbbell.flows])
        dog = SimWatchdog(sim, monitor, [0.0], WatchdogConfig(stall_budget=1.0))
        dog.arm()
        dumbbell.start_all()
        sim.run(until=30.0)
        assert not dog.aborted  # flow finished; a finished flow never stalls
        assert dog.checks > 5

    def test_watchdog_validation(self):
        sim = Simulator()
        dumbbell = build_dumbbell(
            sim,
            [FlowSpec(cca=NewReno(), rtt=0.02)],
            bottleneck_bw_bps=1e7,
            buffer_bytes=30_000,
        )
        monitor = FlowMonitor(sim, [f.sender for f in dumbbell.flows])
        with pytest.raises(ValueError):
            SimWatchdog(sim, monitor, [0.0, 1.0])  # start-time count mismatch
        dog = SimWatchdog(sim, monitor, [0.0])
        dog.arm()
        with pytest.raises(RuntimeError):
            dog.arm()


class TestEventBudget:
    def test_default_budget_scales_with_scenario(self):
        small = edge_scale(flows=2, duration=5.0, warmup=1.0)
        large = edge_scale(flows=50, duration=60.0, warmup=1.0)
        assert default_event_budget(large) > default_event_budget(small)

    def test_generous_for_real_runs(self):
        scenario = edge_scale(flows=3, duration=6.0, warmup=1.0, seed=7)
        result = run_experiment(scenario)
        assert result.events_processed < 0.1 * default_event_budget(scenario)

    def test_exhaustion_without_watchdog_raises_with_escape_hatches(self):
        scenario = edge_scale(flows=2, duration=6.0, warmup=1.0, seed=7)
        with pytest.raises(SimulationError) as excinfo:
            run_experiment(scenario, max_events=2_000)
        message = str(excinfo.value)
        assert "max_events" in message and "watchdog" in message

    def test_exhaustion_with_watchdog_degrades(self):
        scenario = edge_scale(flows=2, duration=6.0, warmup=1.0, seed=7)
        result = run_experiment(
            scenario, watchdog=WatchdogConfig(stall_budget=3.0), max_events=50_000
        )
        assert not result.health.ok
        assert result.health.reason == "event_budget"
        assert result.events_processed >= 50_000

    def test_invalid_budget_rejected(self):
        scenario = edge_scale(flows=2, duration=6.0, warmup=1.0, seed=7)
        with pytest.raises(ValueError):
            run_experiment(scenario, max_events=0)


class TestSchedulerIntegration:
    def test_degraded_run_persists_and_warm_run_hits(self, tmp_path):
        job = Job(
            deadlock_scenario(duration=60.0, flows=2),
            RunOptions(watchdog=WatchdogConfig(stall_budget=6.0)),
        )
        store = RunStore(str(tmp_path / "store"))
        cold = run_jobs([job], store=store, workers=1)
        assert cold.stats.misses == 1 and cold.stats.degraded == 1
        assert not cold.results[0].health.ok
        warm = run_jobs([job], store=store, workers=1)
        assert warm.stats.hits == 1 and warm.stats.misses == 0
        assert pickle.dumps(warm.results[0]) == pickle.dumps(cold.results[0])

    def test_degraded_event_emitted_with_reason(self, tmp_path):
        events = []
        job = Job(
            deadlock_scenario(duration=60.0, flows=2),
            RunOptions(watchdog=WatchdogConfig(stall_budget=6.0)),
        )
        run_jobs([job], store=RunStore(str(tmp_path / "store")), workers=1,
                 progress=events.append)
        kinds = [e.kind for e in events]
        assert kinds == ["start", "degraded"]
        assert events[-1].error == "stall"
        assert events[-1].payload.health.stalled_flows

    def test_watchdog_options_change_cache_key(self):
        scenario = deadlock_scenario(duration=60.0, flows=2)
        plain = Job(scenario, RunOptions())
        guarded = Job(scenario, RunOptions(watchdog=WatchdogConfig(stall_budget=6.0)))
        budgeted = Job(scenario, RunOptions(max_events=10_000))
        assert plain.key() != guarded.key()
        assert plain.key() != budgeted.key()

    def test_default_options_preserve_legacy_key(self):
        """RunOptions() with the new fields unset must hash exactly as the
        two-field original did."""
        assert RunOptions().to_canonical() == {
            "record_drop_times": True,
            "convergence_check": False,
        }
