"""Integration tests: fault schedules applied to real experiment runs."""

import pickle
import random

import pytest

from repro.core.experiment import run_experiment
from repro.core.scenarios import edge_scale
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    GilbertElliott,
    WatchdogConfig,
)


def tiny(**overrides):
    scenario = edge_scale(flows=3, duration=6.0, warmup=1.0, seed=7)
    return scenario.with_overrides(**overrides) if overrides else scenario


def faulted_run(faults, **kwargs):
    kwargs.setdefault("watchdog", WatchdogConfig(stall_budget=10.0))
    return run_experiment(tiny(faults=faults), **kwargs)


class TestGilbertElliott:
    def test_stationary_loss_rate_approximated(self):
        model = GilbertElliott(
            p_enter=0.05, p_exit=0.25, loss_bad=0.8, rng=random.Random(5)
        )
        packets = 20_000
        drops = sum(model.should_drop(None) for _ in range(packets))
        assert model.packets_seen == packets
        expected = model.stationary_loss_rate
        assert expected == pytest.approx((0.05 / 0.30) * 0.8)
        assert drops / packets == pytest.approx(expected, rel=0.15)

    def test_losses_are_bursty(self):
        """Correlated loss must produce multi-packet bursts far more often
        than an independent Bernoulli channel with the same rate would."""
        model = GilbertElliott(
            p_enter=0.02, p_exit=0.2, loss_bad=1.0, rng=random.Random(9)
        )
        pattern = [model.should_drop(None) for _ in range(20_000)]
        runs = []
        current = 0
        for lost in pattern:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs and sum(runs) / len(runs) > 2.0  # mean burst length
        assert model.bursts == len(runs) + (1 if current else 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_enter=0.0, p_exit=0.5, loss_bad=0.5, rng=random.Random(1))
        with pytest.raises(ValueError):
            GilbertElliott(p_enter=0.5, p_exit=0.5, loss_bad=1.5, rng=random.Random(1))


class TestInjection:
    def test_recovered_blackout_reduces_goodput_but_completes(self):
        clean = run_experiment(tiny())
        faulted = faulted_run((FaultEvent("link_down", time=2.0, duration=1.5),))
        assert faulted.health is not None and faulted.health.ok
        assert faulted.measured_duration == pytest.approx(5.0)
        assert faulted.aggregate_goodput_bps < 0.8 * clean.aggregate_goodput_bps
        descriptions = [entry for _, entry in faulted.health.fault_timeline]
        assert descriptions == ["link down", "link up"]

    def test_bandwidth_dip_and_restore(self):
        clean = run_experiment(tiny())
        faulted = faulted_run((FaultEvent("bandwidth", time=2.0, duration=2.0, value=0.25),))
        assert faulted.health.ok
        assert faulted.aggregate_goodput_bps < clean.aggregate_goodput_bps
        assert [t for t, _ in faulted.health.fault_timeline] == [2.0, 4.0]

    def test_rtt_fault_raises_measured_rtt(self):
        clean = run_experiment(tiny())
        faulted = faulted_run((FaultEvent("rtt", time=1.5, value=8.0),))  # permanent
        assert faulted.health.ok
        clean_rtt = max(f.measured_rtt for f in clean.flows)
        faulted_rtt = max(f.measured_rtt for f in faulted.flows)
        # The netem path carries ~19 ms of the 20 ms base RTT; x8 puts the
        # propagation floor alone above 0.14 s. (Queueing delay *drops*
        # under the fault — less aggressive flows — so comparing against a
        # multiple of the clean sRTT would be meaningless.)
        assert faulted_rtt > 0.14
        assert faulted_rtt > clean_rtt

    def test_burst_loss_causes_retransmits(self):
        clean = run_experiment(tiny())
        faulted = faulted_run(
            (FaultEvent("burst_loss", time=1.5, duration=3.0, value=0.4),)
        )
        assert faulted.health.ok
        assert sum(f.retransmits for f in faulted.flows) > sum(
            f.retransmits for f in clean.flows
        )
        on_entry, off_entry = faulted.health.fault_timeline
        assert "burst loss on" in on_entry[1]
        assert "burst loss off" in off_entry[1]

    def test_buffer_shrink_forces_drops(self):
        faulted = faulted_run((FaultEvent("buffer", time=2.0, duration=2.0, value=0.02),))
        assert faulted.health.ok
        assert faulted.queue_drops > 0

    def test_fault_schedule_param_overrides_scenario(self):
        schedule = FaultSchedule([FaultEvent("link_down", time=2.0, duration=1.0)])
        result = run_experiment(tiny(), fault_schedule=schedule)
        assert result.health is not None
        assert [entry for _, entry in result.health.fault_timeline] == [
            "link down", "link up",
        ]

    def test_double_arm_rejected(self):
        from repro.sim.engine import Simulator
        from repro.sim.topology import FlowSpec, build_dumbbell
        from repro.tcp.cca.newreno import NewReno

        sim = Simulator()
        dumbbell = build_dumbbell(
            sim, [FlowSpec(cca=NewReno(), rtt=0.02)], bottleneck_bw_bps=1e7,
            buffer_bytes=30_000,
        )
        injector = FaultInjector(
            sim,
            FaultSchedule([FaultEvent("link_down", time=1.0)]),
            dumbbell,
            rng=random.Random(1),
        )
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()


class TestDeterminism:
    def test_faulted_runs_are_byte_identical(self):
        faults = (
            FaultEvent("link_down", time=2.0, duration=0.5),
            FaultEvent("burst_loss", time=3.0, duration=1.5, value=0.3),
        )
        first = pickle.dumps(faulted_run(faults))
        second = pickle.dumps(faulted_run(faults))
        assert first == second

    def test_unfaulted_runs_are_byte_identical(self):
        assert pickle.dumps(run_experiment(tiny())) == pickle.dumps(run_experiment(tiny()))

    def test_fault_rng_does_not_perturb_flow_setup(self):
        """Adding faults must not change the flow-level RNG draws: the
        injector derives its RNG from the seed independently, so per-flow
        start times, jitter seeds and CCA RNGs stay identical."""
        clean = run_experiment(tiny())
        faulted = faulted_run((FaultEvent("bandwidth", time=5.5, duration=0.2, value=0.9),))
        # A tiny late fault barely changes throughput; what must match
        # exactly is everything decided before t=0.
        assert [f.base_rtt for f in faulted.flows] == [f.base_rtt for f in clean.flows]
        assert [f.flow_id for f in faulted.flows] == [f.flow_id for f in clean.flows]

    def test_burst_loss_differs_across_seeds(self):
        faults = (FaultEvent("burst_loss", time=1.5, duration=3.0, value=0.4),)
        one = run_experiment(tiny(faults=faults))
        two = run_experiment(tiny(faults=faults).with_overrides(seed=8))
        assert pickle.dumps(one) != pickle.dumps(two)
