"""Property tests: the heap-based Simulator vs a brute-force reference.

The optimized engine (lazy cancellation, mid-run compaction, the bare
fast-path loop) must execute exactly the same events in exactly the
same order as the obviously correct O(n^2) scheduler below. Hypothesis
drives both with the same randomly generated program of schedules,
nested schedules, cancellations, budgets and horizons, and the test
compares the full execution logs plus the final clock.

All tests are derandomized (fixed example corpus per hypothesis
version) with ``database=None``, so CI never depends on the local
``.hypothesis`` example database and never flakes on a "lucky" find.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

PROPERTY_SETTINGS = settings(
    max_examples=120, derandomize=True, database=None, deadline=None
)


class NaiveScheduler:
    """Reference implementation: linear scan for the minimum (time, seq).

    Mirrors the documented Simulator semantics — FIFO among same-time
    events, lazy cancellation, lifetime event budget, clock advanced to
    ``until`` only on natural completion — with none of the heap, the
    compaction or the fast-path tricks.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.events_processed = 0
        self._seq = 0
        self._pending: List[List[Any]] = []  # [time, seq, fn, args]
        self._stop = False

    def schedule(self, delay: float, fn, *args) -> List[Any]:
        assert delay >= 0
        self._seq += 1
        event = [self.now + delay, self._seq, fn, args]
        self._pending.append(event)
        return event

    def cancel(self, event: List[Any]) -> None:
        event[2] = None

    def stop(self) -> None:
        self._stop = True

    def _next_live(self) -> Optional[List[Any]]:
        best = None
        for event in self._pending:
            if event[2] is None:
                continue
            if best is None or (event[0], event[1]) < (best[0], best[1]):
                best = event
        return best

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self._stop = False
        while True:
            if max_events is not None and self.events_processed >= max_events:
                break
            event = self._next_live()
            if event is None:
                break
            if until is not None and event[0] > until:
                break
            self._pending.remove(event)
            self.now = event[0]
            fn, args = event[2], event[3]
            event[2] = None
            fn(*args)
            self.events_processed += 1
            if self._stop:
                break
        if until is not None and self.now < until and not self._stop:
            nxt = self._next_live()
            if nxt is None or nxt[0] > until:
                self.now = until


# One program instruction: (delay, action, param). Actions:
#   "log"    — handler records (now, tag)
#   "spawn"  — handler additionally schedules a log event param later
#   "cancel" — handler cancels the param-th root event (modulo count)
_INSTRUCTION = st.tuples(
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False),
    st.sampled_from(["log", "spawn", "cancel"]),
    st.floats(min_value=0.0, max_value=4.0, allow_nan=False, allow_infinity=False),
)

_PROGRAM = st.lists(_INSTRUCTION, min_size=1, max_size=40)


def _execute(sim, program, log: Optional[List[Tuple[float, str]]] = None) -> List[Tuple[float, str]]:
    """Load ``program`` into a scheduler and return its execution log."""
    if log is None:
        log = []
    roots: List[Any] = []

    def make_handler(tag: str, action: str, param: float):
        def handler() -> None:
            log.append((sim.now, tag))
            if action == "spawn":
                sim.schedule(param, log.append, (sim.now + param, f"{tag}-child"))
            elif action == "cancel" and roots:
                target = roots[int(param * 10) % len(roots)]
                sim.cancel(target)

        return handler

    for idx, (delay, action, param) in enumerate(program):
        roots.append(sim.schedule(delay, make_handler(f"e{idx}", action, param)))
    return log


@PROPERTY_SETTINGS
@given(program=_PROGRAM)
def test_run_matches_naive_reference(program):
    sim, ref = Simulator(sanitize=False), NaiveScheduler()
    log_sim = _execute(sim, program)
    log_ref = _execute(ref, program)
    sim.run()
    ref.run()
    assert log_sim == log_ref
    assert sim.now == ref.now
    assert sim.events_processed == ref.events_processed


@PROPERTY_SETTINGS
@given(
    program=_PROGRAM,
    until=st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
)
def test_run_until_matches_naive_reference(program, until):
    sim, ref = Simulator(sanitize=False), NaiveScheduler()
    log_sim = _execute(sim, program)
    log_ref = _execute(ref, program)
    sim.run(until=until)
    ref.run(until=until)
    assert log_sim == log_ref
    assert sim.now == ref.now
    assert sim.events_processed == ref.events_processed


@PROPERTY_SETTINGS
@given(program=_PROGRAM, budget=st.integers(min_value=0, max_value=60))
def test_budget_matches_naive_reference(program, budget):
    sim, ref = Simulator(sanitize=False), NaiveScheduler()
    log_sim = _execute(sim, program)
    log_ref = _execute(ref, program)
    sim.run(until=10.0, max_events=budget)
    ref.run(until=10.0, max_events=budget)
    assert log_sim == log_ref
    assert sim.now == ref.now
    assert sim.events_processed == ref.events_processed


class _StoppableLog(list):
    """A log list whose ``append`` can be swapped per instance."""


@PROPERTY_SETTINGS
@given(program=_PROGRAM, stop_after=st.integers(min_value=1, max_value=20))
def test_stop_matches_naive_reference(program, stop_after):
    """stop() fired from inside the handler that makes the stop_after-th
    log record; both schedulers must halt at the same point."""

    def run_side(sched) -> Tuple[List[Tuple[float, str]], float, int]:
        log = _StoppableLog()
        count = [0]

        def counting_append(item):
            list.append(log, item)
            count[0] += 1
            if count[0] == stop_after:
                sched.stop()

        _execute(sched, program, log=log)
        log.append = counting_append  # type: ignore[method-assign]
        sched.run(until=10.0)
        return list(log), sched.now, sched.events_processed

    log_sim, now_sim, n_sim = run_side(Simulator(sanitize=False))
    log_ref, now_ref, n_ref = run_side(NaiveScheduler())
    assert log_sim == log_ref
    assert now_sim == now_ref
    assert n_sim == n_ref


@PROPERTY_SETTINGS
@given(
    n=st.integers(min_value=300, max_value=700),
    keep_every=st.integers(min_value=2, max_value=7),
)
def test_mass_cancellation_compaction_preserves_order(n, keep_every):
    """Cancelling most of a large population forces heap compaction
    (the in-place rebuild past _COMPACT_MIN); survivors must still fire
    in exact (time, seq) order."""
    sim = Simulator(sanitize=False)
    fired: List[int] = []
    events = [sim.schedule(float(i % 13), fired.append, i) for i in range(n)]
    survivors = [i for i in range(n) if i % keep_every == 0]
    for i in range(n):
        if i % keep_every != 0:
            sim.cancel(events[i])
            sim.cancel(events[i])  # double-cancel must stay a no-op
    sim.run()
    expected = sorted(survivors, key=lambda i: (float(i % 13), i))
    assert fired == expected
    assert sim.events_processed == len(survivors)
