"""Property tests: RangeSet vs a plain ``set`` of integers.

Every RangeSet operation has an obvious meaning on a set of covered
integers; Hypothesis generates arbitrary interleavings of mutators and
checks each query against the model after every step. This is the
correctness net under the SACK scoreboard batching in
``TcpSender._on_ack`` — the scoreboard's RangeSets are exactly what the
hot path now updates through fewer, larger calls.

Derandomized with ``database=None`` (see test_engine_properties).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.rangeset import RangeSet

PROPERTY_SETTINGS = settings(
    max_examples=200, derandomize=True, database=None, deadline=None
)

_VALUE = st.integers(min_value=0, max_value=120)

# Mutators: ("add", lo, hi) / ("add_point", v, 0) / ("remove_below", v, 0)
_OP = st.one_of(
    st.tuples(st.just("add"), _VALUE, _VALUE),
    st.tuples(st.just("add_point"), _VALUE, st.just(0)),
    st.tuples(st.just("remove_below"), _VALUE, st.just(0)),
)

_OPS = st.lists(_OP, min_size=1, max_size=30)


def _apply(rs: RangeSet, model: Set[int], op: Tuple[str, int, int]) -> None:
    kind, a, b = op
    if kind == "add":
        lo, hi = min(a, b), max(a, b)
        rs.add(lo, hi)  # lo == hi is the documented empty-range no-op
        model.update(range(lo, hi))
    elif kind == "add_point":
        rs.add_point(a)
        model.add(a)
    else:
        rs.remove_below(a)
        model.difference_update(v for v in list(model) if v < a)


def _model_holes(model: Set[int], start: int, end: int) -> List[Tuple[int, int]]:
    holes: List[Tuple[int, int]] = []
    run_start = None
    for v in range(start, end):
        if v not in model:
            if run_start is None:
                run_start = v
        elif run_start is not None:
            holes.append((run_start, v))
            run_start = None
    if run_start is not None:
        holes.append((run_start, end))
    return holes


def _check_against_model(rs: RangeSet, model: Set[int]) -> None:
    assert rs.consistency_error() is None
    assert bool(rs) == bool(model)
    assert len(rs) == len(model)
    if model:
        assert rs.min_value() == min(model)
        assert rs.max_value() == max(model)
    for probe in (0, 1, 17, 59, 60, 61, 119, 120, 121):
        assert (probe in rs) == (probe in model)
        assert rs.count_above(probe) == sum(1 for v in model if v > probe)
        assert rs.count_below(probe) == sum(1 for v in model if v < probe)
        expected_end = probe
        while expected_end in model:
            expected_end += 1
        if probe in model:
            assert rs.contiguous_end_from(probe) == expected_end
        else:
            assert rs.contiguous_end_from(probe) == probe


@PROPERTY_SETTINGS
@given(ops=_OPS)
def test_rangeset_matches_set_model(ops):
    rs, model = RangeSet(), set()
    for op in ops:
        _apply(rs, model, op)
        _check_against_model(rs, model)


@PROPERTY_SETTINGS
@given(ops=_OPS, start=_VALUE, end=_VALUE)
def test_holes_and_covers_match_model(ops, start, end):
    rs, model = RangeSet(), set()
    for op in ops:
        _apply(rs, model, op)
    lo, hi = min(start, end), max(start, end)
    assert rs.holes_between(lo, hi) == _model_holes(model, lo, hi)
    assert rs.covers(lo, hi) == all(v in model for v in range(lo, hi))


@PROPERTY_SETTINGS
@given(ops=_OPS, n=st.integers(min_value=1, max_value=130))
def test_nth_from_top_matches_model(ops, n):
    rs, model = RangeSet(), set()
    for op in ops:
        _apply(rs, model, op)
    ordered = sorted(model, reverse=True)
    expected = ordered[n - 1] if n <= len(ordered) else None
    assert rs.nth_from_top(n) == expected


@PROPERTY_SETTINGS
@given(ops=_OPS)
def test_ranges_roundtrip(ops):
    """ranges() is a faithful, canonical representation: rebuilding a
    RangeSet from it yields an equal set, and the fragments are sorted,
    disjoint and non-adjacent."""
    rs, model = RangeSet(), set()
    for op in ops:
        _apply(rs, model, op)
    fragments = rs.ranges()
    rebuilt = RangeSet(fragments)
    assert rebuilt == rs
    covered = set()
    prev_end = None
    for lo, hi in fragments:
        assert lo < hi
        if prev_end is not None:
            assert lo > prev_end  # disjoint and non-adjacent
        covered.update(range(lo, hi))
        prev_end = hi
    assert covered == model
