#!/usr/bin/env python3
"""Finding 5: BBR's intra-CCA fairness degrades with flow count.

Sweeps BBR-only experiments from a handful of flows (where past work
reports JFI ~0.99) to at-scale counts, printing the JFI trend — the
paper's most surprising result (Fig 4). Also demonstrates run_sweep and
per-flow inspection of the BBR state that drives the unfairness.

Run time: a few minutes of wall clock.

    python examples/bbr_fairness_at_scale.py
"""

from repro import FlowGroup, Scenario, run_sweep
from repro.units import bdp_bytes, mbps, to_mbps

BOTTLENECK = mbps(100)
RTT = 0.100


def scenario(flows: int, duration: float = 60.0, warmup: float = 20.0) -> Scenario:
    return Scenario(
        name=f"bbr-intra-{flows}",
        bottleneck_bw_bps=BOTTLENECK,
        buffer_bytes=bdp_bytes(BOTTLENECK, 0.200),
        groups=(FlowGroup("bbr", flows, RTT),),
        duration=duration,
        warmup=warmup,
        stagger_max=5.0,
        seed=17,
    )


def main() -> None:
    import sys
    quick = "--quick" in sys.argv
    sweep = [2, 5, 10] if quick else [2, 5, 10, 20, 40]
    print(f"BBR intra-CCA fairness on a {to_mbps(BOTTLENECK):.0f} Mbps "
          f"bottleneck at {RTT * 1000:.0f} ms RTT")
    print(f"{'flows':>6} {'JFI':>7} {'util':>7} {'loss':>8} "
          f"{'min flow':>9} {'max flow':>9}  (Mbps)")
    duration, warmup = (20.0, 6.0) if quick else (60.0, 20.0)
    results = run_sweep(
        [scenario(n, duration, warmup) for n in sweep], parallel=1
    )
    for flows, result in zip(sweep, results):
        goodputs = [f.goodput_bps for f in result.flows]
        print(
            f"{flows:>6} {result.jfi():>7.3f} {result.utilization:>7.2%} "
            f"{result.aggregate_loss_rate:>8.3%} "
            f"{to_mbps(min(goodputs)):>9.2f} {to_mbps(max(goodputs)):>9.2f}"
        )
    print("\nPast work reports JFI ~0.99 at low flow counts; the paper "
          "finds it collapses toward 0.4 at scale (Fig 4). Watch the "
          "JFI column fall as the per-flow share shrinks toward BBR's "
          "cwnd floor.")


if __name__ == "__main__":
    main()
