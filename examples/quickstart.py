#!/usr/bin/env python3
"""Quickstart: run one scaled CoreScale experiment and read the results.

This reproduces a single point of the paper's methodology end to end:
build the dumbbell, run 1000 (scaled) NewReno flows over a 10 Gbps
(scaled) bottleneck with a 1-BDP drop-tail buffer, cut the warm-up, and
report goodput, fairness and the Mathis-relevant event rates.

Run time: ~15 seconds of wall clock.

    python examples/quickstart.py
"""

from repro import core_scale, fit_mathis, run_experiment
from repro.units import MSS, to_mbps


def main() -> None:
    # The paper's 1000-flow CoreScale point, scaled by 100 for a quick
    # demo: a 100 Mbps bottleneck with 10 flows and the same per-flow
    # share (10 Gbps / 1000 = 100 Mbps / 10 = 10 Mbps fair share).
    scenario = core_scale(flows=1000, cca="newreno", scale=100,
                          duration=30.0, warmup=10.0)
    print(f"running {scenario.name}: {scenario.total_flows} flows at "
          f"{to_mbps(scenario.bottleneck_bw_bps):.0f} Mbps, "
          f"buffer {scenario.buffer_bytes // 1_000_000} MB ...")

    result = run_experiment(scenario)

    print(result.summary())
    print(f"per-flow fair share : {to_mbps(scenario.bottleneck_bw_bps) / scenario.total_flows:.1f} Mbps")
    print(f"Jain fairness index : {result.jfi():.3f}")
    print(f"queue loss rate     : {result.aggregate_loss_rate:.3%}")
    print(f"loss/halving ratio  : "
          f"{result.queue_drops / max(1, result.total_congestion_events):.2f} "
          f"(Finding 3: >1 means burst drops)")

    # Fit the Mathis constant both ways, the paper's Table 1 procedure.
    for interp in ("loss", "halving"):
        fit = fit_mathis(result.observations(), interp, MSS)
        print(f"Mathis C via {interp:8s}: {fit.constant:5.2f}   "
              f"median prediction error {fit.median_error:.1%}")


if __name__ == "__main__":
    main()
