#!/usr/bin/env python3
"""Inter-CCA competition: who gets the bandwidth? (Figs 5-8)

Runs three head-to-head competitions on the same scaled CoreScale
bottleneck and compares measured shares against the paper's reference
numbers and the Ware et al. model prediction:

1. Cubic vs NewReno, equal counts   (paper: Cubic takes 70-80%)
2. one BBR flow vs many NewReno     (paper: BBR takes ~40%)
3. BBR vs NewReno, equal counts     (paper: BBR takes up to 99.9%)

Run time: several minutes of wall clock.

    python examples/inter_cca_competition.py
"""

from repro import FlowGroup, Scenario, predict_bbr_share, run_experiment
from repro.units import bdp_bytes, mbps

BOTTLENECK = mbps(200)
BUFFER = bdp_bytes(BOTTLENECK, 0.200)
RTT = 0.020


QUICK = False


def compete(name, groups, duration=120.0, warmup=40.0):
    if QUICK:
        duration, warmup = duration / 6, warmup / 6
    scenario = Scenario(
        name=name,
        bottleneck_bw_bps=BOTTLENECK,
        buffer_bytes=BUFFER,
        groups=groups,
        duration=duration,
        warmup=warmup,
        stagger_max=5.0,
        seed=23,
    )
    return run_experiment(scenario)


def main() -> None:
    global QUICK
    import sys
    QUICK = "--quick" in sys.argv
    print("1) Cubic vs NewReno, 30 flows each (paper: Cubic ~70-80%)")
    r = compete("cubic-v-reno", (FlowGroup("cubic", 30, RTT),
                                 FlowGroup("newreno", 30, RTT)))
    print(f"   cubic share: {r.shares()['cubic']:.1%}   "
          f"(newreno intra-JFI {r.jfi('newreno'):.3f})")

    print("2) one BBR flow vs 99 NewReno (paper: BBR ~40%; "
          f"Ware model: {predict_bbr_share(1.0):.0%})")
    r = compete("one-bbr", (FlowGroup("bbr", 1, RTT),
                            FlowGroup("newreno", 99, RTT)),
                duration=150.0, warmup=50.0)
    fair = 1 / 100
    share = r.shares()["bbr"]
    print(f"   bbr share: {share:.1%}  = {share / fair:.0f}x its fair share")

    print("3) BBR vs NewReno, 50 flows each (paper: BBR up to 99.9%)")
    r = compete("bbr-equal", (FlowGroup("bbr", 50, RTT),
                              FlowGroup("newreno", 50, RTT)))
    print(f"   bbr share: {r.shares()['bbr']:.1%}   "
          f"(bbr intra-JFI {r.jfi('bbr'):.3f} — Finding 5's unfairness "
          f"shows up here too)")


if __name__ == "__main__":
    main()
