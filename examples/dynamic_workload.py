#!/usr/bin/env python3
"""Extension: flow churn and completion times (beyond the paper's scope).

The paper's methodology deliberately fixes long-running flows (§3.2
Limitations). This example exercises the dynamic-workload extension:
finite flows arriving as a Poisson process, half NewReno and half BBR,
and compares flow completion times — asking the paper's fairness
question from the perspective a short transfer actually experiences.

Run time: ~1 minute of wall clock.

    python examples/dynamic_workload.py
"""

from repro.analysis.stats import median, percentile
from repro.core.scenarios import FlowGroup
from repro.core.workload import DynamicWorkload, run_dynamic_workload
from repro.units import bdp_bytes, mbps


def main() -> None:
    workload = DynamicWorkload(
        bottleneck_bw_bps=mbps(50),
        buffer_bytes=bdp_bytes(mbps(50), 0.200),
        arrival_rate_per_s=8.0,
        flow_size_packets=150,
        cca_mix=(FlowGroup("newreno", 1), FlowGroup("bbr", 1)),
        rtt=0.020,
        duration=60.0,
        seed=9,
    )
    print(f"offered load: {workload.offered_load():.0%} of a 50 Mbps link, "
          f"flows arriving at {workload.arrival_rate_per_s}/s "
          f"(mean size {workload.flow_size_packets} packets)")
    result = run_dynamic_workload(workload)
    print(f"flows arrived: {len(result.flows)}   "
          f"completed in-run: {result.completion_fraction():.0%}")
    for cca, fcts in sorted(result.fcts_by_cca().items()):
        print(f"  {cca:8s} n={len(fcts):4d}  median FCT {median(fcts) * 1000:7.1f} ms  "
              f"p95 {percentile(fcts, 95) * 1000:7.1f} ms")
    print("\nWith BBR in the mix, watch the loss-based flows' tail FCTs "
          "inflate — the churn-workload view of the paper's Figs 6-8.")


if __name__ == "__main__":
    main()
