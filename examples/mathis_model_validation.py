#!/usr/bin/env python3
"""Findings 1-3: validating the Mathis model's two interpretations of p.

Runs NewReno-only experiments in an EdgeScale-like and a scaled
CoreScale-like setting, fits the Mathis constant from both the packet
loss rate and the CWND halving rate, and shows:

- the loss-rate constant drifts between settings (Finding 1),
- the halving-rate predictions stay accurate at scale (Finding 2),
- the loss/halving ratio and the Goh-Barabási burstiness of queue
  drops both rise at scale (Finding 3).

Run time: a couple of minutes of wall clock.

    python examples/mathis_model_validation.py
"""

from repro import burstiness_score, edge_scale, core_scale, fit_mathis, run_experiment
from repro.units import MSS


def report(label, result):
    obs = result.observations()
    ratio = result.queue_drops / max(1, result.total_congestion_events)
    try:
        burst = burstiness_score(result.drop_times)
    except ValueError:
        burst = float("nan")
    print(f"\n{label}")
    print(f"  utilization {result.utilization:.1%}   "
          f"loss rate {result.aggregate_loss_rate:.3%}   "
          f"loss/halving ratio {ratio:.2f}   drop burstiness {burst:.2f}")
    for interp in ("loss", "halving"):
        fit = fit_mathis(obs, interp, MSS)
        print(f"  p = {interp:7s}: C = {fit.constant:5.2f}   "
              f"median prediction error {fit.median_error:6.1%}")
    return {interp: fit_mathis(obs, interp, MSS).constant
            for interp in ("loss", "halving")}


def main() -> None:
    edge = run_experiment(
        edge_scale(flows=30, duration=60.0, warmup=20.0, seed=13)
    )
    edge_c = report("EdgeScale (100 Mbps, 30 NewReno flows)", edge)

    core = run_experiment(
        core_scale(flows=3000, scale=50, duration=60.0, warmup=20.0, seed=13)
    )
    core_c = report("CoreScale/50 (200 Mbps, 60 NewReno flows)", core)

    print("\nConstant stability across settings (Finding 1):")
    for interp in ("loss", "halving"):
        drift = abs(core_c[interp] - edge_c[interp]) / edge_c[interp]
        print(f"  {interp:7s}: edge {edge_c[interp]:.2f} -> core "
              f"{core_c[interp]:.2f}  ({drift:.0%} drift)")
    print("\nThe paper's conclusion: use the CWND halving rate for p when "
          "estimating NewReno throughput over the Internet core.")


if __name__ == "__main__":
    main()
