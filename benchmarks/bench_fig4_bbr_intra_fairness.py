"""Figure 4: BBR intra-CCA fairness (JFI), Edge and Core sweeps.

Paper's Finding 5 — the surprise result: BBR competing only with other
BBR flows at the same RTT is fair at low flow counts (JFI ~0.99 per past
work) but becomes unfair at scale (JFI as low as 0.4), with milder
unfairness already visible beyond 10 flows at EdgeScale (JFI ~0.7).
"""

from __future__ import annotations

from common import (
    FIG4_RTTS,
    PAPER_CORE_COUNTS,
    PAPER_EDGE_COUNTS,
    PROFILE,
    core_scenario,
    edge_scenario,
    fmt,
    print_table,
    run_batch,
)

PAST_WORK_JFI = 0.99


def jfi_sweeps():
    core_scs = {}
    edge_scs = {}
    for rtt in FIG4_RTTS:
        for count in PAPER_CORE_COUNTS:
            core_scs[(count, rtt)] = core_scenario(
                [("bbr", count, rtt)], "fig4",
                f"fig4-core-{count}-{int(rtt * 1000)}ms", seed=31,
            )
        for count in PAPER_EDGE_COUNTS:
            edge_scs[(count, rtt)] = edge_scenario(
                [("bbr", count, rtt)], "fig4",
                f"fig4-edge-{count}-{int(rtt * 1000)}ms", seed=31,
            )
    results = run_batch(list(core_scs.values()) + list(edge_scs.values()))
    core = {k: results[sc.name].jfi() for k, sc in core_scs.items()}
    edge = {k: results[sc.name].jfi() for k, sc in edge_scs.items()}
    return core, edge


def test_fig4_bbr_intra_fairness(benchmark):
    core, edge = benchmark.pedantic(jfi_sweeps, rounds=1, iterations=1)
    for setting, counts, data in (
        ("CoreScale", PAPER_CORE_COUNTS, core),
        ("EdgeScale", PAPER_EDGE_COUNTS, edge),
    ):
        rows = [
            [str(count)] + [fmt(data[(count, rtt)], 3) for rtt in FIG4_RTTS]
            + [fmt(PAST_WORK_JFI, 2)]
            for count in counts
        ]
        print_table(
            f"Fig 4 ({setting}): BBR intra-CCA JFI",
            ["flows"] + [f"{int(r * 1000)}ms" for r in FIG4_RTTS] + ["past work"],
            rows,
        )
    if PROFILE == "smoke":
        return
    # Shape (Finding 5): somewhere in the sweeps BBR falls well below the
    # JFI ~0.99 past work reports at low flow counts.
    worst = min(min(core.values()), min(edge.values()))
    assert worst < 0.9, f"expected BBR intra-CCA unfairness, worst JFI {worst:.3f}"
    for value in list(core.values()) + list(edge.values()):
        assert 0.0 < value <= 1.0
