"""Extension: BBRv2 at scale (the paper's explicit future-work pointer).

The paper evaluates BBRv1 and notes BBRv2 "remains a work in progress".
This bench runs the successor through two of the paper's headline
experiments at the CoreScale operating point:

- intra-CCA fairness (the Fig 4 construction with bbr2), and
- equal-count competition against NewReno (the Fig 8a construction).

Expected shape: v2's loss responsiveness makes it both fairer to itself
and far less brutal to loss-based flows than v1.
"""

from __future__ import annotations

from common import (
    PAPER_CORE_COUNTS,
    PROFILE,
    core_scenario,
    fmt,
    fmt_pct,
    print_table,
    run_batch,
)


def bbr2_results():
    intra_scs = {}
    compete_scs = {}
    for count in PAPER_CORE_COUNTS:
        intra_scs[count] = core_scenario(
            [("bbr2", count, 0.020)], "fig4", f"ext-bbr2-intra-{count}", seed=71
        )
        half = count // 2
        compete_scs[count] = core_scenario(
            [("bbr2", half, 0.020), ("newreno", half, 0.020)],
            "share",
            f"ext-bbr2-v-reno-{count}",
            seed=71,
        )
    results = run_batch(list(intra_scs.values()) + list(compete_scs.values()))
    intra = {c: results[sc.name].jfi() for c, sc in intra_scs.items()}
    compete = {
        c: results[sc.name].shares()["bbr2"] for c, sc in compete_scs.items()
    }
    return intra, compete


def test_ext_bbr2_at_scale(benchmark):
    intra, compete = benchmark.pedantic(bbr2_results, rounds=1, iterations=1)
    rows = [
        [str(c), fmt(intra[c], 3), fmt_pct(compete[c])] for c in PAPER_CORE_COUNTS
    ]
    print_table(
        "Extension: BBRv2 at CoreScale (20 ms) — intra JFI and share vs "
        "equal NewReno",
        ["flows", "intra JFI", "share vs reno"],
        rows,
    )
    if PROFILE == "smoke":
        return
    for c in PAPER_CORE_COUNTS:
        assert 0.0 < intra[c] <= 1.0
        assert 0.0 <= compete[c] <= 1.0
    # v2 backs off on loss; it must not starve the loss-based group the
    # way the paper shows v1 can.
    assert max(compete.values()) < 0.95
