"""Figure 8: equal-count BBR vs NewReno (8a) and vs Cubic (8b), CoreScale.

Paper's Finding 7: when half the flows run BBR and half run a loss-based
CCA, the BBR aggregate takes up to 99.9% of throughput at scale —
confirming the extreme inter-CCA unfairness known from edge studies
(Hock et al. and others report up to 99% with small buffers).
"""

from __future__ import annotations

from common import (
    FIG_RTTS,
    PAPER_CORE_COUNTS,
    PROFILE,
    core_scenario,
    fmt_pct,
    print_table,
    run_batch,
)

HOME_LINK_SHARE = 0.95


def bbr_equal_shares(competitor: str):
    scs = {}
    for rtt in FIG_RTTS:
        for count in PAPER_CORE_COUNTS:
            half = count // 2
            scs[(count, rtt)] = core_scenario(
                [("bbr", half, rtt), (competitor, half, rtt)],
                "share",
                f"fig8-{competitor}-{count}-{int(rtt * 1000)}ms",
                seed=81,
            )
    results = run_batch(list(scs.values()))
    return {k: results[sc.name].shares()["bbr"] for k, sc in scs.items()}


def _report(out, competitor: str, panel: str) -> None:
    rows = [
        [str(count)]
        + [fmt_pct(out[(count, rtt)]) for rtt in FIG_RTTS]
        + [fmt_pct(HOME_LINK_SHARE)]
        for count in PAPER_CORE_COUNTS
    ]
    print_table(
        f"Fig 8{panel}: BBR aggregate share vs equal {competitor} "
        f"(paper: up to 99.9%)",
        ["flows"] + [f"{int(r * 1000)}ms" for r in FIG_RTTS] + ["home link"],
        rows,
    )
    if PROFILE == "smoke":
        return
    # Shape: the BBR aggregate is persistently advantaged. The paper
    # measures up to 99.9%; our simulator reproduces a clear advantage
    # but parks lower (see EXPERIMENTS.md for the fidelity discussion),
    # so the assertion checks the direction, not the extreme value.
    shares = list(out.values())
    assert min(shares) > 0.25, (
        f"BBR aggregate collapsed vs {competitor}: {min(shares):.2%}"
    )
    assert sum(shares) / len(shares) > 0.35, (
        f"BBR aggregate should be advantaged vs {competitor}: "
        f"mean {sum(shares) / len(shares):.2%}"
    )


def test_fig8a_bbr_vs_reno_equal(benchmark):
    out = benchmark.pedantic(
        bbr_equal_shares, args=("newreno",), rounds=1, iterations=1
    )
    _report(out, "NewReno", "a")


def test_fig8b_bbr_vs_cubic_equal(benchmark):
    out = benchmark.pedantic(
        bbr_equal_shares, args=("cubic",), rounds=1, iterations=1
    )
    _report(out, "Cubic", "b")
