"""Figure 2: median Mathis prediction error, loss rate vs halving rate.

Paper: at CoreScale the model predicts within <=10% (median) when p is
the CWND halving rate, but errs 45-55% when p is the packet loss rate;
at EdgeScale both interpretations are accurate (<10%).

The bench fits C per (setting, flow count, interpretation) — the paper's
Table-1 methodology — and reports the median per-flow relative error.
"""

from __future__ import annotations

from common import (
    PAPER_CORE_COUNTS,
    PAPER_EDGE_COUNTS,
    PROFILE,
    fmt_pct,
    mathis_core_results,
    mathis_edge_results,
    print_table,
)
from repro.analysis.mathis_fit import fit_mathis
from repro.units import MSS


def prediction_errors():
    edge = mathis_edge_results()
    core = mathis_core_results()
    errors = {"edge": {}, "core": {}}
    for count, result in edge.items():
        for interp in ("loss", "halving"):
            fit = fit_mathis(result.observations(), interp, MSS)
            errors["edge"][(count, interp)] = fit.median_error
    for count, result in core.items():
        for interp in ("loss", "halving"):
            fit = fit_mathis(result.observations(), interp, MSS)
            errors["core"][(count, interp)] = fit.median_error
    return errors


def test_fig2_prediction_error(benchmark):
    errors = benchmark.pedantic(prediction_errors, rounds=1, iterations=1)
    rows = []
    for count in PAPER_CORE_COUNTS:
        rows.append(
            [
                f"CoreScale {count}",
                fmt_pct(errors["core"][(count, "loss")]),
                fmt_pct(errors["core"][(count, "halving")]),
            ]
        )
    for count in PAPER_EDGE_COUNTS:
        rows.append(
            [
                f"EdgeScale {count}",
                fmt_pct(errors["edge"][(count, "loss")]),
                fmt_pct(errors["edge"][(count, "halving")]),
            ]
        )
    print_table(
        "Fig 2: median Mathis prediction error",
        ["setting", "p = packet loss rate", "p = CWND halving rate"],
        rows,
    )
    if PROFILE == "smoke":
        return
    # Shape (Finding 2): at CoreScale the halving-rate error is smaller
    # than the loss-rate error at every flow count.
    for count in PAPER_CORE_COUNTS:
        assert (
            errors["core"][(count, "halving")] < errors["core"][(count, "loss")]
        ), f"halving-rate should predict better at core count={count}"
