"""Figure 5: Cubic vs NewReno, equal flow counts, CoreScale sweep.

Paper's Finding 8: Cubic takes 70-80% of total throughput when competing
with an equal number of NewReno flows at CoreScale, confirming the
edge-setting result of Ha et al.
"""

from __future__ import annotations

from common import (
    FIG_RTTS,
    PAPER_CORE_COUNTS,
    PROFILE,
    core_scenario,
    fmt_pct,
    print_table,
    run_batch,
)

HOME_LINK_SHARE = 0.80  # the paper's "Home Link" reference line


def cubic_shares():
    scs = {}
    for rtt in FIG_RTTS:
        for count in PAPER_CORE_COUNTS:
            half = count // 2
            scs[(count, rtt)] = core_scenario(
                [("cubic", half, rtt), ("newreno", half, rtt)],
                "share",
                f"fig5-{count}-{int(rtt * 1000)}ms",
                seed=51,
            )
    results = run_batch(list(scs.values()))
    return {k: results[sc.name].shares()["cubic"] for k, sc in scs.items()}


def test_fig5_cubic_vs_reno(benchmark):
    out = benchmark.pedantic(cubic_shares, rounds=1, iterations=1)
    rows = [
        [str(count)]
        + [fmt_pct(out[(count, rtt)]) for rtt in FIG_RTTS]
        + [fmt_pct(HOME_LINK_SHARE)]
        for count in PAPER_CORE_COUNTS
    ]
    print_table(
        "Fig 5: Cubic share of throughput vs equal NewReno (paper: 70-80%)",
        ["flows"] + [f"{int(r * 1000)}ms" for r in FIG_RTTS] + ["home link"],
        rows,
    )
    if PROFILE == "smoke":
        return
    # Shape: Cubic wins the majority of bandwidth at every sweep point.
    for key, share in out.items():
        assert share > 0.5, f"Cubic should out-compete NewReno at {key}: {share:.2%}"
