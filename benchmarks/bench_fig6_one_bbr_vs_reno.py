"""Figure 6: one BBR flow vs thousands of NewReno flows, CoreScale.

Paper's Finding 6: a single BBR flow takes ~40% of total throughput
irrespective of the number of competing NewReno flows — the at-scale
confirmation of the Ware et al. model (a single flow at 5000 competitors
obtains ~2000x its fair share).
"""

from __future__ import annotations

from common import (
    FIG_RTTS,
    PAPER_CORE_COUNTS,
    PROFILE,
    SCALE,
    core_scenario,
    fmt_pct,
    print_table,
    run_batch,
)
from repro.models.ware_bbr import predict_bbr_share

HOME_LINK_SHARE = 0.40


def bbr_shares(competitor: str = "newreno", tag: str = "fig6"):
    scs = {}
    for rtt in FIG_RTTS:
        for count in PAPER_CORE_COUNTS:
            # One *actual* BBR flow against the scaled competitor count,
            # matching the paper's single-flow construction.
            groups = [("bbr", SCALE, rtt), (competitor, count - SCALE, rtt)]
            scs[(count, rtt)] = core_scenario(
                groups, "bbr_single", f"{tag}-{count}-{int(rtt * 1000)}ms", seed=61
            )
    results = run_batch(list(scs.values()))
    return {k: results[sc.name].shares()["bbr"] for k, sc in scs.items()}


def check_and_print(out, competitor: str, figure: str) -> None:
    rows = [
        [str(count)]
        + [fmt_pct(out[(count, rtt)]) for rtt in FIG_RTTS]
        + [fmt_pct(HOME_LINK_SHARE), fmt_pct(predict_bbr_share(1.0))]
        for count in PAPER_CORE_COUNTS
    ]
    print_table(
        f"{figure}: 1 BBR flow's share vs {competitor} (paper: ~40%, flat in count)",
        ["flows"]
        + [f"{int(r * 1000)}ms" for r in FIG_RTTS]
        + ["home link", "Ware model"],
        rows,
    )
    if PROFILE == "smoke":
        return
    # Shape: the single BBR flow vastly exceeds its fair share (1/flows)
    # at every sweep point, and its share does not collapse with count.
    for (count, rtt), share in out.items():
        fair_share = SCALE / count  # one scaled flow among count/SCALE flows
        assert share > 4 * fair_share, (
            f"BBR at {count} flows/{rtt * 1000:.0f}ms took {share:.2%}, "
            f"expected well above fair share {fair_share:.2%}"
        )


def test_fig6_one_bbr_vs_reno(benchmark):
    out = benchmark.pedantic(bbr_shares, rounds=1, iterations=1)
    check_and_print(out, "NewReno", "Fig 6")
