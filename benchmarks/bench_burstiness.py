"""Loss burstiness (paper §4, "Figure not shown").

Paper: the Goh-Barabási burstiness score of bottleneck drop times has a
median of ~0.2 at EdgeScale and ~0.35 at CoreScale, corroborating the
hypothesis that the loss-rate/halving-rate divergence comes from
burstier drops at scale.
"""

from __future__ import annotations

from common import (
    PAPER_CORE_COUNTS,
    PAPER_EDGE_COUNTS,
    PROFILE,
    fmt,
    mathis_core_results,
    mathis_edge_results,
    print_table,
)
from repro.analysis.burstiness import windowed_burstiness
from repro.analysis.stats import median

#: Window over which per-window burstiness scores are computed before
#: taking the median (the paper reports medians of windowed scores).
WINDOW_S = 2.0


def scores():
    edge = mathis_edge_results()
    core = mathis_core_results()
    out = {"edge": {}, "core": {}}
    for setting, results in (("edge", edge), ("core", core)):
        for count, result in results.items():
            windows = windowed_burstiness(result.drop_times, WINDOW_S)
            out[setting][count] = median(windows) if windows else float("nan")
    return out


def test_burstiness_of_drops(benchmark):
    out = benchmark.pedantic(scores, rounds=1, iterations=1)
    rows = [
        [f"CoreScale {c}", fmt(out["core"][c])] for c in PAPER_CORE_COUNTS
    ] + [
        [f"EdgeScale {c}", fmt(out["edge"][c])] for c in PAPER_EDGE_COUNTS
    ]
    print_table(
        "Goh-Barabási burstiness of bottleneck drops (paper: ~0.2 edge, ~0.35 core)",
        ["setting", "median burstiness"],
        rows,
    )
    if PROFILE == "smoke":
        return
    for setting in ("edge", "core"):
        for count, value in out[setting].items():
            assert -1.0 <= value <= 1.0, f"{setting}/{count} burstiness out of range"
    core_med = median(list(out["core"].values()))
    assert core_med > 0.0, "drops at scale should be burstier than periodic"
