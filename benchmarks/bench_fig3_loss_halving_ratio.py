"""Figure 3: packet-loss-to-CWND-halving ratio, Edge vs Core.

Paper: ~1.7 at EdgeScale regardless of flow count; 6-9 at CoreScale and
flow-count dependent — burst drops at scale cost several packets per
single congestion response, which is why the loss rate stops being a
valid Mathis ``p`` at scale (Finding 3).
"""

from __future__ import annotations

from common import (
    PAPER_CORE_COUNTS,
    PAPER_EDGE_COUNTS,
    PROFILE,
    fmt,
    mathis_core_results,
    mathis_edge_results,
    print_table,
)
from repro.analysis.throughput import loss_to_halving_ratio


def ratios():
    edge = mathis_edge_results()
    core = mathis_core_results()
    out = {"edge": {}, "core": {}}
    for count, result in edge.items():
        out["edge"][count] = loss_to_halving_ratio(
            result.queue_drops, result.total_congestion_events
        )
    for count, result in core.items():
        out["core"][count] = loss_to_halving_ratio(
            result.queue_drops, result.total_congestion_events
        )
    return out


def test_fig3_loss_to_halving_ratio(benchmark):
    out = benchmark.pedantic(ratios, rounds=1, iterations=1)
    rows = [
        [f"CoreScale {c}", fmt(out["core"][c])] for c in PAPER_CORE_COUNTS
    ] + [
        [f"EdgeScale {c}", fmt(out["edge"][c])] for c in PAPER_EDGE_COUNTS
    ]
    print_table(
        "Fig 3: packet losses per CWND halving event",
        ["setting", "loss/halving ratio"],
        rows,
    )
    if PROFILE == "smoke":
        return
    # Shape: the ratio at CoreScale exceeds the EdgeScale ratio (losses
    # are burstier at scale).
    edge_mean = sum(out["edge"].values()) / len(out["edge"])
    core_mean = sum(out["core"].values()) / len(out["core"])
    assert core_mean > edge_mean, (
        f"core ratio ({core_mean:.2f}) should exceed edge ratio ({edge_mean:.2f})"
    )
    assert all(r >= 1.0 for r in out["edge"].values())
    assert all(r >= 1.0 for r in out["core"].values())
