"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure from the paper. The
underlying experiments are expensive (packet-level simulation), so:

- results live in the content-addressed run store (``repro.runstore``)
  under ``benchmarks/_cache/`` — sha256 of the canonical scenario JSON
  + run options + ``CACHE_VERSION`` (see ``repro/runstore/keys.py`` for
  the exact scheme). Re-running a bench serves its tables from the
  store; ``repro cache ls`` shows what is in it, and setting
  ``REPRO_BENCH_FRESH=1`` forces re-simulation;
- batches go through the fault-tolerant scheduler: identical scenarios
  shared between benches simulate once, scenarios fan out over worker
  processes (``REPRO_BENCH_PARALLEL``, default: CPU count; ``1`` runs
  inline), each completed result is persisted atomically as it
  finishes, and an interrupted bench resumes from what completed;

  *Cache tracking policy*: the seed results shipped with the repo stay
  committed (they make every figure reproducible without hours of
  simulation), but the directory is listed in ``.gitignore`` so entries
  *you* generate — new scenarios, bumped ``CACHE_VERSION`` — never
  churn in diffs. To publish refreshed seeds after a physics change,
  ``git add -f benchmarks/_cache/objects/<key>.pkl`` plus the manifest;
- ``REPRO_BENCH_STATS=<path>`` writes an aggregate scheduler-stats JSON
  (hits/misses/retries/events-per-sec) at interpreter exit — CI uses it
  to assert a warm run performs zero simulations;
- ``REPRO_BENCH_PROFILE`` selects the fidelity/runtime trade-off:

  * ``smoke``  — minutes-scale sanity profile (tiny flow counts, short
    runs); shapes are noisy.
  * ``quick``  — the default: full flow-count sweeps at scale divisor
    50, RTT sweep on the figures where RTT is the finding (Fig 4), the
    paper's primary 20 ms line elsewhere.
  * ``full``   — full RTT sweeps everywhere and longer runs.

The scale divisor (``REPRO_BENCH_SCALE``, default 50) divides the
paper's 10 Gbps / 1000-5000 flows down to a tractable operating point
with identical per-flow share and buffer-per-BDP (see DESIGN.md §3).
"""

from __future__ import annotations

import atexit
import json
import os
from typing import Dict, List, Sequence, Tuple

from repro.core.results import ExperimentResult
from repro.core.scenarios import FlowGroup, Scenario
from repro.runstore import (
    CACHE_VERSION,
    Job,
    RunStore,
    SweepStats,
    print_progress,
    run_jobs,
)
from repro.units import bdp_bytes, gbps, mbps, megabytes

CACHE_DIR = os.path.join(os.path.dirname(__file__), "_cache")

#: The shared run store every benchmark reads and writes.
STORE = RunStore(CACHE_DIR)

#: Aggregate scheduler counters across every batch this process ran.
STATS = SweepStats()

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "quick")
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "200" if PROFILE == "smoke" else "50"))

#: Paper sweep points.
PAPER_CORE_COUNTS = (1000, 3000, 5000)
PAPER_EDGE_COUNTS = (10, 30, 50)
RTTS_ALL = (0.020, 0.100, 0.200)

if PROFILE == "smoke":
    DUR = {"mathis": (20.0, 6.0), "fig4": (20.0, 6.0), "share": (20.0, 6.0),
           "bbr_single": (30.0, 8.0), "intra": (20.0, 6.0), "ablation": (20.0, 6.0)}
    FIG_RTTS = (0.020,)
    FIG4_RTTS = (0.020,)
elif PROFILE == "full":
    DUR = {"mathis": (90.0, 30.0), "fig4": (120.0, 40.0), "share": (150.0, 50.0),
           "bbr_single": (180.0, 60.0), "intra": (150.0, 40.0), "ablation": (120.0, 40.0)}
    FIG_RTTS = RTTS_ALL
    FIG4_RTTS = RTTS_ALL
else:  # quick
    DUR = {"mathis": (60.0, 20.0), "fig4": (80.0, 30.0), "share": (100.0, 35.0),
           "bbr_single": (150.0, 50.0), "intra": (110.0, 30.0), "ablation": (80.0, 30.0)}
    FIG_RTTS = (0.020,)
    FIG4_RTTS = RTTS_ALL


def core_bandwidth_bps() -> float:
    return gbps(10) / SCALE


def scaled(count: int) -> int:
    """Scale a paper flow count down by the configured divisor."""
    return max(1, count // SCALE)


def core_scenario(
    groups: Sequence[Tuple[str, int, float]],
    family: str,
    name: str,
    seed: int = 11,
    buffer_bdp: float = 1.0,
    use_red_queue: bool = False,
) -> Scenario:
    """A CoreScale scenario; group counts are *paper* counts, scaled here."""
    duration, warmup = DUR[family]
    bw = core_bandwidth_bps()
    return Scenario(
        name=name,
        bottleneck_bw_bps=bw,
        buffer_bytes=max(1, int(buffer_bdp * bdp_bytes(bw, 0.200))),
        groups=tuple(FlowGroup(cca, scaled(count), rtt) for cca, count, rtt in groups),
        duration=duration,
        warmup=warmup,
        stagger_max=min(5.0, warmup * 0.5),
        seed=seed,
        use_red_queue=use_red_queue,
    )


def edge_scenario(
    groups: Sequence[Tuple[str, int, float]],
    family: str,
    name: str,
    seed: int = 11,
) -> Scenario:
    duration, warmup = DUR[family]
    return Scenario(
        name=name,
        bottleneck_bw_bps=mbps(100),
        buffer_bytes=megabytes(3),
        groups=tuple(FlowGroup(cca, count, rtt) for cca, count, rtt in groups),
        duration=duration,
        warmup=warmup,
        stagger_max=min(5.0, warmup * 0.5),
        seed=seed,
    )


def _bench_workers(pending: int) -> int:
    raw = os.environ.get("REPRO_BENCH_PARALLEL", "")
    if raw:
        return max(1, int(raw))
    return min(pending, os.cpu_count() or 1) or 1


def _maybe_dump_stats() -> None:
    path = os.environ.get("REPRO_BENCH_STATS")
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(STATS.to_json(), fh, indent=2)


atexit.register(_maybe_dump_stats)


def run_batch(scenarios: Sequence[Scenario]) -> Dict[str, ExperimentResult]:
    """Run scenarios through the store-backed scheduler, keyed by name.

    Hits are served from ``benchmarks/_cache``; misses fan out over
    ``REPRO_BENCH_PARALLEL`` workers, persisting each result as it
    completes (so a killed bench resumes from what finished). Scenario
    names must be unique within a batch — they key the returned dict.
    """
    names = [sc.name for sc in scenarios]
    if len(set(names)) != len(names):
        raise ValueError("scenario names within a batch must be unique")
    outcome = run_jobs(
        [Job(sc) for sc in scenarios],
        store=STORE,
        workers=_bench_workers(len(scenarios)),
        fresh=bool(os.environ.get("REPRO_BENCH_FRESH")),
        progress=print_progress if os.environ.get("REPRO_BENCH_PROGRESS") else None,
    )
    STATS.merge(outcome.stats)
    return dict(zip(names, outcome.results))


def run_one(scenario: Scenario) -> ExperimentResult:
    """Single-scenario convenience wrapper over :func:`run_batch`."""
    return run_batch([scenario])[scenario.name]


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print an aligned text table (the bench output the paper row maps to)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def fmt_pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def fmt(x: float, digits: int = 2) -> str:
    return f"{x:.{digits}f}"


# ----------------------------------------------------------------------
# Shared experiment families (several benches reuse the same runs).
# ----------------------------------------------------------------------

def mathis_core_results() -> Dict[int, ExperimentResult]:
    """NewReno intra-CCA CoreScale runs at 20 ms (Table 1 / Figs 2-3)."""
    scs: List[Scenario] = [
        core_scenario(
            [("newreno", count, 0.020)], "mathis", f"mathis-core-{count}", seed=21
        )
        for count in PAPER_CORE_COUNTS
    ]
    results = run_batch(scs)
    return {count: results[sc.name] for count, sc in zip(PAPER_CORE_COUNTS, scs)}


def mathis_edge_results() -> Dict[int, ExperimentResult]:
    """NewReno intra-CCA EdgeScale runs at 20 ms (Table 1 / Figs 2-3)."""
    scs: List[Scenario] = [
        edge_scenario(
            [("newreno", count, 0.020)], "mathis", f"mathis-edge-{count}", seed=21
        )
        for count in PAPER_EDGE_COUNTS
    ]
    results = run_batch(scs)
    return {count: results[sc.name] for count, sc in zip(PAPER_EDGE_COUNTS, scs)}
