"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure from the paper. The
underlying experiments are expensive (packet-level simulation), so:

- results are cached on disk under ``benchmarks/_cache/`` keyed by the
  scenario definition — re-running a bench re-prints its table from
  cache (delete the directory or set ``REPRO_BENCH_FRESH=1`` to force
  re-simulation);

  *Cache tracking policy*: the seed pickles shipped with the repo stay
  committed (they make every figure reproducible without hours of
  simulation), but the directory is listed in ``.gitignore`` so entries
  *you* generate — new scenarios, bumped ``CACHE_VERSION`` — never
  churn in diffs. To publish refreshed seeds after a physics change,
  ``git add -f benchmarks/_cache/<hash>.pkl`` explicitly;
- ``REPRO_BENCH_PROFILE`` selects the fidelity/runtime trade-off:

  * ``smoke``  — minutes-scale sanity profile (tiny flow counts, short
    runs); shapes are noisy.
  * ``quick``  — the default: full flow-count sweeps at scale divisor
    50, RTT sweep on the figures where RTT is the finding (Fig 4), the
    paper's primary 20 ms line elsewhere.
  * ``full``   — full RTT sweeps everywhere and longer runs.

The scale divisor (``REPRO_BENCH_SCALE``, default 50) divides the
paper's 10 Gbps / 1000-5000 flows down to a tractable operating point
with identical per-flow share and buffer-per-BDP (see DESIGN.md §3).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Dict, Sequence, Tuple

from repro.core.experiment import run_experiment
from repro.core.results import ExperimentResult
from repro.core.scenarios import FlowGroup, Scenario
from repro.units import bdp_bytes, gbps, mbps, megabytes

#: Bump when simulator physics change to invalidate cached results.
CACHE_VERSION = 7

CACHE_DIR = os.path.join(os.path.dirname(__file__), "_cache")

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "quick")
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "200" if PROFILE == "smoke" else "50"))

#: Paper sweep points.
PAPER_CORE_COUNTS = (1000, 3000, 5000)
PAPER_EDGE_COUNTS = (10, 30, 50)
RTTS_ALL = (0.020, 0.100, 0.200)

if PROFILE == "smoke":
    DUR = {"mathis": (20.0, 6.0), "fig4": (20.0, 6.0), "share": (20.0, 6.0),
           "bbr_single": (30.0, 8.0), "intra": (20.0, 6.0), "ablation": (20.0, 6.0)}
    FIG_RTTS = (0.020,)
    FIG4_RTTS = (0.020,)
elif PROFILE == "full":
    DUR = {"mathis": (90.0, 30.0), "fig4": (120.0, 40.0), "share": (150.0, 50.0),
           "bbr_single": (180.0, 60.0), "intra": (150.0, 40.0), "ablation": (120.0, 40.0)}
    FIG_RTTS = RTTS_ALL
    FIG4_RTTS = RTTS_ALL
else:  # quick
    DUR = {"mathis": (60.0, 20.0), "fig4": (80.0, 30.0), "share": (100.0, 35.0),
           "bbr_single": (150.0, 50.0), "intra": (110.0, 30.0), "ablation": (80.0, 30.0)}
    FIG_RTTS = (0.020,)
    FIG4_RTTS = RTTS_ALL


def core_bandwidth_bps() -> float:
    return gbps(10) / SCALE


def scaled(count: int) -> int:
    """Scale a paper flow count down by the configured divisor."""
    return max(1, count // SCALE)


def core_scenario(
    groups: Sequence[Tuple[str, int, float]],
    family: str,
    name: str,
    seed: int = 11,
    buffer_bdp: float = 1.0,
    use_red_queue: bool = False,
) -> Scenario:
    """A CoreScale scenario; group counts are *paper* counts, scaled here."""
    duration, warmup = DUR[family]
    bw = core_bandwidth_bps()
    return Scenario(
        name=name,
        bottleneck_bw_bps=bw,
        buffer_bytes=max(1, int(buffer_bdp * bdp_bytes(bw, 0.200))),
        groups=tuple(FlowGroup(cca, scaled(count), rtt) for cca, count, rtt in groups),
        duration=duration,
        warmup=warmup,
        stagger_max=min(5.0, warmup * 0.5),
        seed=seed,
        use_red_queue=use_red_queue,
    )


def edge_scenario(
    groups: Sequence[Tuple[str, int, float]],
    family: str,
    name: str,
    seed: int = 11,
) -> Scenario:
    duration, warmup = DUR[family]
    return Scenario(
        name=name,
        bottleneck_bw_bps=mbps(100),
        buffer_bytes=megabytes(3),
        groups=tuple(FlowGroup(cca, count, rtt) for cca, count, rtt in groups),
        duration=duration,
        warmup=warmup,
        stagger_max=min(5.0, warmup * 0.5),
        seed=seed,
    )


def _cache_key(scenario: Scenario) -> str:
    blob = f"v{CACHE_VERSION}|{scenario!r}"
    return hashlib.md5(blob.encode()).hexdigest()


def cached_run(scenario: Scenario) -> ExperimentResult:
    """Run an experiment, reusing a cached result when available."""
    os.makedirs(CACHE_DIR, exist_ok=True)
    path = os.path.join(CACHE_DIR, _cache_key(scenario) + ".pkl")
    if os.path.exists(path) and not os.environ.get("REPRO_BENCH_FRESH"):
        with open(path, "rb") as fh:
            return pickle.load(fh)
    result = run_experiment(scenario)
    with open(path, "wb") as fh:
        pickle.dump(result, fh)
    return result


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print an aligned text table (the bench output the paper row maps to)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def fmt_pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def fmt(x: float, digits: int = 2) -> str:
    return f"{x:.{digits}f}"


# ----------------------------------------------------------------------
# Shared experiment families (several benches reuse the same runs).
# ----------------------------------------------------------------------

def mathis_core_results() -> Dict[int, ExperimentResult]:
    """NewReno intra-CCA CoreScale runs at 20 ms (Table 1 / Figs 2-3)."""
    out: Dict[int, ExperimentResult] = {}
    for count in PAPER_CORE_COUNTS:
        sc = core_scenario(
            [("newreno", count, 0.020)], "mathis", f"mathis-core-{count}", seed=21
        )
        out[count] = cached_run(sc)
    return out


def mathis_edge_results() -> Dict[int, ExperimentResult]:
    """NewReno intra-CCA EdgeScale runs at 20 ms (Table 1 / Figs 2-3)."""
    out: Dict[int, ExperimentResult] = {}
    for count in PAPER_EDGE_COUNTS:
        sc = edge_scenario(
            [("newreno", count, 0.020)], "mathis", f"mathis-edge-{count}", seed=21
        )
        out[count] = cached_run(sc)
    return out
