"""Figure 7: one BBR flow vs thousands of Cubic flows, CoreScale.

Same construction as Figure 6 with Cubic competitors: the paper finds
the single BBR flow again takes ~40% of throughput, independent of the
competitor count (Finding 6 / the Ware et al. model).
"""

from __future__ import annotations

from bench_fig6_one_bbr_vs_reno import bbr_shares, check_and_print


def test_fig7_one_bbr_vs_cubic(benchmark):
    out = benchmark.pedantic(
        bbr_shares, args=("cubic", "fig7"), rounds=1, iterations=1
    )
    check_and_print(out, "Cubic", "Fig 7")
