"""Table 1: the empirically derived Mathis constant C.

Paper: deriving C from the *packet loss rate* gives flow-count- and
setting-dependent values (Edge 1.78 vs Core 3.95/3.64/3.24), while the
*CWND halving rate* gives consistent values (Edge 1.47 vs Core
1.36/1.36/1.34).

This bench fits C per setting and flow count from our measured flows and
prints the same four rows.
"""

from __future__ import annotations

from common import (
    PAPER_CORE_COUNTS,
    fmt,
    mathis_core_results,
    mathis_edge_results,
    print_table,
)
from repro.analysis.mathis_fit import fit_mathis
from repro.units import MSS


def derive_constants():
    edge = mathis_edge_results()
    core = mathis_core_results()
    # Paper's Table 1 pools EdgeScale into a single column.
    edge_obs = [o for r in edge.values() for o in r.observations()]
    rows = {}
    for interp in ("loss", "halving"):
        edge_c = fit_mathis(edge_obs, interp, MSS).constant
        core_cs = {
            count: fit_mathis(core[count].observations(), interp, MSS).constant
            for count in PAPER_CORE_COUNTS
        }
        rows[interp] = (edge_c, core_cs)
    return rows


def test_table1_mathis_constant(benchmark):
    rows = benchmark.pedantic(derive_constants, rounds=1, iterations=1)
    table = []
    for interp, label in (("loss", "Packet Loss"), ("halving", "CWND Halving")):
        edge_c, core_cs = rows[interp]
        table.append(
            [label, fmt(edge_c)] + [fmt(core_cs[c]) for c in PAPER_CORE_COUNTS]
        )
    print_table(
        "Table 1: Mathis constant C (EdgeScale vs CoreScale flow counts)",
        ["p interpretation", "EdgeScale"] + [f"Core {c}" for c in PAPER_CORE_COUNTS],
        table,
    )
    loss_edge, loss_core = rows["loss"]
    halv_edge, halv_core = rows["halving"]
    # Shape assertions (paper's Finding 1): the halving-rate constant is
    # closer to its edge value than the loss-rate constant is to its own,
    # i.e. halving-rate C transfers across settings better.
    loss_spread = max(
        abs(c - loss_edge) / loss_edge for c in loss_core.values()
    )
    halv_spread = max(
        abs(c - halv_edge) / halv_edge for c in halv_core.values()
    )
    assert halv_spread < loss_spread, (
        f"halving-rate C should be more stable across settings "
        f"(halving spread {halv_spread:.2f}, loss spread {loss_spread:.2f})"
    )
    # All constants positive and of plausible magnitude.
    for _, (edge_c, core_cs) in rows.items():
        assert 0.1 < edge_c < 20
        assert all(0.1 < c < 20 for c in core_cs.values())
