"""Ablation: drop-tail vs RED and loss burstiness.

The paper hypothesises that the loss-rate/halving-rate divergence at
scale comes from *bursty* tail drops. RED exists precisely to break up
such bursts, so swapping the queue discipline should reduce the
loss/halving ratio and the Goh-Barabási burstiness — a causal check of
the paper's mechanism that the testbed (fixed to drop-tail) could not
run.
"""

from __future__ import annotations

from common import (
    PROFILE,
    core_scenario,
    fmt,
    print_table,
    run_batch,
)
from repro.analysis.burstiness import windowed_burstiness
from repro.analysis.stats import median
from repro.analysis.throughput import loss_to_halving_ratio


def compare():
    scs = {
        "red" if red else "droptail": core_scenario(
            [("newreno", 3000, 0.020)],
            "ablation",
            f"ablate-qdisc-{'red' if red else 'droptail'}",
            seed=93,
            use_red_queue=red,
        )
        for red in (False, True)
    }
    results = run_batch(list(scs.values()))
    out = {}
    for name, sc in scs.items():
        result = results[sc.name]
        windows = windowed_burstiness(result.drop_times, 2.0)
        out[name] = (
            loss_to_halving_ratio(
                result.queue_drops, max(1, result.total_congestion_events)
            ),
            median(windows) if windows else float("nan"),
            result.utilization,
        )
    return out


def test_ablation_queue_discipline(benchmark):
    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        [name, fmt(ratio), fmt(burst), fmt(util, 3)]
        for name, (ratio, burst, util) in out.items()
    ]
    print_table(
        "Ablation: queue discipline at the 3000-flow NewReno CoreScale point",
        ["qdisc", "loss/halving", "burstiness", "utilization"],
        rows,
    )
    if PROFILE == "smoke":
        return
    assert out["red"][0] <= out["droptail"][0] * 1.5, (
        "RED should not make losses substantially burstier than drop-tail"
    )
