"""Make the shared bench helpers importable when pytest collects here."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
