"""Engine hot-path micro-benchmarks (pytest-benchmark wrapper).

Thin pytest face over :mod:`repro.bench` so the engine numbers show up
in the same ``pytest benchmarks/`` table as the figure benchmarks. The
authoritative artifact is still ``repro bench --out BENCH_engine.json``;
these tests assert only sanity (the workloads ran, events match), never
absolute speed — wall-clock thresholds in tests are how suites go flaky.
"""

from __future__ import annotations

from repro.bench import MICRO_EVENTS, bench_scenarios, run_engine_micro
from repro.core.experiment import run_experiment


def test_engine_micro_schedule_cancel_storm(benchmark):
    events, _, sim_now = benchmark.pedantic(run_engine_micro, rounds=1, iterations=1)
    assert events == MICRO_EVENTS
    assert sim_now > 0.0


def test_engine_core_quick_profile(benchmark):
    scenario = bench_scenarios(quick=True)["core-quick-20"]
    result = benchmark.pedantic(
        run_experiment, args=(scenario,), rounds=1, iterations=1
    )
    assert result.events_processed > 0
    assert len(result.flows) == 20
