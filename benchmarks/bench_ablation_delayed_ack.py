"""Ablation: delayed ACKs and the fitted Mathis constant.

Mathis et al. derive different constants for different ACKing policies
(C = 0.94 with delayed ACKs + SACK). This ablation fits C from the same
CoreScale workload with delayed ACKs on and off: with per-packet ACKing
NewReno grows twice as fast, so the fitted constant should rise by
roughly sqrt(2) — a direct check that our empirical-fit pipeline
responds to stack configuration the way the model family predicts.
"""

from __future__ import annotations

from common import PROFILE, core_scenario, fmt, print_table, run_batch
from repro.analysis.mathis_fit import fit_mathis
from repro.units import MSS


def constants():
    scs = {
        delayed: core_scenario(
            [("newreno", 3000, 0.020)],
            "ablation",
            f"ablate-delack-{delayed}",
            seed=92,
        ).with_overrides(delayed_ack=delayed)
        for delayed in (True, False)
    }
    results = run_batch(list(scs.values()))
    return {
        delayed: fit_mathis(results[sc.name].observations(), "halving", MSS).constant
        for delayed, sc in scs.items()
    }


def test_ablation_delayed_ack(benchmark):
    out = benchmark.pedantic(constants, rounds=1, iterations=1)
    print_table(
        "Ablation: fitted Mathis C (halving rate) vs ACK policy",
        ["delayed ACKs", "fitted C"],
        [["on", fmt(out[True])], ["off", fmt(out[False])]],
    )
    if PROFILE == "smoke":
        return
    assert out[False] > out[True], (
        "per-packet ACKing should raise the fitted constant "
        f"(got on={out[True]:.2f}, off={out[False]:.2f})"
    )
