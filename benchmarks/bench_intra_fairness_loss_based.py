"""Finding 4 (figure not shown): NewReno & Cubic intra-CCA fairness at scale.

Paper: both loss-based CCAs keep a JFI > 0.99 at CoreScale, matching the
edge-derived expectation — only BBR (Fig 4) breaks at scale.
"""

from __future__ import annotations

from common import (
    PAPER_CORE_COUNTS,
    PROFILE,
    core_scenario,
    fmt,
    print_table,
    run_batch,
)


def jfis():
    scs = {
        (cca, count): core_scenario(
            [(cca, count, 0.020)], "intra", f"intra-{cca}-{count}", seed=41
        )
        for cca in ("newreno", "cubic")
        for count in PAPER_CORE_COUNTS
    }
    results = run_batch(list(scs.values()))
    return {k: results[sc.name].jfi() for k, sc in scs.items()}


def test_intra_fairness_loss_based(benchmark):
    out = benchmark.pedantic(jfis, rounds=1, iterations=1)
    rows = [
        [cca] + [fmt(out[(cca, c)], 3) for c in PAPER_CORE_COUNTS]
        for cca in ("newreno", "cubic")
    ]
    print_table(
        "Finding 4: loss-based intra-CCA JFI at CoreScale (paper: >0.99)",
        ["cca"] + [f"{c} flows" for c in PAPER_CORE_COUNTS],
        rows,
    )
    if PROFILE == "smoke":
        return
    # The paper's >0.99 comes from 3-hour runs; our shorter windows still
    # sit inside Cubic's slow convergence (epochs are seconds long), so
    # the bound checks for the *absence of systematic unfairness* rather
    # than full convergence. JFI also rises with flow count, which the
    # trend assertion below pins.
    for key, value in out.items():
        assert value > 0.7, f"{key} unexpectedly unfair: JFI {value:.3f}"
    for cca in ("newreno", "cubic"):
        series = [out[(cca, c)] for c in PAPER_CORE_COUNTS]
        assert max(series) > 0.9, f"{cca} never approaches fairness: {series}"
