"""Ablation: bottleneck buffer size (0.25 / 0.5 / 1.0 BDP).

The paper fixes the buffer at ~1 BDP (at 200 ms) following the classic
rule of thumb, citing Appenzeller et al. that smaller buffers suffice at
scale. This ablation re-runs the 5000-flow NewReno CoreScale point at
fractional buffers and reports utilization and the loss/halving ratio —
quantifying how much the headline Finding 3 depends on the buffer choice.
"""

from __future__ import annotations

from common import (
    PROFILE,
    core_scenario,
    fmt,
    fmt_pct,
    print_table,
    run_batch,
)
from repro.analysis.throughput import loss_to_halving_ratio

BUFFER_FRACTIONS = (0.25, 0.5, 1.0)


def sweep():
    scs = {
        frac: core_scenario(
            [("newreno", 5000, 0.020)],
            "ablation",
            f"ablate-buffer-{frac}",
            seed=91,
            buffer_bdp=frac,
        )
        for frac in BUFFER_FRACTIONS
    }
    results = run_batch(list(scs.values()))
    out = {}
    for frac, sc in scs.items():
        result = results[sc.name]
        out[frac] = (
            result.utilization,
            result.aggregate_loss_rate,
            loss_to_halving_ratio(
                result.queue_drops, max(1, result.total_congestion_events)
            ),
        )
    return out


def test_ablation_buffer_size(benchmark):
    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{frac} BDP", fmt_pct(util), fmt_pct(loss), fmt(ratio)]
        for frac, (util, loss, ratio) in sorted(out.items())
    ]
    print_table(
        "Ablation: buffer size at the 5000-flow NewReno CoreScale point",
        ["buffer", "utilization", "loss rate", "loss/halving"],
        rows,
    )
    if PROFILE == "smoke":
        return
    # Appenzeller's result: even fractional-BDP buffers keep utilization
    # high when thousands of (desynchronised) flows share the link.
    for frac, (util, loss, ratio) in out.items():
        assert util > 0.7, f"utilization collapsed at {frac} BDP: {util:.2%}"
    # Smaller buffers drop more.
    assert out[0.25][1] >= out[1.0][1]
